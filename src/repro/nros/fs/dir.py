"""Directory entry encoding.

A directory's data is an array of fixed-size slots:
``u32 inode | u16 name_len | name bytes``, zero-padded to ``SLOT_SIZE``.
A slot whose ``name_len`` is zero is free and may be reused.

Fixed slots are what make namespace updates crash-atomic: adding,
removing, or renaming an entry rewrites exactly one slot, slots never
straddle a sector boundary, and sector writes are atomic — so every
directory update the filesystem performs is a single all-or-nothing
device write.  (The previous variable-length format required rewriting
the whole directory on every change; a crash or rejected write in the
middle of that rewrite could empty the directory.  The fault-injection
crash matrix in :mod:`repro.faults` guards this property.)
"""

from __future__ import annotations

import struct

_HEADER = struct.Struct("<IH")

#: Slot size: divides the 4096-byte sector, so a slot write is atomic.
SLOT_SIZE = 128

MAX_NAME = SLOT_SIZE - _HEADER.size


class DirFormatError(Exception):
    """Corrupt directory data."""


def encode_slot(name: str, inum: int) -> bytes:
    """One fixed-size directory slot."""
    payload = name.encode("utf-8")
    if not payload or len(payload) > MAX_NAME:
        raise ValueError(f"bad directory entry name {name!r}")
    slot = bytearray(SLOT_SIZE)
    _HEADER.pack_into(slot, 0, inum, len(payload))
    slot[_HEADER.size : _HEADER.size + len(payload)] = payload
    return bytes(slot)


FREE_SLOT = bytes(SLOT_SIZE)


def encode_entries(entries: dict[str, int]) -> bytes:
    """Serialize name -> inode mappings (wholesale; fresh directories)."""
    out = bytearray()
    for name in sorted(entries):
        out += encode_slot(name, entries[name])
    return bytes(out)


def iter_slots(data: bytes):
    """Yield ``(offset, name, inum)`` for every used slot."""
    if len(data) % SLOT_SIZE:
        raise DirFormatError("truncated directory entry header")
    for offset in range(0, len(data), SLOT_SIZE):
        inum, name_len = _HEADER.unpack_from(data, offset)
        if name_len == 0:
            if inum != 0:
                raise DirFormatError(
                    f"free slot at offset {offset} with nonzero inode")
            continue  # free slot
        if name_len > MAX_NAME:
            raise DirFormatError(f"bad name length {name_len}")
        start = offset + _HEADER.size
        try:
            name = data[start : start + name_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DirFormatError(f"undecodable entry name: {exc}") from exc
        yield offset, name, inum


def decode_entries(data: bytes) -> dict[str, int]:
    """Parse directory data back into name -> inode mappings."""
    entries: dict[str, int] = {}
    for _, name, inum in iter_slots(data):
        if name in entries:
            raise DirFormatError(f"duplicate entry {name!r}")
        entries[name] = inum
    return entries


def find_slot(data: bytes, name: str) -> int | None:
    """Byte offset of the used slot holding `name`, or None."""
    for offset, slot_name, _ in iter_slots(data):
        if slot_name == name:
            return offset
    return None


def find_free_slot(data: bytes) -> int | None:
    """Byte offset of the first free slot, or None if the array is full."""
    if len(data) % SLOT_SIZE:
        raise DirFormatError("truncated directory entry header")
    for offset in range(0, len(data), SLOT_SIZE):
        inum, name_len = _HEADER.unpack_from(data, offset)
        if name_len == 0 and inum == 0:
            return offset
    return None


def used_size(data: bytes) -> int:
    """Bytes up to the end of the last used slot (trailing free slots can
    be reclaimed)."""
    end = 0
    for offset, _, _ in iter_slots(data):
        end = offset + SLOT_SIZE
    return end


def validate_name(name: str) -> None:
    """Path-component validity shared by every namespace operation."""
    if not name or name in (".", ".."):
        raise ValueError(f"invalid file name {name!r}")
    if "/" in name or "\x00" in name:
        raise ValueError(f"invalid character in file name {name!r}")
    if len(name.encode("utf-8")) > MAX_NAME:
        raise ValueError("file name too long")
