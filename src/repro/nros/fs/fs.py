"""The filesystem proper: superblock, namespace, and file I/O.

On-disk layout (4 KiB blocks):

    block 0              superblock
    blocks 1..b          block-allocation bitmap
    blocks b+1..i        inode table
    blocks i+1..         data

Paths are absolute, '/'-separated.  The implementation favours simplicity
and auditability: directories rewrite wholesale, metadata writes are
write-through, and every operation leaves the volume mountable (checked by
the remount tests)."""

from __future__ import annotations

import functools
import struct

from repro import obs
from repro.nros.fs import dir as dirfmt
from repro.nros.fs.alloc import BlockBitmap, NoSpace
from repro.nros.fs.blockdev import BLOCK_SIZE, BlockDevice
from repro.nros.fs.inode import (
    INODES_PER_BLOCK,
    INDIRECT_ENTRIES,
    MAX_FILE_SIZE,
    NUM_DIRECT,
    Inode,
    Stat,
    TYPE_DIR,
    TYPE_FILE,
    TYPE_FREE,
)

MAGIC = 0x4E724F53  # "NrOS"
ROOT_INUM = 0

_SUPER = struct.Struct("<IIIIII")  # magic, blocks, bitmap_start, bitmap_len,
                                   # itable_start, num_inodes


class FsError(Exception):
    """Base filesystem error."""


class NotFound(FsError):
    pass


class Exists(FsError):
    pass


class NotADirectory(FsError):
    pass


class IsADirectory(FsError):
    pass


class DirectoryNotEmpty(FsError):
    pass


class FileTooBig(FsError):
    pass


class Corrupt(FsError):
    """An on-disk structure failed to decode (damaged directory data)."""


def _timed(op: str):
    """Record the wall-clock latency of a filesystem operation into the
    labeled ``fs.op_seconds{op=...}`` histogram (and the trace, when
    someone is listening) — the per-operation population a latency
    figure over the FS layer reads from."""
    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with obs.span("fs.op", histogram="fs.op_seconds",
                          labels={"op": op}):
                return fn(*args, **kwargs)
        return wrapper
    return decorate


class FileSystem:
    """A mounted volume."""

    def __init__(self, dev: BlockDevice) -> None:
        super_data = dev.read(0)
        magic, blocks, bitmap_start, bitmap_len, itable_start, num_inodes = (
            _SUPER.unpack_from(super_data)
        )
        if magic != MAGIC:
            raise FsError("bad superblock magic (not formatted?)")
        if blocks != dev.num_blocks:
            raise FsError("superblock block count does not match device")
        self.dev = dev
        self.bitmap = BlockBitmap(dev, bitmap_start, bitmap_len, blocks)
        self.itable_start = itable_start
        self.num_inodes = num_inodes

    # -- formatting ------------------------------------------------------------

    @staticmethod
    def mkfs(dev: BlockDevice, num_inodes: int = 256) -> "FileSystem":
        """Format the device and return the mounted filesystem."""
        blocks = dev.num_blocks
        bitmap_len = BlockBitmap.blocks_needed(blocks)
        itable_blocks = (num_inodes + INODES_PER_BLOCK - 1) // INODES_PER_BLOCK
        bitmap_start = 1
        itable_start = bitmap_start + bitmap_len
        data_start = itable_start + itable_blocks
        if data_start >= blocks:
            raise FsError("device too small")

        for block in range(data_start):
            dev.zero(block)
        dev.write(0, _SUPER.pack(MAGIC, blocks, bitmap_start, bitmap_len,
                                 itable_start, num_inodes))
        fs = FileSystem.__new__(FileSystem)
        fs.dev = dev
        fs.bitmap = BlockBitmap(dev, bitmap_start, bitmap_len, blocks)
        fs.itable_start = itable_start
        fs.num_inodes = num_inodes
        # reserve metadata blocks in the bitmap
        for block in range(data_start):
            fs.bitmap.set(block)
        # root directory
        root = Inode(itype=TYPE_DIR, nlink=1, size=0)
        fs._write_inode(ROOT_INUM, root)
        return fs

    # -- inode table -----------------------------------------------------------------

    def _read_inode(self, inum: int) -> Inode:
        self._check_inum(inum)
        block = self.itable_start + inum // INODES_PER_BLOCK
        offset = (inum % INODES_PER_BLOCK) * 128
        return Inode.decode(self.dev.read(block)[offset : offset + 128])

    def _write_inode(self, inum: int, inode: Inode) -> None:
        self._check_inum(inum)
        block = self.itable_start + inum // INODES_PER_BLOCK
        offset = (inum % INODES_PER_BLOCK) * 128
        data = bytearray(self.dev.read(block))
        data[offset : offset + 128] = inode.encode()
        self.dev.write(block, bytes(data))

    def _alloc_inode(self, itype: int) -> int:
        for inum in range(self.num_inodes):
            if self._read_inode(inum).itype == TYPE_FREE:
                self._write_inode(inum, Inode(itype=itype, nlink=1, size=0))
                return inum
        raise NoSpace("inode table full")

    def _check_inum(self, inum: int) -> None:
        if not 0 <= inum < self.num_inodes:
            raise FsError(f"inode {inum} out of range")

    # -- block mapping ------------------------------------------------------------------

    def _block_of(self, inode: Inode, index: int, allocate: bool) -> int:
        """The data block holding file block `index`; 0 means a hole."""
        if index < NUM_DIRECT:
            block = inode.direct[index]
            if block == 0 and allocate:
                block = self.bitmap.alloc()
                self.dev.zero(block)
                inode.direct[index] = block
            return block
        index -= NUM_DIRECT
        if index >= INDIRECT_ENTRIES:
            raise FileTooBig(f"file block {index + NUM_DIRECT} beyond maximum")
        if inode.indirect == 0:
            if not allocate:
                return 0
            inode.indirect = self.bitmap.alloc()
            self.dev.zero(inode.indirect)
        table = bytearray(self.dev.read(inode.indirect))
        block = struct.unpack_from("<I", table, index * 4)[0]
        if block == 0 and allocate:
            block = self.bitmap.alloc()
            self.dev.zero(block)
            struct.pack_into("<I", table, index * 4, block)
            self.dev.write(inode.indirect, bytes(table))
        return block

    # -- file I/O by inode number ----------------------------------------------------------

    @_timed("read_at")
    def read_at(self, inum: int, offset: int, length: int) -> bytes:
        inode = self._read_inode(inum)
        if inode.itype == TYPE_FREE:
            raise NotFound(f"inode {inum} is free")
        if offset >= inode.size or length <= 0:
            return b""
        length = min(length, inode.size - offset)
        out = bytearray()
        while length > 0:
            index, within = divmod(offset, BLOCK_SIZE)
            chunk = min(length, BLOCK_SIZE - within)
            block = self._block_of(inode, index, allocate=False)
            if block == 0:
                out += bytes(chunk)  # hole reads as zeros
            else:
                out += self.dev.read(block)[within : within + chunk]
            offset += chunk
            length -= chunk
        return bytes(out)

    @_timed("write_at")
    def write_at(self, inum: int, offset: int, data: bytes) -> int:
        inode = self._read_inode(inum)
        if inode.itype == TYPE_FREE:
            raise NotFound(f"inode {inum} is free")
        if offset + len(data) > MAX_FILE_SIZE:
            raise FileTooBig(
                f"write to {offset + len(data)} exceeds {MAX_FILE_SIZE}"
            )
        before = inode.encode()
        remaining = data
        position = offset
        while remaining:
            index, within = divmod(position, BLOCK_SIZE)
            chunk = min(len(remaining), BLOCK_SIZE - within)
            block = self._block_of(inode, index, allocate=True)
            current = bytearray(self.dev.read(block))
            current[within : within + chunk] = remaining[:chunk]
            self.dev.write(block, bytes(current))
            position += chunk
            remaining = remaining[chunk:]
        if position > inode.size:
            inode.size = position
        if inode.encode() != before:
            # a pure in-place overwrite commits with the data write alone;
            # directory slot updates rely on that being a single sector
            # write (and appended data only becomes visible here, when the
            # new size lands)
            self._write_inode(inum, inode)
        return len(data)

    @_timed("truncate")
    def truncate(self, inum: int, size: int = 0) -> None:
        inode = self._read_inode(inum)
        if inode.itype == TYPE_FREE:
            raise NotFound(f"inode {inum} is free")
        if size > inode.size:
            raise FsError("truncate cannot extend")
        first_kept = (size + BLOCK_SIZE - 1) // BLOCK_SIZE
        total = (inode.size + BLOCK_SIZE - 1) // BLOCK_SIZE
        # Crash-safe ordering: clear every durable reference (indirect
        # table entries, then the inode) *before* freeing blocks in the
        # bitmap.  A crash anywhere in the window leaks allocated blocks —
        # which fsck reports and a collector can reclaim — instead of
        # leaving live pointers to blocks the allocator may hand out again.
        to_free: list[int] = []
        drop_indirect = inode.indirect != 0 and first_kept <= NUM_DIRECT
        for index in range(first_kept, total):
            block = self._block_of(inode, index, allocate=False)
            if block:
                to_free.append(block)
                if index < NUM_DIRECT:
                    inode.direct[index] = 0
                elif not drop_indirect:
                    self._clear_block_pointer(inode, index)
        if drop_indirect:
            to_free.append(inode.indirect)
            inode.indirect = 0
        inode.size = size
        self._write_inode(inum, inode)
        for block in to_free:
            self.bitmap.free(block)

    def _clear_block_pointer(self, inode: Inode, index: int) -> None:
        if index < NUM_DIRECT:
            inode.direct[index] = 0
            return
        index -= NUM_DIRECT
        table = bytearray(self.dev.read(inode.indirect))
        struct.pack_into("<I", table, index * 4, 0)
        self.dev.write(inode.indirect, bytes(table))

    def stat_inum(self, inum: int) -> Stat:
        inode = self._read_inode(inum)
        if inode.itype == TYPE_FREE:
            raise NotFound(f"inode {inum} is free")
        return Stat(inum=inum, itype=inode.itype, size=inode.size,
                    nlink=inode.nlink)

    # -- namespace -------------------------------------------------------------------------

    def _dir_entries(self, inum: int) -> dict[str, int]:
        inode = self._read_inode(inum)
        if not inode.is_dir:
            raise NotADirectory(f"inode {inum} is not a directory")
        try:
            return dirfmt.decode_entries(self.read_at(inum, 0, inode.size))
        except dirfmt.DirFormatError as exc:
            # surface damage as a typed filesystem error the caller can
            # catch, not a format-layer exception escaping the VFS
            raise Corrupt(f"directory inode {inum}: {exc}") from exc

    def _dir_raw(self, inum: int) -> bytes:
        """A directory's full slot array."""
        inode = self._read_inode(inum)
        if not inode.is_dir:
            raise NotADirectory(f"inode {inum} is not a directory")
        return self.read_at(inum, 0, inode.size)

    def _add_dir_entry(self, parent: int, name: str, inum: int) -> None:
        """Add one entry with a single commit point: either an atomic
        in-place rewrite of a free slot, or an append whose new slot only
        becomes visible when `write_at` lands the grown size."""
        data = self._dir_raw(parent)
        offset = dirfmt.find_free_slot(data)
        if offset is None:
            offset = len(data)
        self.write_at(parent, offset, dirfmt.encode_slot(name, inum))

    def _del_dir_entry(self, parent: int, name: str) -> None:
        """Drop one entry: a single atomic in-place slot write."""
        data = self._dir_raw(parent)
        offset = dirfmt.find_slot(data, name)
        if offset is None:
            raise NotFound(f"no entry {name!r} in directory {parent}")
        self.write_at(parent, offset, dirfmt.FREE_SLOT)
        # the slot write above is the commit; trimming trailing free slots
        # merely reclaims blocks (truncate itself is crash-ordered)
        data = (data[:offset] + dirfmt.FREE_SLOT
                + data[offset + dirfmt.SLOT_SIZE:])
        new_size = dirfmt.used_size(data)
        if new_size < len(data):
            self.truncate(parent, new_size)

    def _split(self, path: str) -> tuple[int, str]:
        """Resolve the parent directory of `path`; returns (parent inum,
        final component)."""
        parts = self._components(path)
        if not parts:
            raise FsError("path refers to the root directory")
        parent = ROOT_INUM
        for part in parts[:-1]:
            entries = self._dir_entries(parent)
            if part not in entries:
                raise NotFound(f"no such directory {part!r}")
            parent = entries[part]
            if not self._read_inode(parent).is_dir:
                raise NotADirectory(f"{part!r} is not a directory")
        return parent, parts[-1]

    @staticmethod
    def _components(path: str) -> list[str]:
        if not path.startswith("/"):
            raise FsError(f"path must be absolute: {path!r}")
        parts = [p for p in path.split("/") if p]
        for part in parts:
            dirfmt.validate_name(part)
        return parts

    @_timed("lookup")
    def lookup(self, path: str) -> int:
        """Resolve `path` to an inode number."""
        parts = self._components(path)
        inum = ROOT_INUM
        for part in parts:
            entries = self._dir_entries(inum)
            if part not in entries:
                raise NotFound(f"{path!r}: no entry {part!r}")
            inum = entries[part]
        return inum

    @_timed("create")
    def create(self, path: str) -> int:
        """Create an empty regular file."""
        return self._create(path, TYPE_FILE)

    @_timed("mkdir")
    def mkdir(self, path: str) -> int:
        return self._create(path, TYPE_DIR)

    def _create(self, path: str, itype: int) -> int:
        parent, name = self._split(path)
        entries = self._dir_entries(parent)
        if name in entries:
            raise Exists(f"{path!r} already exists")
        # the inode becomes durable before any name references it: a crash
        # in the window leaves an orphan inode (fsck-recoverable), never a
        # directory entry naming free storage
        inum = self._alloc_inode(itype)
        self._add_dir_entry(parent, name, inum)
        return inum

    @_timed("link")
    def link(self, old_path: str, new_path: str) -> None:
        """Create a hard link: `new_path` names the same inode as
        `old_path`.  Directories cannot be hard-linked."""
        inum = self.lookup(old_path)
        inode = self._read_inode(inum)
        if inode.is_dir:
            raise IsADirectory(f"cannot hard-link directory {old_path!r}")
        parent, name = self._split(new_path)
        entries = self._dir_entries(parent)
        if name in entries:
            raise Exists(f"{new_path!r} already exists")
        self._add_dir_entry(parent, name, inum)
        # a crash between the two writes leaves an extra entry with a low
        # nlink — an fsck-recoverable mismatch, never dangling structure
        inode = self._read_inode(inum)
        inode.nlink += 1
        self._write_inode(inum, inode)

    @_timed("unlink")
    def unlink(self, path: str) -> None:
        parent, name = self._split(path)
        entries = self._dir_entries(parent)
        if name not in entries:
            raise NotFound(f"{path!r} does not exist")
        inum = entries[name]
        inode = self._read_inode(inum)
        if inode.is_dir and self._dir_entries(inum):
            raise DirectoryNotEmpty(f"{path!r} is not empty")
        # Crash-safe ordering: drop the name first (one atomic slot
        # write).  A crash after it leaves an orphan inode (reported by
        # fsck, reclaimable), never a directory entry naming a freed inode.
        self._del_dir_entry(parent, name)
        if inode.is_dir:
            self._write_inode(inum, Inode())  # free the directory inode
        elif inode.nlink > 1:
            inode.nlink -= 1
            self._write_inode(inum, inode)  # other links keep the data
        else:
            self.truncate(inum, 0)
            self._write_inode(inum, Inode())  # last link: free everything

    @_timed("rename")
    def rename(self, old_path: str, new_path: str) -> None:
        old_parent, old_name = self._split(old_path)
        old_entries = self._dir_entries(old_parent)
        if old_name not in old_entries:
            raise NotFound(f"{old_path!r} does not exist")
        inum = old_entries[old_name]
        new_parent, new_name = self._split(new_path)
        new_entries = self._dir_entries(new_parent)
        if new_name in new_entries:
            raise Exists(f"{new_path!r} already exists")
        if new_parent == old_parent:
            # rewrite the existing slot in place: rename within one
            # directory is a single atomic sector write
            data = self._dir_raw(old_parent)
            offset = dirfmt.find_slot(data, old_name)
            self.write_at(old_parent, offset,
                          dirfmt.encode_slot(new_name, inum))
            return
        # across directories: the new name lands before the old one is
        # dropped — a crash in the window shows both names (an
        # fsck-recoverable nlink mismatch), never neither
        self._add_dir_entry(new_parent, new_name, inum)
        self._del_dir_entry(old_parent, old_name)

    @_timed("readdir")
    def readdir(self, path: str) -> list[str]:
        inum = self.lookup(path) if path != "/" else ROOT_INUM
        return sorted(self._dir_entries(inum))

    def stat(self, path: str) -> Stat:
        inum = self.lookup(path) if path != "/" else ROOT_INUM
        return self.stat_inum(inum)

    def exists(self, path: str) -> bool:
        try:
            self.lookup(path)
            return True
        except FsError:
            return False
