"""The filesystem's view of a disk: a checked block device with a tiny
write-through cache layer kept deliberately simple (correctness first)."""

from __future__ import annotations

from repro.hw.devices.disk import Disk

BLOCK_SIZE = Disk.SECTOR_SIZE


class BlockDevice:
    """Whole-block reads/writes over a :class:`Disk`."""

    def __init__(self, disk: Disk) -> None:
        self.disk = disk

    @property
    def num_blocks(self) -> int:
        return self.disk.num_sectors

    def read(self, block: int) -> bytes:
        return self.disk.read_sector(block)

    def write(self, block: int, data: bytes) -> None:
        if len(data) < BLOCK_SIZE:
            data = data + bytes(BLOCK_SIZE - len(data))
        self.disk.write_sector(block, data)

    def zero(self, block: int) -> None:
        self.disk.write_sector(block, bytes(BLOCK_SIZE))
