"""A cluster of simulated machines connected by links.

The distributed applications (the GFS/S3-style storage node of the paper's
introduction) run client and server kernels side by side; the cluster
interleaves their schedulers and pumps the links between their NICs.
"""

from __future__ import annotations

from repro.nros.kernel import Kernel, KernelPanic
from repro.nros.net.link import Link
from repro.nros.proc.process import ProcessState


class Cluster:
    """Several kernels sharing a network fabric."""

    def __init__(self) -> None:
        self.kernels: list[Kernel] = []
        self.links: list[Link] = []
        self._links_by_pair: list[tuple[Kernel, Kernel, Link]] = []

    def add(self, kernel: Kernel) -> Kernel:
        if kernel.net is None:
            raise ValueError(f"kernel {kernel.hostname!r} has no network")
        self.kernels.append(kernel)
        return kernel

    def remove(self, kernel: Kernel) -> None:
        """Unplug one machine: drop it and every cable touching it.

        This is the physical half of a node restart — the deployment
        layer removes the dead kernel, boots a replacement from the dead
        disk's image, and re-cables it with :meth:`connect`."""
        if kernel not in self.kernels:
            raise ValueError(f"kernel {kernel.hostname!r} is not in "
                             f"this cluster")
        self.kernels.remove(kernel)
        dead = [link for a, b, link in self._links_by_pair
                if a is kernel or b is kernel]
        self._links_by_pair = [(a, b, link) for a, b, link
                               in self._links_by_pair
                               if a is not kernel and b is not kernel]
        self.links = [link for link in self.links if link not in dead]

    def connect(self, a: Kernel, b: Kernel, drop_rate: float = 0.0,
                seed: int = 0, fault_plan=None) -> Link:
        """Cable two machines together and teach them each other's MAC.

        Both endpoints are validated before anything is mutated, so a
        half-networked pair can never leave one kernel with a neighbour
        entry (or the cluster with a dangling link) for a connection
        that was refused."""
        for kernel in (a, b):
            if kernel.net is None or kernel.nic is None:
                raise ValueError(
                    f"kernel {kernel.hostname!r} has no network; both "
                    f"ends of a link must be networked")
        link = Link(a.nic, b.nic, drop_rate=drop_rate, seed=seed,
                    fault_plan=fault_plan)
        a.net.add_neighbour(b.net.ip, b.nic.mac)
        b.net.add_neighbour(a.net.ip, a.nic.mac)
        self.links.append(link)
        self._links_by_pair.append((a, b, link))
        return link

    def links_between(self, a: Kernel, b: Kernel) -> list[Link]:
        """Every cable joining this pair, in connect order."""
        return [link for x, y, link in self._links_by_pair
                if (x is a and y is b) or (x is b and y is a)]

    def partition(self, a: Kernel, b: Kernel) -> int:
        """Sever every link between `a` and `b` (frames silently drop
        until :meth:`heal`); returns the number of links cut.  This is
        the hook the fault campaign drives for network partitions."""
        links = self.links_between(a, b)
        if not links:
            raise ValueError(
                f"no link between {a.hostname!r} and {b.hostname!r}")
        for link in links:
            link.partition()
        return len(links)

    def heal(self, a: Kernel, b: Kernel) -> int:
        """Undo :meth:`partition` for this pair; returns links healed."""
        links = self.links_between(a, b)
        if not links:
            raise ValueError(
                f"no link between {a.hostname!r} and {b.hostname!r}")
        for link in links:
            link.heal()
        return len(links)

    def _pump(self) -> None:
        for link in self.links:
            link.pump()
        for kernel in self.kernels:
            kernel._pump_network()

    def _alive(self) -> bool:
        return any(
            p.state is ProcessState.ALIVE
            for kernel in self.kernels
            for p in kernel.processes.values()
        )

    def run(self, max_rounds: int = 200_000) -> None:
        """Interleave all kernels until every process everywhere exits."""
        idle_rounds = 0
        for _ in range(max_rounds):
            if not self._alive():
                return
            progressed = False
            for kernel in self.kernels:
                if kernel.step(max_threads=8):
                    progressed = True
                self._pump()
            if progressed:
                idle_rounds = 0
                continue
            for kernel in self.kernels:
                kernel.advance_time()
            self._pump()
            idle_rounds += 1
            if idle_rounds > 10_000:
                raise KernelPanic("cluster deadlock: no progress")
        raise KernelPanic(f"cluster did not finish in {max_rounds} rounds")
