"""A cluster of simulated machines connected by links.

The distributed applications (the GFS/S3-style storage node of the paper's
introduction) run client and server kernels side by side; the cluster
interleaves their schedulers and pumps the links between their NICs.
"""

from __future__ import annotations

from repro.nros.kernel import Kernel, KernelPanic
from repro.nros.net.link import Link
from repro.nros.proc.process import ProcessState


class Cluster:
    """Several kernels sharing a network fabric."""

    def __init__(self) -> None:
        self.kernels: list[Kernel] = []
        self.links: list[Link] = []

    def add(self, kernel: Kernel) -> Kernel:
        if kernel.net is None:
            raise ValueError(f"kernel {kernel.hostname!r} has no network")
        self.kernels.append(kernel)
        return kernel

    def connect(self, a: Kernel, b: Kernel, drop_rate: float = 0.0,
                seed: int = 0) -> Link:
        """Cable two machines together and teach them each other's MAC."""
        if a.net is None or b.net is None:
            raise ValueError("both kernels need networking")
        link = Link(a.nic, b.nic, drop_rate=drop_rate, seed=seed)
        a.net.add_neighbour(b.net.ip, b.nic.mac)
        b.net.add_neighbour(a.net.ip, a.nic.mac)
        self.links.append(link)
        return link

    def _pump(self) -> None:
        for link in self.links:
            link.pump()
        for kernel in self.kernels:
            kernel._pump_network()

    def _alive(self) -> bool:
        return any(
            p.state is ProcessState.ALIVE
            for kernel in self.kernels
            for p in kernel.processes.values()
        )

    def run(self, max_rounds: int = 200_000) -> None:
        """Interleave all kernels until every process everywhere exits."""
        idle_rounds = 0
        for _ in range(max_rounds):
            if not self._alive():
                return
            progressed = False
            for kernel in self.kernels:
                if kernel.step(max_threads=8):
                    progressed = True
                self._pump()
            if progressed:
                idle_rounds = 0
                continue
            for kernel in self.kernels:
                kernel.advance_time()
            self._pump()
            idle_rounds += 1
            if idle_rounds > 10_000:
                raise KernelPanic("cluster deadlock: no progress")
        raise KernelPanic(f"cluster did not finish in {max_rounds} rounds")
