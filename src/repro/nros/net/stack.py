"""The per-host network stack.

Wires the layers together: Ethernet framing over the NIC, IPv4 with a
static neighbour table (ARP is a lookup, not a protocol, on our fabric),
UDP sockets, and RDP reliable connections multiplexed over UDP ports.

The stack is polled: `poll()` drains the NIC receive ring and dispatches;
`tick(now)` drives RDP (re)transmission.  The kernel calls both from its
scheduler loop, the way a driver bottom-half would run."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.hw.devices.nic import Nic
from repro.nros.net import arp, rdp
from repro.nros.net.arp import ETHERTYPE_ARP, ArpError, ArpPacket
from repro.nros.net.eth import BROADCAST, ETHERTYPE_IPV4, EthFrame, FrameError
from repro.nros.net.ip import Ipv4Packet, PacketError, PROTO_UDP
from repro.nros.net.rdp import (
    RdpConnection,
    RdpError,
    RdpGiveUp,
    RdpSegment,
    STATE_ESTABLISHED,
)
from repro.nros.net.udp import DatagramError, UdpDatagram


class NetError(Exception):
    pass


@dataclass
class UdpSocket:
    port: int = 0
    recv_queue: deque = field(default_factory=deque)  # (src_ip, src_port, data)


@dataclass
class RdpListener:
    port: int
    pending: deque = field(default_factory=deque)  # newly accepted conns


class NetStack:
    """One host's stack."""

    EPHEMERAL_BASE = 49152

    def __init__(self, ip: int, nic: Nic) -> None:
        self.ip = ip
        self.nic = nic
        self.neighbours: dict[int, bytes] = {ip: nic.mac}
        self._udp_ports: dict[int, UdpSocket] = {}
        self._listeners: dict[int, RdpListener] = {}
        self._conns: dict[tuple, RdpConnection] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE
        self._next_conn_id = 1
        self._arp_pending: dict[int, list[bytes]] = {}  # ip -> queued UDP
        self.now = 0
        self.stats_rx = 0
        self.stats_tx = 0
        self.stats_bad = 0
        self.stats_arp_requests = 0
        self.stats_arp_replies = 0
        self.stats_gave_up = 0

    # -- neighbours ---------------------------------------------------------------

    def add_neighbour(self, ip: int, mac: bytes) -> None:
        self.neighbours[ip] = mac

    # -- UDP ----------------------------------------------------------------------

    def udp_bind(self, port: int) -> UdpSocket:
        if port in self._udp_ports or port in self._listeners:
            raise NetError(f"port {port} already bound")
        sock = UdpSocket(port=port)
        self._udp_ports[port] = sock
        return sock

    def udp_send(self, src_port: int, dst_ip: int, dst_port: int,
                 payload: bytes) -> None:
        datagram = UdpDatagram(src_port, dst_port, payload)
        self._send_ip(dst_ip, datagram.encode(self.ip, dst_ip))

    def _send_ip(self, dst_ip: int, udp_bytes: bytes) -> None:
        dst_mac = self.neighbours.get(dst_ip)
        if dst_mac is None:
            # resolve via ARP: queue the datagram, broadcast a request
            pending = self._arp_pending.setdefault(dst_ip, [])
            if len(pending) < 16:
                pending.append(udp_bytes)
            self._send_arp(arp.request(self.nic.mac, self.ip, dst_ip))
            self.stats_arp_requests += 1
            return
        packet = Ipv4Packet(src=self.ip, dst=dst_ip, proto=PROTO_UDP,
                            payload=udp_bytes)
        frame = EthFrame(dst=dst_mac, src=self.nic.mac,
                         ethertype=ETHERTYPE_IPV4, payload=packet.encode())
        if dst_ip == self.ip:
            # loopback: short-circuit into our own receive ring
            self.nic.deliver(frame.encode())
        else:
            self.nic.transmit(frame.encode())
        self.stats_tx += 1

    # -- RDP ---------------------------------------------------------------------------

    def rdp_listen(self, port: int) -> RdpListener:
        if port in self._listeners or port in self._udp_ports:
            raise NetError(f"port {port} already bound")
        listener = RdpListener(port=port)
        self._listeners[port] = listener
        return listener

    def rdp_connect(self, dst_ip: int, dst_port: int) -> RdpConnection:
        local_port = self._alloc_ephemeral()
        conn = RdpConnection(
            conn_id=self._next_conn_id,
            local_port=local_port,
            remote_ip=dst_ip,
            remote_port=dst_port,
        )
        self._next_conn_id += 1
        self._conns[(local_port, dst_ip, dst_port, conn.conn_id)] = conn
        return conn

    def rdp_send(self, conn: RdpConnection, payload: bytes) -> None:
        conn.queue_send(payload)

    def rdp_recv(self, conn: RdpConnection) -> bytes | None:
        if conn.recv_queue:
            return conn.recv_queue.popleft()
        if conn.error is not None:
            # delivery stopped for a reason; surface it, don't stall
            raise conn.error
        return None

    def rdp_close(self, conn: RdpConnection) -> None:
        if conn.state != rdp.STATE_CLOSED:
            segment = RdpSegment(rdp.TYPE_FIN, conn.conn_id, 0, 0)
            self._send_segment(conn, segment)
            conn.state = rdp.STATE_CLOSED

    def _alloc_ephemeral(self) -> int:
        while (self._next_ephemeral in self._udp_ports
               or self._next_ephemeral in self._listeners):
            self._next_ephemeral += 1
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def _send_segment(self, conn: RdpConnection, segment: RdpSegment) -> None:
        datagram = UdpDatagram(conn.local_port, conn.remote_port,
                               segment.encode())
        self._send_ip(conn.remote_ip, datagram.encode(self.ip, conn.remote_ip))

    # -- receive path -------------------------------------------------------------------

    def poll(self) -> int:
        """Drain the NIC rx ring; returns datagrams dispatched."""
        handled = 0
        while True:
            raw = self.nic.receive()
            if raw is None:
                return handled
            handled += self._handle_frame(raw)

    def _send_arp(self, packet: ArpPacket) -> None:
        frame = EthFrame(dst=BROADCAST, src=self.nic.mac,
                         ethertype=ETHERTYPE_ARP, payload=packet.encode())
        self.nic.transmit(frame.encode())

    def _handle_arp(self, payload: bytes) -> None:
        try:
            packet = ArpPacket.decode(payload)
        except ArpError:
            self.stats_bad += 1
            return
        # learn the sender's mapping either way
        self.neighbours[packet.sender_ip] = packet.sender_mac
        if packet.op == arp.OP_REQUEST and packet.target_ip == self.ip:
            self._send_arp(arp.reply(self.nic.mac, self.ip,
                                     packet.sender_mac, packet.sender_ip))
            self.stats_arp_replies += 1
        # flush datagrams that were waiting on this resolution
        queued = self._arp_pending.pop(packet.sender_ip, [])
        for udp_bytes in queued:
            self._send_ip(packet.sender_ip, udp_bytes)

    def _handle_frame(self, raw: bytes) -> int:
        try:
            frame = EthFrame.decode(raw)
            if frame.ethertype == ETHERTYPE_ARP:
                self._handle_arp(frame.payload)
                return 0
            if frame.ethertype != ETHERTYPE_IPV4:
                return 0
            packet = Ipv4Packet.decode(frame.payload)
            if packet.dst != self.ip or packet.proto != PROTO_UDP:
                return 0
            datagram = UdpDatagram.decode(packet.payload, packet.src,
                                          packet.dst)
        except (FrameError, PacketError, DatagramError):
            self.stats_bad += 1
            return 0
        self.stats_rx += 1
        port = datagram.dst_port

        # RDP listener or connection traffic?
        if port in self._listeners:
            self._handle_rdp_server(packet.src, datagram)
            return 1
        conn = self._find_conn(port, packet.src, datagram.src_port,
                               datagram.payload)
        if conn is not None:
            try:
                segment = RdpSegment.decode(datagram.payload)
            except RdpError:
                self.stats_bad += 1
                return 0
            for reply in conn.on_segment(segment):
                self._send_segment(conn, reply)
            return 1
        sock = self._udp_ports.get(port)
        if sock is not None:
            sock.recv_queue.append(
                (packet.src, datagram.src_port, datagram.payload)
            )
            return 1
        return 0  # no listener: drop

    def _find_conn(self, local_port: int, remote_ip: int, remote_port: int,
                   payload: bytes) -> RdpConnection | None:
        try:
            segment = RdpSegment.decode(payload)
        except RdpError:
            return None
        key = (local_port, remote_ip, remote_port, segment.conn_id)
        return self._conns.get(key)

    def _handle_rdp_server(self, src_ip: int, datagram: UdpDatagram) -> None:
        listener = self._listeners[datagram.dst_port]
        try:
            segment = RdpSegment.decode(datagram.payload)
        except RdpError:
            self.stats_bad += 1
            return
        key = (datagram.dst_port, src_ip, datagram.src_port, segment.conn_id)
        conn = self._conns.get(key)
        if segment.kind == rdp.TYPE_SYN:
            if conn is None:
                conn = RdpConnection(
                    conn_id=segment.conn_id,
                    local_port=datagram.dst_port,
                    remote_ip=src_ip,
                    remote_port=datagram.src_port,
                    state=STATE_ESTABLISHED,
                )
                self._conns[key] = conn
                listener.pending.append(conn)
            # (re)confirm: SYNACK is idempotent
            self._send_segment(
                conn, RdpSegment(rdp.TYPE_SYNACK, conn.conn_id, 0, 0)
            )
            return
        if conn is None:
            return  # segment for an unknown connection: drop
        for reply in conn.on_segment(segment):
            self._send_segment(conn, reply)

    # -- timers ------------------------------------------------------------------------------

    def tick(self, now: int | None = None) -> None:
        """Advance RDP timers; (re)transmit whatever is due.

        A connection that exhausts its retries closes with a sticky
        :class:`RdpGiveUp`; the timer loop survives and the error reaches
        the application at its next send/recv against that connection."""
        self.now = self.now + 1 if now is None else now
        for key, conn in list(self._conns.items()):
            try:
                segment = conn.next_outgoing(self.now)
            except RdpGiveUp:
                self.stats_gave_up += 1
                del self._conns[key]
                continue
            if segment is not None:
                self._send_segment(conn, segment)
