"""IPv4 packets with a real header checksum.

No options, no fragmentation (links carry whole datagrams; the MTU of the
simulated fabric is generous), but the header layout and the ones'-
complement checksum are the real thing — corrupted headers are detected and
dropped, which the lossy-link tests rely on."""

from __future__ import annotations

import struct
from dataclasses import dataclass

PROTO_UDP = 17
HEADER_LEN = 20


class PacketError(Exception):
    pass


def checksum16(data: bytes) -> int:
    """RFC 1071 ones'-complement sum."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


@dataclass(frozen=True)
class Ipv4Packet:
    src: int        # 32-bit address
    dst: int
    proto: int
    payload: bytes
    ttl: int = 64

    def encode(self) -> bytes:
        total_len = HEADER_LEN + len(self.payload)
        header = struct.pack(
            ">BBHHHBBHII",
            0x45, 0, total_len, 0, 0, self.ttl, self.proto, 0,
            self.src, self.dst,
        )
        cksum = checksum16(header)
        header = header[:10] + cksum.to_bytes(2, "big") + header[12:]
        return header + self.payload

    @staticmethod
    def decode(data: bytes) -> "Ipv4Packet":
        if len(data) < HEADER_LEN:
            raise PacketError("packet shorter than IPv4 header")
        (vihl, _tos, total_len, _ident, _frag, ttl, proto, cksum,
         src, dst) = struct.unpack(">BBHHHBBHII", data[:HEADER_LEN])
        if vihl != 0x45:
            raise PacketError(f"unsupported version/IHL {vihl:#x}")
        if total_len > len(data):
            raise PacketError("truncated packet")
        header_zeroed = data[:10] + b"\x00\x00" + data[12:HEADER_LEN]
        if checksum16(header_zeroed) != cksum:
            raise PacketError("header checksum mismatch")
        return Ipv4Packet(
            src=src, dst=dst, proto=proto,
            payload=data[HEADER_LEN:total_len], ttl=ttl,
        )


def ip_str(addr: int) -> str:
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ip_addr(dotted: str) -> int:
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {dotted!r}")
    value = 0
    for part in parts:
        byte = int(part)
        if not 0 <= byte <= 255:
            raise ValueError(f"bad IPv4 address {dotted!r}")
        value = (value << 8) | byte
    return value
