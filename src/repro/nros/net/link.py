"""Virtual cables between NICs, optionally lossy.

`pump()` moves frames queued in each NIC's tx ring into the peer's rx ring;
a seeded drop rate models an unreliable fabric (what RDP's retransmission
is for).  A :class:`Hub` connects more than two NICs by flooding, with MAC
filtering at delivery.

A :class:`Link` can also carry a :class:`~repro.faults.plan.FaultPlan`:
each frame crossing the cable draws at site ``"link.tx"`` and the firing
rule's kind decides its fate — ``drop`` (silent loss), ``dup`` (delivered
twice), ``corrupt`` (one byte flipped in flight; the IP/UDP checksums make
this a detectable drop at the receiver), or ``reorder`` (held back and
delivered after the frames behind it).  This is the adversity RDP's
retransmission, duplicate-suppression, and sequencing machinery exists
for, driven through the real NIC rings and the real stack.
"""

from __future__ import annotations

import random

from repro.hw.devices.nic import Nic
from repro.nros.net.eth import BROADCAST, HEADER_LEN, EthFrame, FrameError


class Link:
    """A point-to-point cable.

    Several links may share one NIC (a multi-node mesh cables each
    machine to every other through its single interface), so a link only
    takes the frames addressed to *its* peer — unicast to the peer's
    MAC, broadcast, or runts the receiver will count as bad — and leaves
    the rest queued for whichever cable leads to their destination."""

    def __init__(self, a: Nic, b: Nic, drop_rate: float = 0.0,
                 seed: int = 0, fault_plan=None) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop rate must be in [0, 1)")
        self.a = a
        self.b = b
        self.drop_rate = drop_rate
        self._rng = random.Random(seed)
        self.fault_plan = fault_plan
        self.partitioned = False
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.corrupted = 0
        self.reordered = 0

    def partition(self) -> None:
        """Cut the cable: every frame in either direction is dropped
        until :meth:`heal` — total loss, what a severed path looks like
        to RDP's retransmission and the cluster failure detector."""
        self.partitioned = True

    def heal(self) -> None:
        self.partitioned = False

    def _take_for(self, src: Nic, peer: Nic) -> list[bytes]:
        """Pull the frames in `src`'s tx ring this cable should carry."""
        taken: list[bytes] = []
        kept: list[bytes] = []
        for frame in src.tx_ring:
            dst_mac = frame[0:6]
            if (dst_mac == peer.mac or dst_mac == BROADCAST
                    or len(frame) < HEADER_LEN):
                taken.append(frame)
            else:
                kept.append(frame)
        src.tx_ring.clear()
        src.tx_ring.extend(kept)
        return taken

    def pump(self) -> int:
        """Move pending frames in both directions; returns frames moved."""
        if self.partitioned:
            for src, peer in ((self.a, self.b), (self.b, self.a)):
                self.dropped += len(self._take_for(src, peer))
            return 0
        moved = 0
        for src, dst in ((self.a, self.b), (self.b, self.a)):
            held: list[bytes] = []   # reordered frames, delivered last
            for frame in self._take_for(src, dst):
                if self.drop_rate and self._rng.random() < self.drop_rate:
                    self.dropped += 1
                    continue
                decision = self.fault_plan.draw("link.tx") \
                    if self.fault_plan is not None else None
                if decision is not None:
                    if decision.kind == "drop":
                        self.dropped += 1
                        continue
                    if decision.kind == "dup":
                        self.duplicated += 1
                        dst.deliver(frame)
                        self.delivered += 1
                        moved += 1
                    elif decision.kind == "corrupt":
                        self.corrupted += 1
                        offset = decision.rand_below(len(frame)) \
                            if frame else 0
                        damaged = bytearray(frame)
                        if damaged:
                            damaged[offset] ^= 0xFF
                        frame = bytes(damaged)
                    elif decision.kind == "reorder":
                        self.reordered += 1
                        held.append(frame)
                        continue
                dst.deliver(frame)
                self.delivered += 1
                moved += 1
            for frame in held:
                dst.deliver(frame)
                self.delivered += 1
                moved += 1
        return moved


class Hub:
    """A flooding hub joining several NICs (MAC-filtered delivery)."""

    def __init__(self, nics: list[Nic], drop_rate: float = 0.0,
                 seed: int = 0) -> None:
        if len(nics) < 2:
            raise ValueError("a hub needs at least two NICs")
        self.nics = list(nics)
        self.drop_rate = drop_rate
        self._rng = random.Random(seed)
        self.delivered = 0
        self.dropped = 0

    def pump(self) -> int:
        moved = 0
        for src in self.nics:
            for raw in src.drain_tx():
                try:
                    frame = EthFrame.decode(raw)
                except FrameError:
                    self.dropped += 1
                    continue
                for dst in self.nics:
                    if dst is src:
                        continue
                    if frame.dst not in (dst.mac, BROADCAST):
                        continue
                    if self.drop_rate and self._rng.random() < self.drop_rate:
                        self.dropped += 1
                        continue
                    dst.deliver(raw)
                    self.delivered += 1
                    moved += 1
        return moved
