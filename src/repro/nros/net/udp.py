"""UDP datagrams with the pseudo-header checksum."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.nros.net.ip import PROTO_UDP, checksum16

HEADER_LEN = 8


class DatagramError(Exception):
    pass


@dataclass(frozen=True)
class UdpDatagram:
    src_port: int
    dst_port: int
    payload: bytes

    def encode(self, src_ip: int, dst_ip: int) -> bytes:
        length = HEADER_LEN + len(self.payload)
        header = struct.pack(">HHHH", self.src_port, self.dst_port, length, 0)
        pseudo = struct.pack(">IIBBH", src_ip, dst_ip, 0, PROTO_UDP, length)
        cksum = checksum16(pseudo + header + self.payload)
        header = header[:6] + cksum.to_bytes(2, "big")
        return header + self.payload

    @staticmethod
    def decode(data: bytes, src_ip: int, dst_ip: int) -> "UdpDatagram":
        if len(data) < HEADER_LEN:
            raise DatagramError("datagram shorter than UDP header")
        src_port, dst_port, length, cksum = struct.unpack(">HHHH", data[:8])
        if length > len(data):
            raise DatagramError("truncated datagram")
        payload = data[HEADER_LEN:length]
        pseudo = struct.pack(">IIBBH", src_ip, dst_ip, 0, PROTO_UDP, length)
        zeroed = data[:6] + b"\x00\x00" + payload
        if checksum16(pseudo + zeroed) != cksum:
            raise DatagramError("UDP checksum mismatch")
        return UdpDatagram(src_port=src_port, dst_port=dst_port,
                           payload=payload)
