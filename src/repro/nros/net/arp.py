"""ARP: address resolution on the simulated fabric.

Before this module the stack used a static neighbour table; with it, a
host that lacks a MAC for a destination IP broadcasts a real ARP request,
queues the outbound datagram, and transmits it when the reply arrives —
including the classic gratuitous-learning behaviour (requests teach the
responder the requester's mapping).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

ETHERTYPE_ARP = 0x0806
OP_REQUEST = 1
OP_REPLY = 2

# hardware type 1 (ethernet), proto 0x0800 (ipv4), hlen 6, plen 4, op
_HEADER = struct.Struct(">HHBBH6sI6sI")


class ArpError(Exception):
    pass


@dataclass(frozen=True)
class ArpPacket:
    op: int
    sender_mac: bytes
    sender_ip: int
    target_mac: bytes
    target_ip: int

    def encode(self) -> bytes:
        return _HEADER.pack(
            1, 0x0800, 6, 4, self.op,
            self.sender_mac, self.sender_ip,
            self.target_mac, self.target_ip,
        )

    @staticmethod
    def decode(data: bytes) -> "ArpPacket":
        if len(data) < _HEADER.size:
            raise ArpError("short ARP packet")
        (htype, ptype, hlen, plen, op,
         sender_mac, sender_ip, target_mac, target_ip) = _HEADER.unpack_from(data)
        if (htype, ptype, hlen, plen) != (1, 0x0800, 6, 4):
            raise ArpError(f"unsupported ARP header {htype}/{ptype:#x}")
        if op not in (OP_REQUEST, OP_REPLY):
            raise ArpError(f"bad ARP op {op}")
        return ArpPacket(op, sender_mac, sender_ip, target_mac, target_ip)


def request(sender_mac: bytes, sender_ip: int, target_ip: int) -> ArpPacket:
    return ArpPacket(OP_REQUEST, sender_mac, sender_ip, b"\x00" * 6,
                     target_ip)


def reply(sender_mac: bytes, sender_ip: int, target_mac: bytes,
          target_ip: int) -> ArpPacket:
    return ArpPacket(OP_REPLY, sender_mac, sender_ip, target_mac, target_ip)
