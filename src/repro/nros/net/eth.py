"""Ethernet framing."""

from __future__ import annotations

from dataclasses import dataclass

ETHERTYPE_IPV4 = 0x0800
BROADCAST = b"\xff" * 6
HEADER_LEN = 14


class FrameError(Exception):
    pass


@dataclass(frozen=True)
class EthFrame:
    dst: bytes
    src: bytes
    ethertype: int
    payload: bytes

    def __post_init__(self):
        if len(self.dst) != 6 or len(self.src) != 6:
            raise FrameError("MAC addresses are 6 bytes")
        if not 0 <= self.ethertype <= 0xFFFF:
            raise FrameError(f"bad ethertype {self.ethertype:#x}")

    def encode(self) -> bytes:
        return (self.dst + self.src
                + self.ethertype.to_bytes(2, "big") + self.payload)

    @staticmethod
    def decode(data: bytes) -> "EthFrame":
        if len(data) < HEADER_LEN:
            raise FrameError(f"frame too short: {len(data)} bytes")
        return EthFrame(
            dst=data[0:6],
            src=data[6:12],
            ethertype=int.from_bytes(data[12:14], "big"),
            payload=data[14:],
        )
