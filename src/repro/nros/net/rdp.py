"""RDP: a reliable datagram protocol over UDP.

The paper's storage-node application needs reliable delivery; RDP provides
it with the classic machinery: a three-way-lite handshake (SYN / SYNACK),
stop-and-wait acknowledgements with sequence numbers, timeout-driven
retransmission, duplicate suppression, and FIN teardown.  Message-oriented:
one `send` is one delivered message, in order, exactly once.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass, field

from repro import obs

TYPE_SYN = 1
TYPE_SYNACK = 2
TYPE_DATA = 3
TYPE_ACK = 4
TYPE_FIN = 5

_HEADER = struct.Struct(">BIII")  # type, conn_id, seq, ack

RETRANSMIT_TICKS = 4
MAX_RETRIES = 30

# Process-wide RDP instruments: retransmissions are the protocol's cost
# of riding out loss, give-ups its typed surrender — both first-class
# counters so a traced run shows how hard the transport had to work.
_RETRANSMITS = obs.counter("rdp.retransmissions")
_GIVE_UPS = obs.counter("rdp.give_ups")


class RdpError(Exception):
    pass


class RdpGiveUp(RdpError):
    """Retransmission exhausted MAX_RETRIES with no ACK progress.

    Raised by :meth:`RdpConnection.next_outgoing` (and re-raised to any
    later send/receive against the connection) instead of stalling
    silently: the caller learns *that* and *why* delivery stopped.  Any
    ACK progress resets the retry counter, so only a genuinely dead peer
    or a blacked-out path trips this."""

    def __init__(self, message: str, retries: int = 0) -> None:
        super().__init__(message)
        self.retries = retries


@dataclass(frozen=True)
class RdpSegment:
    kind: int
    conn_id: int
    seq: int
    ack: int
    payload: bytes = b""

    def encode(self) -> bytes:
        return _HEADER.pack(self.kind, self.conn_id, self.seq, self.ack) + self.payload

    @staticmethod
    def decode(data: bytes) -> "RdpSegment":
        if len(data) < _HEADER.size:
            raise RdpError("segment shorter than RDP header")
        kind, conn_id, seq, ack = _HEADER.unpack_from(data)
        if kind not in (TYPE_SYN, TYPE_SYNACK, TYPE_DATA, TYPE_ACK, TYPE_FIN):
            raise RdpError(f"bad segment type {kind}")
        return RdpSegment(kind, conn_id, seq, ack, data[_HEADER.size:])


STATE_SYN_SENT = "syn-sent"
STATE_ESTABLISHED = "established"
STATE_CLOSED = "closed"


@dataclass
class RdpConnection:
    """One reliable connection endpoint."""

    conn_id: int
    local_port: int
    remote_ip: int
    remote_port: int
    state: str = STATE_SYN_SENT
    send_seq: int = 0          # seq of the next message to send
    recv_seq: int = 0          # seq expected next from the peer
    unacked: RdpSegment | None = None
    send_queue: deque = field(default_factory=deque)   # pending payloads
    recv_queue: deque = field(default_factory=deque)   # delivered messages
    last_send_tick: int = 0
    retries: int = 0
    retransmissions: int = 0
    error: RdpError | None = None

    @property
    def can_send_now(self) -> bool:
        return self.state == STATE_ESTABLISHED and self.unacked is None

    def queue_send(self, payload: bytes) -> None:
        if self.error is not None:
            raise self.error
        if self.state == STATE_CLOSED:
            raise RdpError("connection closed")
        self.send_queue.append(payload)

    def _give_up(self, what: str) -> RdpGiveUp:
        self.state = STATE_CLOSED
        _GIVE_UPS.inc()
        self.error = RdpGiveUp(
            f"{what} retransmitted {MAX_RETRIES} times with no ACK "
            f"progress; giving up", retries=self.retries)
        return self.error

    def next_outgoing(self, now: int) -> RdpSegment | None:
        """The segment to transmit now, if any (new data or retransmit).

        Raises :class:`RdpGiveUp` once MAX_RETRIES elapse without ACK
        progress — the connection closes and the error sticks to it."""
        if self.state == STATE_SYN_SENT:
            if now - self.last_send_tick >= RETRANSMIT_TICKS or self.retries == 0:
                self.last_send_tick = now
                self.retries += 1
                if self.retries > MAX_RETRIES:
                    raise self._give_up("SYN")
                return RdpSegment(TYPE_SYN, self.conn_id, 0, 0)
            return None
        if self.state != STATE_ESTABLISHED:
            return None
        if self.unacked is not None:
            if now - self.last_send_tick >= RETRANSMIT_TICKS:
                self.last_send_tick = now
                self.retries += 1
                self.retransmissions += 1
                _RETRANSMITS.inc()
                if self.retries > MAX_RETRIES:
                    raise self._give_up(f"DATA seq {self.send_seq}")
                return self.unacked
            return None
        if self.send_queue:
            payload = self.send_queue.popleft()
            segment = RdpSegment(TYPE_DATA, self.conn_id, self.send_seq, 0,
                                 payload)
            self.unacked = segment
            self.last_send_tick = now
            self.retries = 0
            return segment
        return None

    def on_segment(self, segment: RdpSegment) -> list[RdpSegment]:
        """Process an incoming segment; returns segments to send back."""
        if self.state == STATE_CLOSED:
            return []
        if segment.kind == TYPE_SYNACK and self.state == STATE_SYN_SENT:
            self.state = STATE_ESTABLISHED
            self.retries = 0
            return []
        if segment.kind == TYPE_ACK:
            if self.unacked is not None and segment.ack == self.send_seq:
                self.unacked = None
                self.send_seq += 1
                self.retries = 0
            return []
        if segment.kind == TYPE_DATA:
            replies = [RdpSegment(TYPE_ACK, self.conn_id, 0, segment.seq)]
            if segment.seq == self.recv_seq:
                self.recv_queue.append(segment.payload)
                self.recv_seq += 1
            # duplicates (seq < recv_seq) are re-acked but not re-delivered
            return replies
        if segment.kind == TYPE_FIN:
            self.state = STATE_CLOSED
            return []
        return []
