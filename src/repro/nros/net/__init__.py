"""Package."""
