"""Processes and threads.

A user *thread* is a Python generator yielding :class:`Syscall` requests; a
*process* bundles threads with an address space and a descriptor table —
exactly the process model the paper's client contract abstracts
("an abstract model which only has virtualized memory, processes, threads,
and the abstract state of the network and file system").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ThreadState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    EXITED = "exited"


class ProcessState(enum.Enum):
    ALIVE = "alive"
    ZOMBIE = "zombie"   # exited, exit code not yet reaped by wait()
    REAPED = "reaped"


@dataclass
class BlockReason:
    """Why a thread is parked and what wakes it."""

    kind: str               # "futex" | "wait" | "join" | "sleep" | "net"
    key: object = None      # futex paddr / pid / tid / wake tick / socket key

    def __repr__(self) -> str:
        return f"<blocked on {self.kind}:{self.key}>"


class Thread:
    """One user thread."""

    _next_tid = 1

    def __init__(self, process: "Process", gen, name: str = "") -> None:
        self.tid = Thread._next_tid
        Thread._next_tid += 1
        self.process = process
        self.gen = gen
        self.name = name or f"{process.name}:t{self.tid}"
        self.state = ThreadState.READY
        self.block_reason: BlockReason | None = None
        # what to deliver when next resumed: ("value", v) or ("error", exc)
        self.pending: tuple[str, object] = ("value", None)
        self.exit_value = None

    def block(self, reason: BlockReason) -> None:
        self.state = ThreadState.BLOCKED
        self.block_reason = reason

    def wake(self, result=("value", None)) -> None:
        if self.state is ThreadState.EXITED:
            return
        self.state = ThreadState.READY
        self.block_reason = None
        self.pending = result


class Process:
    """One user process."""

    def __init__(self, pid: int, name: str, vspace, fdtable,
                 parent: int | None = None) -> None:
        self.pid = pid
        self.name = name
        self.vspace = vspace
        self.fdtable = fdtable
        self.parent = parent
        self.threads: dict[int, Thread] = {}
        self.children: set[int] = set()
        self.state = ProcessState.ALIVE
        self.exit_code: int | None = None
        self.sockets: dict[int, object] = {}   # sid -> socket object
        self.pending_signals: list[int] = []
        self._next_sid = 3
        # ring_id -> kernel-side SyscallRing (submission/completion pair)
        self.rings: dict[int, object] = {}
        self._next_ring_id = 1
        # bump-allocated user heap region for vm_map without explicit vaddr
        self.heap_next = 0x1000_0000

    def add_thread(self, gen, name: str = "") -> Thread:
        thread = Thread(self, gen, name)
        self.threads[thread.tid] = thread
        return thread

    @property
    def alive_threads(self) -> list[Thread]:
        return [t for t in self.threads.values()
                if t.state is not ThreadState.EXITED]

    def new_sid(self) -> int:
        sid = self._next_sid
        self._next_sid += 1
        return sid

    def new_ring_id(self) -> int:
        ring_id = self._next_ring_id
        self._next_ring_id += 1
        return ring_id
