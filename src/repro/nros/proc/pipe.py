"""Kernel pipes: bounded byte streams between processes.

Identified by a kernel-wide pipe id (a capability-by-id model, which keeps
descriptor inheritance out of scope): any process holding the id may read
or write.  Writes into a full pipe and reads from an empty one block;
closing the write end makes readers see EOF once the buffer drains;
closing the read end makes writers fail with EPIPE.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class PipeClosed(Exception):
    """Write after the read end closed."""


@dataclass
class Pipe:
    """One pipe's kernel state."""

    pipe_id: int
    capacity: int = 16 * 1024
    buffer: bytearray = field(default_factory=bytearray)
    write_closed: bool = False
    read_closed: bool = False
    bytes_written: int = 0
    bytes_read: int = 0

    @property
    def space(self) -> int:
        return self.capacity - len(self.buffer)

    def try_write(self, data: bytes) -> int | None:
        """Write as much as fits; None when the pipe is full (caller
        blocks), raises when the read end is gone."""
        if self.read_closed:
            raise PipeClosed(f"pipe {self.pipe_id}: read end closed")
        if self.write_closed:
            raise PipeClosed(f"pipe {self.pipe_id}: write end closed")
        if not data:
            return 0
        if self.space == 0:
            return None
        written = min(len(data), self.space)
        self.buffer += data[:written]
        self.bytes_written += written
        return written

    def try_read(self, length: int) -> bytes | None:
        """Read up to `length` bytes; b"" at EOF; None when empty but the
        writer is still around (caller blocks)."""
        if length <= 0:
            return b""
        if self.buffer:
            taken = bytes(self.buffer[:length])
            del self.buffer[:length]
            self.bytes_read += len(taken)
            return taken
        if self.write_closed:
            return b""  # EOF
        return None

    def close(self, end: str) -> None:
        if end == "r":
            self.read_closed = True
        elif end == "w":
            self.write_closed = True
        else:
            raise ValueError(f"pipe end must be 'r' or 'w', got {end!r}")


class PipeTable:
    """All pipes in one kernel."""

    def __init__(self) -> None:
        self._pipes: dict[int, Pipe] = {}
        self._next_id = 1

    def create(self, capacity: int = 16 * 1024) -> Pipe:
        pipe = Pipe(pipe_id=self._next_id, capacity=capacity)
        self._next_id += 1
        self._pipes[pipe.pipe_id] = pipe
        return pipe

    def get(self, pipe_id: int) -> Pipe | None:
        return self._pipes.get(pipe_id)

    def reap(self) -> int:
        """Drop fully-closed pipes; returns how many were reaped."""
        dead = [
            pid for pid, pipe in self._pipes.items()
            if pipe.read_closed and pipe.write_closed
        ]
        for pid in dead:
            del self._pipes[pid]
        return len(dead)
