"""Package."""
