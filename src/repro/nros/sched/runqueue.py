"""Per-core runqueues: a min-vruntime heap for the fair class, priority
deques for the RT classes.

The fair heap uses lazy deletion: each queued entity has exactly one
*valid* entry ``(vruntime, seq, tid)`` recorded in ``_valid``; removal
just drops the record, and stale heap entries are skipped when popped.
``seq`` is a per-queue enqueue counter so ties break by arrival order —
deterministic across runs, independent of tid allocation.

``min_vruntime`` is the monotone watermark new arrivals and woken
sleepers are clamped against, advanced on every fair pick; per-queue
weight and ready counts are maintained incrementally so ``Scheduler``
stays O(log n) per operation and ``has_runnable`` is O(1).
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.nros.sched.entity import SchedEntity, SchedPolicy, \
    RT_PRIO_MAX, RT_PRIO_MIN, SPREAD_LIMIT_NS


class CoreRunQueue:
    """One core's runqueue: fair heap + RT priority deques."""

    def __init__(self, core: int) -> None:
        self.core = core
        self._heap: list[tuple[int, int, int]] = []   # (vruntime, seq, tid)
        self._valid: dict[int, tuple[int, int, int]] = {}  # tid -> (v, seq, w)
        self._seq = 0
        self.fair_weight = 0
        self.min_vruntime = 0
        self._rt: dict[int, deque[int]] = {}          # prio -> tids
        self._rt_count = 0

    # -- fair class ---------------------------------------------------------

    @property
    def fair_count(self) -> int:
        return len(self._valid)

    @property
    def rt_count(self) -> int:
        return self._rt_count

    @property
    def ready_count(self) -> int:
        return len(self._valid) + self._rt_count

    def push_fair(self, tid: int, vruntime: int, weight: int) -> None:
        if tid in self._valid:
            raise AssertionError(
                f"tid {tid} already queued on core {self.core}")
        self._seq += 1
        entry = (vruntime, self._seq, tid)
        self._valid[tid] = (vruntime, self._seq, weight)
        self.fair_weight += weight
        heapq.heappush(self._heap, entry)

    def pop_fair(self) -> int | None:
        """The queued fair tid with minimum vruntime, or None."""
        while self._heap:
            vruntime, seq, tid = self._heap[0]
            current = self._valid.get(tid)
            if current is None or current[0] != vruntime \
                    or current[1] != seq:
                heapq.heappop(self._heap)     # stale (removed/requeued)
                continue
            heapq.heappop(self._heap)
            del self._valid[tid]
            self.fair_weight -= current[2]
            self.min_vruntime = max(self.min_vruntime, vruntime)
            return tid
        return None

    def remove_fair(self, tid: int) -> bool:
        """Lazy removal; the heap entry is skipped when it surfaces."""
        current = self._valid.pop(tid, None)
        if current is None:
            return False
        self.fair_weight -= current[2]
        return True

    def fair_vruntime(self, tid: int) -> int | None:
        current = self._valid.get(tid)
        return None if current is None else current[0]

    def steal_candidate(self) -> int | None:
        """The queued fair tid with *maximum* vruntime — the thread that
        has run the most, hence the cheapest to migrate fairness-wise.
        Ties break toward the highest tid (deterministic)."""
        best: tuple[int, int] | None = None
        for tid, (vruntime, _seq, _weight) in self._valid.items():
            key = (vruntime, tid)
            if best is None or key > best:
                best = key
        return None if best is None else best[1]

    # -- RT classes ---------------------------------------------------------

    def push_rt(self, tid: int, prio: int, front: bool = False) -> None:
        if not RT_PRIO_MIN <= prio <= RT_PRIO_MAX:
            raise AssertionError(f"rt prio {prio} out of range")
        queue = self._rt.setdefault(prio, deque())
        if tid in queue:
            raise AssertionError(
                f"tid {tid} already rt-queued on core {self.core}")
        if front:
            queue.appendleft(tid)
        else:
            queue.append(tid)
        self._rt_count += 1

    def top_rt_prio(self) -> int | None:
        best = None
        for prio, queue in self._rt.items():
            if queue and (best is None or prio > best):
                best = prio
        return best

    def pop_rt(self) -> int | None:
        """Head of the highest non-empty RT priority queue."""
        prio = self.top_rt_prio()
        if prio is None:
            return None
        tid = self._rt[prio].popleft()
        self._rt_count -= 1
        return tid

    def remove_rt(self, tid: int, prio: int) -> bool:
        queue = self._rt.get(prio)
        if queue is None or tid not in queue:
            return False
        queue.remove(tid)
        self._rt_count -= 1
        return True

    def queued_tids(self) -> set[int]:
        tids = set(self._valid)
        for queue in self._rt.values():
            tids.update(queue)
        return tids

    # -- structural audit ---------------------------------------------------

    def audit(self, entities: dict[int, SchedEntity]) -> list[str]:
        """Violations of the queue's own representation invariants —
        the runtime mirror of the spec's queue-consistency invariants."""
        problems: list[str] = []
        weight = 0
        for tid, (vruntime, _seq, w) in self._valid.items():
            ent = entities.get(tid)
            if ent is None:
                problems.append(f"core {self.core}: fair tid {tid} queued "
                                f"but has no entity")
                continue
            if ent.policy is not SchedPolicy.FAIR:
                problems.append(f"core {self.core}: tid {tid} in the fair "
                                f"heap with policy {ent.policy.value}")
            if ent.core != self.core:
                problems.append(f"core {self.core}: fair tid {tid} has "
                                f"entity.core {ent.core}")
            if not ent.in_queue:
                problems.append(f"core {self.core}: fair tid {tid} queued "
                                f"but entity.in_queue is False")
            if ent.vruntime != vruntime:
                problems.append(f"core {self.core}: fair tid {tid} queue "
                                f"vruntime {vruntime} != entity "
                                f"{ent.vruntime}")
            weight += w
        if weight != self.fair_weight:
            problems.append(f"core {self.core}: fair_weight "
                            f"{self.fair_weight} != member sum {weight}")
        live = {(v, seq) for tid, (v, seq, _w) in self._valid.items()}
        heap_live = {(v, seq) for (v, seq, tid) in self._heap
                     if self._valid.get(tid, (None, None, None))[:2]
                     == (v, seq)}
        if live != heap_live:
            problems.append(f"core {self.core}: heap lost valid entries "
                            f"{sorted(live - heap_live)}")
        rt_total = 0
        for prio, queue in self._rt.items():
            rt_total += len(queue)
            for tid in queue:
                ent = entities.get(tid)
                if ent is None:
                    problems.append(f"core {self.core}: rt tid {tid} "
                                    f"queued but has no entity")
                    continue
                if ent.policy is SchedPolicy.FAIR:
                    problems.append(f"core {self.core}: fair tid {tid} in "
                                    f"the rt queue")
                if ent.rt_prio != prio:
                    problems.append(f"core {self.core}: rt tid {tid} at "
                                    f"prio {prio} but entity says "
                                    f"{ent.rt_prio}")
                if ent.core != self.core or not ent.in_queue:
                    problems.append(f"core {self.core}: rt tid {tid} "
                                    f"entity core/in_queue inconsistent")
        if rt_total != self._rt_count:
            problems.append(f"core {self.core}: rt_count {self._rt_count} "
                            f"!= member sum {rt_total}")
        if self._valid:
            values = [v for (v, _seq, _w) in self._valid.values()]
            if max(values) - min(values) > SPREAD_LIMIT_NS:
                problems.append(
                    f"core {self.core}: fair vruntime spread "
                    f"{max(values) - min(values)} exceeds "
                    f"{SPREAD_LIMIT_NS}")
        return problems
