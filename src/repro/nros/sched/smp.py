"""The cross-core runqueue protocol: per-core locks and step generators.

Real SMP schedulers take per-runqueue spinlocks; migration (load
balancing, work stealing) must hold *both* the source and destination
locks, in a global order, or two cores can observe a thread in two
queues at once.  This module is that protocol, written as step
generators in the same style as :mod:`repro.nr.core`: every shared
access sits between two ``yield``\\ s, so the :mod:`repro.analysis`
race detector can interleave cores adversarially and check every
queue/entity access for a happens-before edge or a common lock.

The in-kernel fast path (``Scheduler``) drives these generators to
completion inline — the cooperative kernel is single-threaded, so the
locks never spin there — but it is the *same code* the replay explores,
which is what makes "the race detector is clean on the real protocol"
a statement about the shipped scheduler rather than about a model.
"""

from __future__ import annotations

from repro.nros.sched.runqueue import CoreRunQueue
from repro.nros.sched.entity import SchedEntity, SchedPolicy

# Step labels (the race replay records these on every access).
LOCK = "LOCK"
UNLOCK = "UNLOCK"
SPIN = "SPIN"
SCAN = "SCAN"
DEQ = "DEQ"
ENQ = "ENQ"
TOUCH = "TOUCH"


class QueueLock:
    """A per-runqueue test-and-set lock (spin modelled as a yield)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.owner: object | None = None

    def try_lock(self, who: object) -> bool:
        if self.owner is not None:
            return False
        self.owner = who
        return True

    def unlock(self, who: object) -> None:
        if self.owner != who:
            raise AssertionError(
                f"{who!r} unlocking {self.name or 'lock'} held by "
                f"{self.owner!r}")
        self.owner = None


class Observer:
    """Access hooks the race replay overrides; no-ops in the kernel."""

    def queue_read(self, core: int) -> None:
        pass

    def queue_write(self, core: int) -> None:
        pass

    def entity_read(self, tid: int) -> None:
        pass

    def entity_write(self, tid: int) -> None:
        pass


def drive(gen):
    """Run a step generator to completion; return its return value.
    This is the kernel's inline fast path (no other core contends)."""
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


class SchedProtocol:
    """Lock-bracketed enqueue/dequeue/migrate over per-core runqueues.

    ``queues`` and ``entities`` are shared state; ``locks[c]`` guards
    ``queues[c]`` *and* the entities currently owned by core ``c`` (a
    tid's owning core only changes inside ``migrate_steps``, which
    holds both locks — that lock-ownership transfer is exactly what
    the seeded mutants break).
    """

    def __init__(self, queues: list[CoreRunQueue],
                 entities: dict[int, SchedEntity],
                 locks: list[QueueLock] | None = None,
                 observer: Observer | None = None) -> None:
        self.queues = queues
        self.entities = entities
        self.locks = locks or [QueueLock(f"rq{q.core}.lock")
                               for q in queues]
        self.observer = observer or Observer()

    # -- lock brackets ------------------------------------------------------

    def _acquire(self, who: object, core: int):
        while not self.locks[core].try_lock(who):
            yield SPIN
        yield LOCK

    def _release(self, who: object, core: int):
        self.locks[core].unlock(who)
        yield UNLOCK

    # -- guarded accessors (every shared touch reports to the observer) ----

    def _enqueue_locked(self, core: int, tid: int,
                        front: bool = False) -> None:
        ent = self.entities[tid]
        self.observer.entity_write(tid)
        ent.core = core
        ent.in_queue = True
        self.observer.queue_write(core)
        if ent.policy is SchedPolicy.FAIR:
            self.queues[core].push_fair(tid, ent.vruntime, ent.weight)
        else:
            self.queues[core].push_rt(tid, ent.rt_prio, front=front)

    def _pick_locked(self, core: int, prefer_rt: bool) -> int | None:
        self.observer.queue_read(core)
        queue = self.queues[core]
        tid = queue.pop_rt() if prefer_rt else queue.pop_fair()
        if tid is None:
            tid = queue.pop_fair() if prefer_rt else queue.pop_rt()
        if tid is not None:
            self.observer.queue_write(core)
            self.observer.entity_write(tid)
            self.entities[tid].in_queue = False
        return tid

    def _steal_scan_locked(self, src: int) -> int | None:
        self.observer.queue_read(src)
        return self.queues[src].steal_candidate()

    def _unqueue_locked(self, src: int, tid: int) -> bool:
        self.observer.queue_write(src)
        return self.queues[src].remove_fair(tid)

    def _renorm_locked(self, tid: int, src: int, dst: int) -> None:
        """Carry relative fairness across queues: keep the entity the
        same distance ahead of the destination's watermark as it was
        ahead of the source's."""
        self.observer.entity_read(tid)
        ent = self.entities[tid]
        lead = max(0, ent.vruntime - self.queues[src].min_vruntime)
        self.observer.entity_write(tid)
        ent.vruntime = self.queues[dst].min_vruntime + lead

    # -- the protocol -------------------------------------------------------

    def enqueue_steps(self, who: object, core: int, tid: int,
                      front: bool = False):
        """Make `tid` runnable on `core` (its lock held throughout)."""
        yield from self._acquire(who, core)
        self._enqueue_locked(core, tid, front=front)
        yield ENQ
        yield from self._release(who, core)

    def dequeue_steps(self, who: object, core: int,
                      prefer_rt: bool = True):
        """Pick the next runnable tid off `core`; returns the tid."""
        yield from self._acquire(who, core)
        tid = self._pick_locked(core, prefer_rt)
        yield DEQ
        yield from self._release(who, core)
        return tid

    def migrate_steps(self, who: object, src: int, dst: int):
        """Move the source's steal candidate to `dst`: both locks, in
        core order, held across scan + dequeue + renorm + enqueue."""
        if src == dst:
            return None
        first, second = sorted((src, dst))
        yield from self._acquire(who, first)
        yield from self._acquire(who, second)
        tid = self._steal_scan_locked(src)
        yield SCAN
        if tid is not None:
            self._unqueue_locked(src, tid)
            yield DEQ
            self._renorm_locked(tid, src, dst)
            yield TOUCH
            self._enqueue_locked(dst, tid)
            yield ENQ
        yield from self._release(who, second)
        yield from self._release(who, first)
        return tid
