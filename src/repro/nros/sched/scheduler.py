"""The kernel scheduler: per-core multi-level run queues.

Cooperative in the Python sense (threads run until their next syscall), but
structurally the real thing: per-core queues with three priority levels,
aging so low-priority threads cannot starve, core affinity, blocking and
waking, and an idle detector that tells the kernel when only blocked
threads remain (so the main loop can advance the timer instead of
spinning).
"""

from __future__ import annotations

from collections import deque

from repro.nros.proc.process import BlockReason, Thread, ThreadState

NUM_PRIORITIES = 3  # 0 = high, 2 = low
AGING_THRESHOLD = 8  # skips before a waiting thread is promoted one level


class Scheduler:
    """Priority round-robin over per-core queues; threads keep affinity."""

    def __init__(self, num_cores: int = 1) -> None:
        if num_cores <= 0:
            raise ValueError("need at least one core")
        self.num_cores = num_cores
        self._queues: list[list[deque[Thread]]] = [
            [deque() for _ in range(NUM_PRIORITIES)]
            for _ in range(num_cores)
        ]
        self._affinity: dict[int, int] = {}
        self._priority: dict[int, int] = {}
        self._skips: dict[int, int] = {}
        self._blocked: set[int] = set()
        self._next_core = 0
        self.context_switches = 0
        self.promotions = 0

    # -- priorities ------------------------------------------------------------

    def set_priority(self, thread: Thread, priority: int) -> None:
        if not 0 <= priority < NUM_PRIORITIES:
            raise ValueError(f"priority {priority} out of range")
        self._priority[thread.tid] = priority

    def priority_of(self, thread: Thread) -> int:
        return self._priority.get(thread.tid, 1)  # default: middle

    def assign_core(self, thread: Thread) -> int:
        """Pick (and remember) the core for a thread: least-loaded."""
        if thread.tid in self._affinity:
            return self._affinity[thread.tid]
        core = min(
            range(self.num_cores),
            key=lambda c: sum(len(q) for q in self._queues[c]),
        )
        self._affinity[thread.tid] = core
        return core

    def core_of(self, thread: Thread) -> int:
        return self._affinity.get(thread.tid, 0)

    def ready(self, thread: Thread) -> None:
        if thread.state is ThreadState.EXITED:
            return
        core = self.assign_core(thread)
        self._blocked.discard(thread.tid)
        thread.state = ThreadState.READY
        self._queues[core][self.priority_of(thread)].append(thread)

    def block(self, thread: Thread, reason: BlockReason) -> None:
        thread.block(reason)
        self._blocked.add(thread.tid)

    def wake(self, thread: Thread, result=("value", None)) -> None:
        if thread.state is not ThreadState.BLOCKED:
            return
        thread.wake(result)
        self.ready(thread)

    def next_thread(self) -> Thread | None:
        """The next runnable thread: highest priority level on the next
        core (the starting core rotates so a busy-looping thread on one
        core cannot starve the others).  Threads passed over accumulate
        skips and are promoted one level when they age out."""
        for offset in range(self.num_cores):
            core = (self._next_core + offset) % self.num_cores
            for level, queue in enumerate(self._queues[core]):
                while queue:
                    thread = queue.popleft()
                    if thread.state is ThreadState.READY:
                        self._next_core = (core + 1) % self.num_cores
                        self.context_switches += 1
                        self._skips.pop(thread.tid, None)
                        self._age(core, level)
                        return thread
        return None

    def _age(self, core: int, chosen_level: int) -> None:
        """Skipped lower-priority threads on this core age toward
        promotion (starvation freedom)."""
        for level in range(chosen_level + 1, NUM_PRIORITIES):
            queue = self._queues[core][level]
            for thread in list(queue):
                skips = self._skips.get(thread.tid, 0) + 1
                if skips >= AGING_THRESHOLD:
                    queue.remove(thread)
                    self._queues[core][level - 1].append(thread)
                    self._priority[thread.tid] = level - 1
                    self._skips.pop(thread.tid, None)
                    self.promotions += 1
                else:
                    self._skips[thread.tid] = skips

    def has_runnable(self) -> bool:
        return any(
            t.state is ThreadState.READY
            for levels in self._queues
            for queue in levels
            for t in queue
        )

    def blocked_count(self) -> int:
        return len(self._blocked)

    def forget(self, thread: Thread) -> None:
        self._affinity.pop(thread.tid, None)
        self._priority.pop(thread.tid, None)
        self._skips.pop(thread.tid, None)
        self._blocked.discard(thread.tid)
