"""The kernel scheduler: CFS-style fair class + RT classes over per-CPU
runqueues.

Cooperative in the Python sense (threads run until their next syscall),
but structurally the real thing:

* a **fair class** — per-thread virtual runtime charged inversely to the
  thread's nice-level weight, min-vruntime picking via a per-core heap,
  and a sleeper bonus on wake so interactive threads get latency without
  banking unbounded credit;
* **RT classes** — FIFO and RR priorities 1..99 that preempt any fair
  thread, bounded by a bandwidth throttle (after
  :data:`~repro.nros.sched.entity.RT_THROTTLE_STREAK` consecutive RT
  picks on a core the next pick is forced fair), which is what makes the
  fair class starvation-free even under a busy-looping RT thread;
* **per-CPU runqueues** with sticky core affinity, periodic load
  balancing (every :data:`BALANCE_PERIOD` picks the busiest core's
  most-run fair thread migrates to the idlest core) and work stealing
  when a core's own queue is empty — both through the lock-bracketed
  :class:`~repro.nros.sched.smp.SchedProtocol` the race detector
  replays.

The external contract is unchanged from the seed scheduler
(``ready / block / wake / next_thread / forget / has_runnable``), so
``nros/kernel.py`` needed only the two new sched syscalls.  The legacy
3-level ``set_priority`` API maps onto nice levels (0 -> -10, 1 -> 0,
2 -> +10).

The specification lives in :mod:`repro.verif.schedspec`;
:meth:`Scheduler.audit` checks the implementation against the same
invariants at runtime, and :mod:`repro.verif.schedproof` discharges
conformance VCs through the prover.
"""

from __future__ import annotations

from repro import obs
from repro.nros.proc.process import BlockReason, Thread, ThreadState
from repro.nros.sched.entity import (
    NICE_MAX,
    NICE_MIN,
    RR_SLICE_QUANTA,
    RT_PRIO_MAX,
    RT_PRIO_MIN,
    RT_THROTTLE_STREAK,
    SLEEPER_BONUS_NS,
    SchedEntity,
    SchedPolicy,
    WEIGHT_NICE0,
    fair_charge,
)
from repro.nros.sched.runqueue import CoreRunQueue
from repro.nros.sched.smp import QueueLock, SchedProtocol, drive

#: Legacy 3-level priorities (0 = high, 2 = low) map onto nice levels.
NUM_PRIORITIES = 3
_LEGACY_TO_NICE = {0: -10, 1: 0, 2: 10}

#: A load-balance pass runs every this many picks.
BALANCE_PERIOD = 32

#: Minimum fair-weight imbalance (busiest minus idlest) worth a
#: migration — half a nice-0 thread, so two balanced cores don't
#: ping-pong a thread between them.
BALANCE_THRESHOLD = WEIGHT_NICE0 // 2


class Scheduler:
    """Multi-class scheduler over per-core runqueues (see module doc)."""

    def __init__(self, num_cores: int = 1, *,
                 record_trace: bool = False) -> None:
        if num_cores <= 0:
            raise ValueError("need at least one core")
        self.num_cores = num_cores
        self._queues = [CoreRunQueue(core) for core in range(num_cores)]
        self._locks = [QueueLock(f"rq{core}.lock")
                       for core in range(num_cores)]
        self._entities: dict[int, SchedEntity] = {}
        self._threads: dict[int, Thread] = {}
        self._protocol = SchedProtocol(self._queues, self._entities,
                                       self._locks)
        self._blocked: set[int] = set()
        self._running: dict[int, int] = {}   # tid -> core
        self._rt_streak = [0] * num_cores
        self._ready_total = 0
        self._next_core = 0
        self._pick_count = 0
        self.context_switches = 0
        self.migrations = 0
        self.steals = 0
        self.preemptions = 0      # RT picked while fair threads waited
        self.rt_throttles = 0     # fair forced in despite queued RT
        self.record_trace = record_trace
        self.switch_trace: list[tuple[int, str]] = []
        self._c_switches = obs.counter("sched.switches")
        self._c_migrations = obs.counter("sched.migrations")
        self._c_steals = obs.counter("sched.steals")
        self._c_throttles = obs.counter("sched.rt_throttles")

    # -- entities and policies ----------------------------------------------

    def _entity(self, thread: Thread) -> SchedEntity:
        ent = self._entities.get(thread.tid)
        if ent is None:
            ent = SchedEntity(tid=thread.tid, label=thread.name)
            self._entities[thread.tid] = ent
            self._threads[thread.tid] = thread
        return ent

    def set_priority(self, thread: Thread, priority: int) -> None:
        """Legacy 3-level API (kept for the ``setpriority`` syscall)."""
        if not 0 <= priority < NUM_PRIORITIES:
            raise ValueError(f"priority {priority} out of range")
        self.set_nice(thread, _LEGACY_TO_NICE[priority])

    def priority_of(self, thread: Thread) -> int:
        ent = self._entities.get(thread.tid)
        if ent is None or ent.policy is not SchedPolicy.FAIR:
            return 0 if ent is not None else 1
        if ent.nice < 0:
            return 0
        return 1 if ent.nice == 0 else 2

    def set_nice(self, thread: Thread, nice: int) -> None:
        if not NICE_MIN <= nice <= NICE_MAX:
            raise ValueError(f"nice {nice} out of range")
        ent = self._entity(thread)
        ent.nice = nice
        if ent.in_queue and ent.policy is SchedPolicy.FAIR:
            # re-queue so the weight sum tracks the new weight
            queue = self._queues[ent.core]
            queue.remove_fair(ent.tid)
            queue.push_fair(ent.tid, ent.vruntime, ent.weight)

    def nice_of(self, thread: Thread) -> int:
        ent = self._entities.get(thread.tid)
        return 0 if ent is None else ent.nice

    def set_policy(self, thread: Thread, policy: SchedPolicy | str,
                   nice: int = 0, rt_prio: int = 0) -> None:
        """Switch a thread's scheduling class (``sched_setscheduler``)."""
        if isinstance(policy, str):
            try:
                policy = SchedPolicy(policy)
            except ValueError:
                raise ValueError(f"unknown policy {policy!r}") from None
        if policy is SchedPolicy.FAIR:
            if rt_prio != 0:
                raise ValueError("fair threads take no rt priority")
            if not NICE_MIN <= nice <= NICE_MAX:
                raise ValueError(f"nice {nice} out of range")
        else:
            if not RT_PRIO_MIN <= rt_prio <= RT_PRIO_MAX:
                raise ValueError(f"rt priority {rt_prio} out of range")
        ent = self._entity(thread)
        requeue = ent.in_queue
        if requeue:
            self._unqueue(ent)
        ent.policy = policy
        ent.nice = nice if policy is SchedPolicy.FAIR else 0
        ent.rt_prio = rt_prio if policy is not SchedPolicy.FAIR else 0
        if policy is SchedPolicy.FAIR:
            # entering the fair class: start at the queue watermark so
            # the thread neither starves the queue nor is starved by it
            core = ent.core if ent.core is not None else 0
            ent.vruntime = max(ent.vruntime,
                               self._queues[core].min_vruntime)
        if requeue:
            self._enqueue(ent)

    def policy_of(self, thread: Thread) -> tuple[str, int]:
        ent = self._entities.get(thread.tid)
        if ent is None:
            return (SchedPolicy.FAIR.value, 0)
        if ent.policy is SchedPolicy.FAIR:
            return (ent.policy.value, ent.nice)
        return (ent.policy.value, ent.rt_prio)

    # -- core placement -----------------------------------------------------

    def assign_core(self, thread: Thread) -> int:
        """Pick (and remember) the core for a thread: least fair+RT
        load, ties to the lowest core index (deterministic)."""
        ent = self._entity(thread)
        if ent.core is not None:
            return ent.core
        core = min(
            range(self.num_cores),
            key=lambda c: (self._queues[c].fair_weight
                           + self._queues[c].rt_count * WEIGHT_NICE0, c),
        )
        ent.core = core
        return core

    def core_of(self, thread: Thread) -> int:
        ent = self._entities.get(thread.tid)
        return 0 if ent is None or ent.core is None else ent.core

    # -- the seed contract --------------------------------------------------

    def ready(self, thread: Thread) -> None:
        if thread.state is ThreadState.EXITED:
            return
        ent = self._entity(thread)
        tid = thread.tid
        if tid in self._running:
            self._charge(ent)
        was_blocked = tid in self._blocked
        self._blocked.discard(tid)
        thread.state = ThreadState.READY
        if ent.in_queue:
            return
        core = self.assign_core(thread)
        fresh = ent.fresh
        ent.fresh = False
        if ent.policy is SchedPolicy.FAIR and (was_blocked or fresh):
            floor = self._queues[core].min_vruntime
            bonus = 0 if fresh else SLEEPER_BONUS_NS
            ent.vruntime = max(ent.vruntime, floor - bonus)
        # a FIFO thread that merely ran keeps the head of its priority
        # queue (POSIX: runs until it blocks); an RR thread keeps it only
        # while its slice lasts
        front = False
        if ent.policy is SchedPolicy.FIFO:
            front = not fresh and not was_blocked
        elif ent.policy is SchedPolicy.RR:
            front = not fresh and not was_blocked and not ent.rr_expired
        ent.rr_expired = False
        self._enqueue(ent, front=front)

    def block(self, thread: Thread, reason: BlockReason) -> None:
        ent = self._entity(thread)
        if thread.tid in self._running:
            self._charge(ent)
        if ent.in_queue:
            self._unqueue(ent)
        thread.block(reason)
        self._blocked.add(thread.tid)

    def wake(self, thread: Thread, result=("value", None)) -> None:
        if thread.state is not ThreadState.BLOCKED:
            return
        thread.wake(result)
        self.ready(thread)

    def next_thread(self, core: int | None = None) -> Thread | None:
        """The next runnable thread.

        Called with no argument (the kernel's mode) the starting core
        rotates, as in the seed.  Called with ``core=`` (the per-core
        simulation mode) an empty core first tries to steal work from
        the most loaded one.
        """
        self._pick_count += 1
        if self._pick_count % BALANCE_PERIOD == 0:
            self._load_balance()
        if core is None:
            for offset in range(self.num_cores):
                candidate = (self._next_core + offset) % self.num_cores
                thread = self._pick_on(candidate)
                if thread is not None:
                    self._next_core = (candidate + 1) % self.num_cores
                    return thread
            return None
        thread = self._pick_on(core)
        if thread is None and self._try_steal(core):
            thread = self._pick_on(core)
        return thread

    def has_runnable(self) -> bool:
        return self._ready_total > 0

    def runnable_count(self) -> int:
        return self._ready_total

    def blocked_count(self) -> int:
        return len(self._blocked)

    def forget(self, thread: Thread) -> None:
        tid = thread.tid
        ent = self._entities.pop(tid, None)
        self._threads.pop(tid, None)
        self._blocked.discard(tid)
        self._running.pop(tid, None)
        if ent is not None and ent.in_queue:
            # satellite fix: exited threads no longer linger in queues
            queue = self._queues[ent.core]
            if ent.policy is SchedPolicy.FAIR:
                queue.remove_fair(tid)
            else:
                queue.remove_rt(tid, ent.rt_prio)
            self._ready_total -= 1

    # -- internals ----------------------------------------------------------

    def _charge(self, ent: SchedEntity) -> None:
        """Account one quantum to a descheduling thread."""
        self._running.pop(ent.tid, None)
        ent.quanta += 1
        if ent.policy is SchedPolicy.FAIR:
            ent.vruntime += fair_charge(ent.weight)
        elif ent.policy is SchedPolicy.RR:
            ent.rr_left -= 1
            if ent.rr_left <= 0:
                ent.rr_left = RR_SLICE_QUANTA
                ent.rr_expired = True

    def _enqueue(self, ent: SchedEntity, front: bool = False) -> None:
        core = ent.core if ent.core is not None else 0
        ent.core = core
        drive(self._protocol.enqueue_steps("kernel", core, ent.tid,
                                           front=front))
        self._ready_total += 1

    def _unqueue(self, ent: SchedEntity) -> None:
        queue = self._queues[ent.core]
        if ent.policy is SchedPolicy.FAIR:
            queue.remove_fair(ent.tid)
        else:
            queue.remove_rt(ent.tid, ent.rt_prio)
        ent.in_queue = False
        self._ready_total -= 1

    def _pick_on(self, core: int) -> Thread | None:
        queue = self._queues[core]
        if queue.ready_count == 0:
            return None
        have_rt = queue.top_rt_prio() is not None
        have_fair = queue.fair_count > 0
        prefer_rt = have_rt and (
            self._rt_streak[core] < RT_THROTTLE_STREAK or not have_fair)
        if have_rt and have_fair and not prefer_rt:
            self.rt_throttles += 1
            self._c_throttles.inc()
        tid = drive(self._protocol.dequeue_steps("kernel", core,
                                                 prefer_rt=prefer_rt))
        if tid is None:
            return None
        self._ready_total -= 1
        ent = self._entities[tid]
        if ent.is_rt:
            self._rt_streak[core] = min(self._rt_streak[core] + 1,
                                        RT_THROTTLE_STREAK)
            if have_fair:
                self.preemptions += 1
        else:
            self._rt_streak[core] = 0
        self._running[tid] = core
        self.context_switches += 1
        self._c_switches.inc()
        if self.record_trace:
            self.switch_trace.append((core, ent.label))
        return self._threads[tid]

    def _load_balance(self) -> None:
        if self.num_cores < 2:
            return
        loads = [(self._queues[c].fair_weight, c)
                 for c in range(self.num_cores)]
        busiest = max(loads)
        idlest = min(loads)
        if busiest[1] == idlest[1] or \
                self._queues[busiest[1]].fair_count < 2 or \
                busiest[0] - idlest[0] < BALANCE_THRESHOLD:
            return
        self._migrate(busiest[1], idlest[1], stolen=False)

    def _try_steal(self, core: int) -> bool:
        donors = [(self._queues[c].fair_count, self._queues[c].fair_weight,
                   c) for c in range(self.num_cores) if c != core]
        if not donors:
            return False
        best = max(donors)
        if best[0] < 2:   # never steal a core's only fair thread
            return False
        return self._migrate(best[2], core, stolen=True)

    def _migrate(self, src: int, dst: int, stolen: bool) -> bool:
        tid = drive(self._protocol.migrate_steps(
            "steal" if stolen else "balance", src, dst))
        if tid is None:
            return False
        ent = self._entities[tid]
        if stolen:
            self.steals += 1
            self._c_steals.inc()
        else:
            self.migrations += 1
            self._c_migrations.inc()
        bus = obs.bus()
        if bus.active:
            bus.emit("sched.migrate", tid=tid, src=src, dst=dst,
                     stolen=stolen, label=ent.label)
        return True

    # -- runtime audit (the spec's invariants, checked on the impl) ---------

    def audit(self) -> list[str]:
        """Violations of the scheduler's state invariants; empty on a
        correct implementation.  Mirrors
        :mod:`repro.verif.schedspec`'s inductive invariants."""
        problems: list[str] = []
        queued = set()
        for queue in self._queues:
            problems.extend(queue.audit(self._entities))
            members = queue.queued_tids()
            overlap = queued & members
            if overlap:
                problems.append(f"tids {sorted(overlap)} queued on "
                                f"multiple cores")
            queued |= members
        for tid, ent in self._entities.items():
            places = [ent.in_queue, tid in self._running,
                      tid in self._blocked]
            if sum(places) != 1:
                problems.append(
                    f"tid {tid} in {sum(places)} places "
                    f"(queued={ent.in_queue}, "
                    f"running={tid in self._running}, "
                    f"blocked={tid in self._blocked})")
            if ent.in_queue != (tid in queued):
                problems.append(f"tid {tid} in_queue={ent.in_queue} but "
                                f"queue membership={tid in queued}")
        if self._ready_total != sum(q.ready_count for q in self._queues):
            problems.append(
                f"ready_total {self._ready_total} != queue sum "
                f"{sum(q.ready_count for q in self._queues)}")
        for core in range(self.num_cores):
            if self._queues[core].top_rt_prio() is None:
                continue
            fair_running = any(
                c == core and not self._entities[tid].is_rt
                for tid, c in self._running.items()
                if tid in self._entities)
            if fair_running and self._rt_streak[core] != 0:
                problems.append(
                    f"core {core}: fair thread running past a queued RT "
                    f"thread with rt_streak {self._rt_streak[core]}")
        return problems

    def stats(self) -> dict[str, int]:
        return {
            "context_switches": self.context_switches,
            "migrations": self.migrations,
            "steals": self.steals,
            "preemptions": self.preemptions,
            "rt_throttles": self.rt_throttles,
        }
