"""Deterministic simulated-time scheduler workloads.

Wall-clock cannot show core scaling in single-threaded Python, so the
harness runs the scheduler under *simulated* time, exactly like the
cluster bench: one tick lets every core pick one thread and charges it
one :data:`~repro.nros.sched.entity.QUANTUM_NS` of virtual time.  The
mixed workload is the classic scheduler stress:

* **batch** threads — always runnable, spread over nice levels, the
  background load fairness is measured against;
* **interactive** threads — short bursts then a seeded sleep; their
  wake-to-first-run latency is the p50/p99 the bench reports;
* **RT** threads — a periodic FIFO task that must preempt everything.

Everything derives from one ``random.Random(seed)``, so two runs with
the same seed produce the identical context-switch trace and identical
``BENCH_sched.json`` numerics — the determinism gate the cluster and
faults campaigns already have.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field

from repro import obs
from repro.nros.proc.process import BlockReason, Thread
from repro.nros.sched.entity import NICE_TO_WEIGHT, QUANTUM_NS, SchedPolicy
from repro.nros.sched.scheduler import Scheduler

#: Core counts the scaling bench sweeps.
SCALE_CORE_COUNTS = (1, 2, 4, 8)


@dataclass
class WorkloadProfile:
    """Knobs of the mixed interactive+batch+RT workload."""

    ticks: int = 6_000
    batch: int = 12
    interactive: int = 6
    rt: int = 2
    batch_nices: tuple[int, ...] = (-5, 0, 0, 5)
    burst_quanta: tuple[int, int] = (1, 3)     # interactive run length
    sleep_ticks: tuple[int, int] = (3, 12)     # interactive sleep length
    rt_period: int = 7
    rt_prio: int = 50

    @property
    def total_threads(self) -> int:
        return self.batch + self.interactive + self.rt


def default_profile(ticks: int | None = None) -> WorkloadProfile:
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    profile = WorkloadProfile(ticks=1_500 if quick else 6_000)
    if ticks is not None:
        profile.ticks = ticks
    return profile


class _SimProcess:
    def __init__(self, name: str) -> None:
        self.name = name
        self.pid = 0


def _make_thread(name: str) -> Thread:
    def gen():
        yield

    return Thread(_SimProcess(name), gen(), name=name)


@dataclass
class _Task:
    """One workload thread's behavior state."""

    thread: Thread
    kind: str                     # "batch" | "interactive" | "rt"
    burst_left: int = 0
    wake_at: int | None = None
    ready_since: int | None = None
    latencies: list[int] = field(default_factory=list)
    quanta: int = 0


def run_workload(num_cores: int, profile: WorkloadProfile, seed: int = 1,
                 record_trace: bool = False) -> dict:
    """Run the mixed workload; returns the metrics payload entry (and
    the scheduler's switch trace under ``"switch_trace"`` when
    ``record_trace``)."""
    rng = random.Random(seed)
    sched = Scheduler(num_cores, record_trace=record_trace)
    tasks: dict[int, _Task] = {}

    def add(task: _Task) -> None:
        tasks[task.thread.tid] = task

    for i in range(profile.batch):
        task = _Task(_make_thread(f"batch{i}"), "batch")
        sched.set_nice(task.thread,
                       profile.batch_nices[i % len(profile.batch_nices)])
        sched.ready(task.thread)
        add(task)
    for i in range(profile.interactive):
        task = _Task(_make_thread(f"inter{i}"), "interactive")
        task.burst_left = rng.randint(*profile.burst_quanta)
        sched.ready(task.thread)
        task.ready_since = 0
        add(task)
    for i in range(profile.rt):
        task = _Task(_make_thread(f"rt{i}"), "rt")
        sched.set_policy(task.thread, SchedPolicy.FIFO,
                         rt_prio=profile.rt_prio)
        sched.ready(task.thread)
        task.ready_since = 0
        add(task)

    executed = 0
    for tick in range(profile.ticks):
        # deliver due wakeups (sleep timers, RT periods)
        for task in tasks.values():
            if task.wake_at is not None and task.wake_at <= tick:
                task.wake_at = None
                sched.wake(task.thread)
                task.ready_since = tick
        for core in range(num_cores):
            thread = sched.next_thread(core=core)
            if thread is None:
                continue
            task = tasks[thread.tid]
            executed += 1
            task.quanta += 1
            if task.ready_since is not None:
                task.latencies.append((tick - task.ready_since)
                                      * QUANTUM_NS)
                task.ready_since = None
            if task.kind == "batch":
                sched.ready(thread)
            elif task.kind == "interactive":
                task.burst_left -= 1
                if task.burst_left <= 0:
                    task.burst_left = rng.randint(*profile.burst_quanta)
                    task.wake_at = tick + 1 + \
                        rng.randint(*profile.sleep_ticks)
                    sched.block(thread, BlockReason("sleep", task.wake_at))
                else:
                    sched.ready(thread)
            else:  # rt: run one quantum per period, then sleep to it
                task.wake_at = tick + profile.rt_period
                sched.block(thread, BlockReason("sleep", task.wake_at))

    problems = sched.audit()
    if problems:
        raise AssertionError(f"scheduler audit failed: {problems}")

    def percentiles(kind: str) -> dict:
        hist = obs.Histogram(name=f"sched.latency.{kind}")
        for task in tasks.values():
            if task.kind == kind:
                for value in task.latencies:
                    hist.record(value)
        return {"count": hist.count,
                "p50_ns": hist.percentile(50) if hist.count else 0,
                "p99_ns": hist.percentile(99) if hist.count else 0}

    sim_ns = profile.ticks * QUANTUM_NS
    metrics = {
        "cores": num_cores,
        "ticks": profile.ticks,
        "quanta": executed,
        "sim_ns": sim_ns,
        "throughput_qps": executed / (sim_ns / 1e9),
        "interactive": percentiles("interactive"),
        "rt": percentiles("rt"),
        **sched.stats(),
    }
    if record_trace:
        metrics["switch_trace"] = list(sched.switch_trace)
    return metrics


def run_fairness(seed: int = 1, ticks: int = 3_000) -> dict:
    """Three always-runnable batch threads at nice -5/0/+5 on one core:
    achieved CPU shares vs the nice-weight ideal."""
    nices = (-5, 0, 5)
    sched = Scheduler(1)
    counts = {nice: 0 for nice in nices}
    by_tid = {}
    for nice in nices:
        thread = _make_thread(f"fair{nice}")
        sched.set_nice(thread, nice)
        sched.ready(thread)
        by_tid[thread.tid] = nice
    for _ in range(ticks):
        thread = sched.next_thread(core=0)
        counts[by_tid[thread.tid]] += 1
        sched.ready(thread)
    total_weight = sum(NICE_TO_WEIGHT[nice] for nice in nices)
    shares = {}
    max_rel_error = 0.0
    for nice in nices:
        ideal = NICE_TO_WEIGHT[nice] / total_weight
        achieved = counts[nice] / ticks
        shares[str(nice)] = {"ideal": ideal, "achieved": achieved,
                             "quanta": counts[nice]}
        max_rel_error = max(max_rel_error, abs(achieved - ideal) / ideal)
    return {"threads": len(nices), "ticks": ticks, "seed": seed,
            "shares": shares, "max_rel_error": max_rel_error}


def scaling_bench(seed: int = 1) -> dict:
    """The ``BENCH_sched.json`` payload: throughput and latency at
    1/2/4/8 cores under the mixed workload, plus the fairness error."""
    profile = default_profile()
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    series = {}
    for cores in SCALE_CORE_COUNTS:
        with obs.span("sched.bench.run", cores=cores):
            series[str(cores)] = run_workload(cores, profile, seed=seed)
    return {
        "quick": quick,
        "seed": seed,
        "profile": {
            "ticks": profile.ticks,
            "batch": profile.batch,
            "interactive": profile.interactive,
            "rt": profile.rt,
            "rt_period": profile.rt_period,
            "rt_prio": profile.rt_prio,
        },
        "series": series,
        "fairness": run_fairness(seed=seed,
                                 ticks=600 if quick else 3_000),
    }
