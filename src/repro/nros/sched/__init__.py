"""`repro.nros.sched` — the multi-class scheduler.

* :mod:`repro.nros.sched.entity` — per-thread scheduling state, nice
  weights, scheduling classes;
* :mod:`repro.nros.sched.runqueue` — per-core fair heap + RT deques;
* :mod:`repro.nros.sched.smp` — the lock-bracketed cross-core protocol
  (the race detector's replay target);
* :mod:`repro.nros.sched.scheduler` — the kernel-facing facade (the
  seed's ``ready/block/wake/next_thread/forget/has_runnable`` contract);
* :mod:`repro.nros.sched.workload` — the deterministic simulated-time
  workload harness behind ``python -m repro sched`` and
  ``benchmarks/bench_sched.py``.
"""

from repro.nros.sched.entity import (
    NICE_TO_WEIGHT,
    QUANTUM_NS,
    RT_THROTTLE_STREAK,
    SchedEntity,
    SchedPolicy,
)
from repro.nros.sched.scheduler import NUM_PRIORITIES, Scheduler

__all__ = [
    "NICE_TO_WEIGHT",
    "NUM_PRIORITIES",
    "QUANTUM_NS",
    "RT_THROTTLE_STREAK",
    "SchedEntity",
    "SchedPolicy",
    "Scheduler",
]
