"""Scheduling entities: per-thread scheduling state and class parameters.

One :class:`SchedEntity` per kernel thread carries everything the
scheduler knows about it — its scheduling class (CFS-style fair, or the
RT FIFO/RR classes), its nice level or RT priority, its virtual runtime,
and its current core.  The entity outlives individual enqueues: it is
created the first time a thread becomes ready and destroyed by
``Scheduler.forget``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SchedPolicy(enum.Enum):
    """The three scheduling classes (POSIX names, CFS semantics)."""

    FAIR = "fair"   # CFS: weighted fair sharing by vruntime
    FIFO = "fifo"   # RT: run until block, strict priority
    RR = "rr"       # RT: round-robin time slices within a priority


#: Nice levels span [-20, 19]; weight halves roughly every 3 nice steps
#: (the classic 1.25**-nice table), so a nice -5 thread receives about
#: 3x the CPU share of a nice +0 thread under contention.
NICE_MIN = -20
NICE_MAX = 19
WEIGHT_NICE0 = 1024
NICE_TO_WEIGHT: dict[int, int] = {
    nice: max(15, round(WEIGHT_NICE0 * 1.25 ** (-nice)))
    for nice in range(NICE_MIN, NICE_MAX + 1)
}

#: RT priorities: 1 (lowest) .. 99 (highest); any RT beats any fair.
RT_PRIO_MIN = 1
RT_PRIO_MAX = 99

#: One scheduling quantum of simulated time.  The cooperative kernel
#: runs a thread for exactly one quantum per ``next_thread`` pick
#: (threads run until their next syscall), so vruntime accounting
#: charges a whole quantum scaled by the entity's weight.
QUANTUM_NS = 1_000_000

#: A woken sleeper's vruntime is clamped to at most this far below the
#: queue minimum — it gets a latency bonus for having slept, but cannot
#: bank unbounded credit and starve the queue afterwards.
SLEEPER_BONUS_NS = QUANTUM_NS // 2

#: SCHED_RR time slice, in quanta, before the thread rotates to the
#: tail of its priority queue.
RR_SLICE_QUANTA = 4

#: Consecutive RT picks a core tolerates while fair threads wait; the
#: next pick is then forced fair (RT bandwidth throttling — the
#: starvation-freedom knob for the fair class).
RT_THROTTLE_STREAK = 8

#: Bound on the vruntime spread (max - min) of the runnable fair
#: threads on one core.  With the minimum weight 15, one quantum
#: charges at most QUANTUM_NS * 1024 / 15 ≈ 68.3 * QUANTUM_NS; the
#: spread stays below one maximal charge plus the sleeper bonus because
#: min-vruntime picking always runs the thread furthest behind.
SPREAD_LIMIT_NS = QUANTUM_NS * WEIGHT_NICE0 // 15 + QUANTUM_NS + \
    SLEEPER_BONUS_NS


def weight_of(nice: int) -> int:
    if nice not in NICE_TO_WEIGHT:
        raise ValueError(f"nice {nice} out of range "
                         f"[{NICE_MIN}, {NICE_MAX}]")
    return NICE_TO_WEIGHT[nice]


def fair_charge(weight: int) -> int:
    """Virtual time one quantum costs an entity of the given weight."""
    return QUANTUM_NS * WEIGHT_NICE0 // weight


@dataclass
class SchedEntity:
    """Per-thread scheduling state (see module docstring)."""

    tid: int
    label: str                  # thread name, for run-stable traces
    policy: SchedPolicy = SchedPolicy.FAIR
    nice: int = 0
    rt_prio: int = 0            # meaningful for FIFO/RR only
    vruntime: int = 0
    core: int | None = None     # sticky affinity; None until first ready
    in_queue: bool = False
    quanta: int = 0             # quanta this entity has consumed
    rr_left: int = RR_SLICE_QUANTA
    rr_expired: bool = False    # slice ran out: requeue at the tail
    fresh: bool = True          # never enqueued yet

    @property
    def weight(self) -> int:
        return NICE_TO_WEIGHT[self.nice]

    @property
    def is_rt(self) -> bool:
        return self.policy is not SchedPolicy.FAIR
