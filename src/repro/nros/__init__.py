"""Package."""
