"""The *unverified* page-table implementation — the comparison baseline.

Figures 1b/1c compare "NrOS Unverified" against "NrOS Verified".  This
module plays the unverified role: a straightforward kernel-style
implementation with the same API and bit layout as
:mod:`repro.core.pt.impl`, but structured the way a kernel developer would
write it when not optimising for provability — inlined bit manipulation, no
rollback bookkeeping, no empty-table garbage collection.

It must still be *correct* (the paper's point is that the verified code
matches the unverified code's performance, not that the unverified code is
broken); the differential tests in ``tests/test_pt_unverified.py`` check
behavioural equivalence up to the documented GC difference.
"""

from __future__ import annotations

from repro.core.pt import defs
from repro.core.pt.defs import Flags, PageSize
from repro.core.pt.impl import AlreadyMapped, BadRequest, Mapping, NotMapped
from repro.hw.mem import PhysicalMemory

_PRESENT = 1 << defs.BIT_PRESENT
_HUGE = 1 << defs.BIT_HUGE
_NX = 1 << defs.BIT_NX


class UnverifiedPageTable:
    """Same operations and layout as the verified implementation."""

    def __init__(self, memory: PhysicalMemory, allocator,
                 root_paddr: int | None = None) -> None:
        self.memory = memory
        self.allocator = allocator
        if root_paddr is None:
            root_paddr = allocator.alloc_frame()
            memory.zero_frame(root_paddr)
        self.root_paddr = root_paddr

    def map_frame(self, vaddr: int, frame_paddr: int, size: PageSize,
                  flags: Flags) -> None:
        mask = int(size) - 1
        if vaddr & mask or frame_paddr & mask or vaddr >= defs.MAX_VADDR:
            raise BadRequest(f"bad map request {vaddr:#x} -> {frame_paddr:#x}")
        if frame_paddr & ~defs.ADDR_MASK:
            raise BadRequest(f"frame {frame_paddr:#x} out of range")
        target = size.level
        table = self.root_paddr
        for level in range(target):
            slot = table + (((vaddr >> defs.LEVEL_SHIFTS[level]) & 0x1FF) << 3)
            raw = self.memory.load_u64(slot)
            if raw & _PRESENT:
                if level in (1, 2) and raw & _HUGE:
                    raise AlreadyMapped(f"{vaddr:#x} under a huge page")
                table = raw & defs.ADDR_MASK
            else:
                new_table = self.allocator.alloc_frame()
                self.memory.zero_frame(new_table)
                self.memory.store_u64(slot, (new_table & defs.ADDR_MASK) | 0x7)
                table = new_table
        slot = table + (((vaddr >> defs.LEVEL_SHIFTS[target]) & 0x1FF) << 3)
        raw = self.memory.load_u64(slot)
        if raw & _PRESENT:
            # Deferred reclamation: unmap leaves empty tables behind; a
            # huge-page map over such a stale subtree reclaims it now.
            is_table = target < 3 and not raw & _HUGE
            if is_table and self._subtree_is_empty(raw & defs.ADDR_MASK,
                                                   target + 1):
                self._free_subtree(raw & defs.ADDR_MASK, target + 1)
                self.memory.store_u64(slot, 0)
            else:
                raise AlreadyMapped(f"{vaddr:#x} already mapped")
        raw = (frame_paddr & defs.ADDR_MASK) | _PRESENT
        if flags.writable:
            raw |= 1 << defs.BIT_WRITABLE
        if flags.user:
            raw |= 1 << defs.BIT_USER
        if flags.write_through:
            raw |= 1 << defs.BIT_WRITE_THROUGH
        if flags.cache_disable:
            raw |= 1 << defs.BIT_CACHE_DISABLE
        if flags.global_:
            raw |= 1 << defs.BIT_GLOBAL
        if not flags.executable:
            raw |= _NX
        if target in (1, 2):
            raw |= _HUGE
        self.memory.store_u64(slot, raw)

    def _subtree_is_empty(self, table: int, level: int) -> bool:
        """True when no page mapping exists anywhere under `table`."""
        for index in range(defs.ENTRIES_PER_TABLE):
            raw = self.memory.load_u64(table + (index << 3))
            if not raw & _PRESENT:
                continue
            if level == 3 or raw & _HUGE:
                return False
            if not self._subtree_is_empty(raw & defs.ADDR_MASK, level + 1):
                return False
        return True

    def _free_subtree(self, table: int, level: int) -> None:
        if level < 3:
            for index in range(defs.ENTRIES_PER_TABLE):
                raw = self.memory.load_u64(table + (index << 3))
                if raw & _PRESENT and not raw & _HUGE:
                    self._free_subtree(raw & defs.ADDR_MASK, level + 1)
        self.allocator.free_frame(table)

    def unmap(self, vaddr: int) -> Mapping:
        if vaddr >= defs.MAX_VADDR or vaddr < 0:
            raise BadRequest(f"non-canonical vaddr {vaddr:#x}")
        table = self.root_paddr
        for level in range(defs.NUM_LEVELS):
            slot = table + (((vaddr >> defs.LEVEL_SHIFTS[level]) & 0x1FF) << 3)
            raw = self.memory.load_u64(slot)
            if not raw & _PRESENT:
                raise NotMapped(f"{vaddr:#x} not mapped")
            if level == 3 or (level in (1, 2) and raw & _HUGE):
                size = PageSize.for_level(level)
                self.memory.store_u64(slot, 0)
                # NOTE: no empty-table GC — tables stay allocated, like
                # many production kernels' fast paths.
                return Mapping(
                    vaddr=vaddr & ~(int(size) - 1),
                    paddr=raw & defs.ADDR_MASK & ~(int(size) - 1),
                    size=size,
                    flags=_decode_flags(raw),
                )
            table = raw & defs.ADDR_MASK
        raise AssertionError("unreachable")

    def resolve(self, vaddr: int) -> Mapping | None:
        if vaddr >= defs.MAX_VADDR or vaddr < 0:
            raise BadRequest(f"non-canonical vaddr {vaddr:#x}")
        table = self.root_paddr
        for level in range(defs.NUM_LEVELS):
            slot = table + (((vaddr >> defs.LEVEL_SHIFTS[level]) & 0x1FF) << 3)
            raw = self.memory.load_u64(slot)
            if not raw & _PRESENT:
                return None
            if level == 3 or (level in (1, 2) and raw & _HUGE):
                size = PageSize.for_level(level)
                return Mapping(
                    vaddr=vaddr & ~(int(size) - 1),
                    paddr=raw & defs.ADDR_MASK & ~(int(size) - 1),
                    size=size,
                    flags=_decode_flags(raw),
                )
            table = raw & defs.ADDR_MASK
        raise AssertionError("unreachable")


def _decode_flags(raw: int) -> Flags:
    return Flags(
        writable=bool(raw & (1 << defs.BIT_WRITABLE)),
        user=bool(raw & (1 << defs.BIT_USER)),
        executable=not raw & _NX,
        write_through=bool(raw & (1 << defs.BIT_WRITE_THROUGH)),
        cache_disable=bool(raw & (1 << defs.BIT_CACHE_DISABLE)),
        global_=bool(raw & (1 << defs.BIT_GLOBAL)),
    )
