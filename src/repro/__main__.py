"""``python -m repro`` — a one-screen tour of the reproduction.

Prints the related-work tables, the proof structure, and runs a quick
slice of the refinement proof so a new user sees the system do something
real in a few seconds.  The full experience lives in ``examples/`` and
``benchmarks/``.
"""

from __future__ import annotations

from repro import __version__
from repro.core.refine.proof import build_proof, proof_structure
from repro.related.tables import table1, table2


def main() -> None:
    print(f"repro {__version__} — 'Beyond isolation' (HotOS '23) "
          f"reproduction\n")

    print("Table 1 — OS verification projects")
    for line in table1():
        print("  " + line)
    print("\nTable 2 — verified OS components")
    for line in table2():
        print("  " + line)

    print("\nFigure 2 — proof structure")
    for line in proof_structure():
        print("  " + line)

    print("\nQuick proof slice (SMT lemmas + a bounded structural check):")
    engine = build_proof(include_nr=True, include_contract=True,
                         include_structural=False)
    report = engine.run()
    print(f"  {report.proved}/{report.total} verification conditions "
          f"proved in {report.total_seconds:.1f} s")
    print("\nNext steps:")
    print("  python examples/quickstart.py")
    print("  python examples/verified_pagetable_proof.py   # all 220 VCs")
    print("  pytest benchmarks/ --benchmark-only           # every figure")


if __name__ == "__main__":
    main()
