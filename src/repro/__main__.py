"""``python -m repro`` — a one-screen tour, plus the prover CLI.

With no arguments: prints the related-work tables, the proof structure, and
runs a quick slice of the refinement proof so a new user sees the system do
something real in a few seconds.

``python -m repro prove --jobs N`` discharges the verification-condition
population under the scheduled/cached prover (:mod:`repro.prover`): VCs fan
out across N worker processes, longest-expected-first, and SMT verdicts are
served from / stored into the persistent proof cache so a re-verification
run only pays for what changed.

``python -m repro faults --campaign all --seed 1`` runs the deterministic
fault-injection campaign (:mod:`repro.faults`): seeded faults at the disk,
network link, allocator, and prover layers, with per-site
injected/survived/degraded/failed accounting and a nonzero exit on any
invariant violation.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__


def tour() -> int:
    from repro.core.refine.proof import build_proof, proof_structure
    from repro.related.tables import table1, table2

    print(f"repro {__version__} — 'Beyond isolation' (HotOS '23) "
          f"reproduction\n")

    print("Table 1 — OS verification projects")
    for line in table1():
        print("  " + line)
    print("\nTable 2 — verified OS components")
    for line in table2():
        print("  " + line)

    print("\nFigure 2 — proof structure")
    for line in proof_structure():
        print("  " + line)

    print("\nQuick proof slice (SMT lemmas + a bounded structural check):")
    engine = build_proof(include_nr=True, include_contract=True,
                         include_structural=False)
    report = engine.run()
    print(f"  {report.proved}/{report.total} verification conditions "
          f"proved in {report.total_seconds:.1f} s")
    print("\nNext steps:")
    print("  python -m repro prove --jobs 4        # scheduled + cached")
    print("  python examples/quickstart.py")
    print("  python examples/verified_pagetable_proof.py   # all 220 VCs")
    print("  pytest benchmarks/ --benchmark-only           # every figure")
    return 0


def _build_engine(layers: str, quick: bool):
    from repro.core.refine.proof import build_proof

    selected = {name for name in layers.split(",") if name}
    known = {"all", "lemmas", "structural", "nr", "contract"}
    unknown = selected - known
    if unknown:
        raise SystemExit(f"unknown --layers {sorted(unknown)}; "
                         f"choose from {sorted(known)}")
    everything = "all" in selected
    return build_proof(
        include_lemmas=everything or "lemmas" in selected,
        include_structural=everything or "structural" in selected,
        include_nr=everything or "nr" in selected,
        include_contract=everything or "contract" in selected,
        scenario_depth=2 if quick else 3,
        scenario_cap=12 if quick else 60,
    )


def prove(args) -> int:
    from repro.prover import ProofCache, ProverConfig, prove_all
    from repro.prover.cache import default_cache_dir

    engine = _build_engine(args.layers, args.quick)
    print(f"prover: {engine.vc_count} verification conditions, "
          f"jobs={args.jobs}, cache="
          f"{'off' if args.no_cache else (args.cache_dir or default_cache_dir())}")

    cache = None
    config = ProverConfig(
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        conflict_budget=args.budget,
    )
    if not args.no_cache:
        cache = ProofCache(args.cache_dir or default_cache_dir())
        if args.clear_cache:
            removed = cache.clear()
            print(f"prover: cleared {removed} cached entries")

    done = {"count": 0}

    def progress(result):
        done["count"] += 1
        if not result.ok and result.status.value != "timeout":
            print(f"  FAILED {result.name}: {result.detail}")
        elif done["count"] % 40 == 0:
            print(f"  ... {done['count']}/{engine.vc_count}")

    report = prove_all(engine, jobs=args.jobs, cache=cache, config=config,
                       progress=progress)

    print()
    for line in report.summary_lines():
        print("  " + line)
    if cache is not None:
        print(f"  cache: {cache.stats.hits} hits, {cache.stats.misses} "
              f"misses, {cache.stats.stores} stored "
              f"({cache.stats.hit_rate:.0%} hit rate)")

    if args.events:
        print("\n  slowest discharges:")
        slowest = sorted(report.results,
                         key=lambda r: -r.seconds)[:args.events]
        for r in slowest:
            print(f"    {r.name:45s} {r.status.value:8s} "
                  f"{r.seconds:7.3f}s solver={r.solver_seconds:7.3f}s"
                  f"{'  [cache]' if r.cached else ''}")

    if args.min_hit_rate is not None:
        rate = report.cache_hits / report.total if report.total else 0.0
        if rate < args.min_hit_rate:
            print(f"prover: cache hit rate {rate:.0%} below required "
                  f"{args.min_hit_rate:.0%}", file=sys.stderr)
            return 3

    if not report.all_proved:
        return 1
    return 0


def faults(args) -> int:
    from repro.faults import run_campaign
    from repro.faults.campaign import summary_text

    print(f"faults: campaign={args.campaign} seed={args.seed}")
    reports = run_campaign(args.campaign, seed=args.seed)
    text = summary_text(reports)
    print(text)

    if args.check_determinism:
        replay = summary_text(run_campaign(args.campaign, seed=args.seed))
        if replay != text:
            print("faults: NONDETERMINISM — replay with the same seed "
                  "produced a different summary", file=sys.stderr)
            return 2
        print("faults: replay with the same seed is byte-identical")

    if any(report.violations for report in reports):
        print("faults: invariant violations detected", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Beyond isolation' (HotOS '23)")
    sub = parser.add_subparsers(dest="command")

    prove_parser = sub.add_parser(
        "prove", help="discharge the VC population (scheduled + cached)")
    prove_parser.add_argument("--jobs", "-j", type=int, default=1,
                              help="worker processes (default 1)")
    prove_parser.add_argument("--layers", default="all",
                              help="comma list of layers: "
                                   "all,lemmas,structural,nr,contract")
    prove_parser.add_argument("--quick", action="store_true",
                              help="smaller scenario population")
    prove_parser.add_argument("--cache-dir", default=None,
                              help="proof-cache directory "
                                   "(default: $REPRO_PROOF_CACHE or "
                                   "~/.cache/repro/proofs)")
    prove_parser.add_argument("--no-cache", action="store_true",
                              help="disable the persistent proof cache")
    prove_parser.add_argument("--clear-cache", action="store_true",
                              help="drop cached verdicts before running")
    prove_parser.add_argument("--budget", type=int, default=None,
                              help="first-attempt SMT conflict budget")
    prove_parser.add_argument("--events", type=int, default=0, metavar="N",
                              help="print the N slowest discharges")
    prove_parser.add_argument("--min-hit-rate", type=float, default=None,
                              help="exit 3 if the cache hit rate is below "
                                   "this fraction (CI warm-cache check)")

    faults_parser = sub.add_parser(
        "faults", help="run the deterministic fault-injection campaign")
    faults_parser.add_argument("--seed", type=int, default=1,
                               help="fault-plan seed (default 1)")
    faults_parser.add_argument("--campaign", default="all",
                               choices=["disk", "net", "mem", "prover",
                                        "all"],
                               help="which layer to attack (default all)")
    faults_parser.add_argument("--check-determinism", action="store_true",
                               help="run twice and require byte-identical "
                                    "summaries")

    args = parser.parse_args(argv)
    if args.command == "faults":
        return faults(args)
    if args.command == "prove":
        if args.budget is None:
            from repro.prover import DEFAULT_CONFLICT_BUDGET

            args.budget = DEFAULT_CONFLICT_BUDGET
        return prove(args)
    return tour()


if __name__ == "__main__":
    sys.exit(main())
