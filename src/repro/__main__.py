"""``python -m repro`` — a one-screen tour, plus the prover CLI.

With no arguments: prints the related-work tables, the proof structure, and
runs a quick slice of the refinement proof so a new user sees the system do
something real in a few seconds.

``python -m repro prove --jobs N`` discharges the verification-condition
population under the scheduled/cached prover (:mod:`repro.prover`): VCs fan
out across N worker processes, longest-expected-first, and SMT verdicts are
served from / stored into the persistent proof cache so a re-verification
run only pays for what changed.

``python -m repro faults --campaign all --seed 1`` runs the deterministic
fault-injection campaign (:mod:`repro.faults`): seeded faults at the disk,
network link, allocator, and prover layers, with per-site
injected/survived/degraded/failed accounting and a nonzero exit on any
invariant violation.

``python -m repro analyze`` runs the verification-aware static analysis
(:mod:`repro.analysis`): the layering/ghost-code-erasure checker over
the import graph, the contract-purity lint, and the NR step-protocol
race detector — nonzero exit on any unsuppressed finding.

``--trace out.jsonl`` on any subcommand streams every
:mod:`repro.obs` event of the run — prover lifecycle, SMT-phase spans,
VC discharges, fault-site tallies — into one JSONL file;
``python -m repro trace {schema,validate,summary}`` works with such
files.  All human-facing text goes through :mod:`repro.obs.console`;
nothing under ``src/repro`` writes to stdout directly.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import __version__, obs
from repro.obs.console import err, out


def _start_trace(path: str):
    """Subscribe a JSONL writer to the process-wide bus."""
    writer = obs.JsonlWriter(path)
    obs.bus().subscribe(writer)
    return writer


def _stop_trace(writer) -> None:
    obs.bus().unsubscribe(writer)
    writer.close()
    out(f"trace: {writer.count} events -> {writer.path}")


def tour() -> int:
    from repro.core.refine.proof import build_proof, proof_structure
    from repro.related.tables import table1, table2

    out(f"repro {__version__} — 'Beyond isolation' (HotOS '23) "
        f"reproduction\n")

    out("Table 1 — OS verification projects")
    for line in table1():
        out("  " + line)
    out("\nTable 2 — verified OS components")
    for line in table2():
        out("  " + line)

    out("\nFigure 2 — proof structure")
    for line in proof_structure():
        out("  " + line)

    out("\nQuick proof slice (SMT lemmas + a bounded structural check):")
    engine = build_proof(include_nr=True, include_contract=True,
                         include_structural=False)
    report = engine.run()
    out(f"  {report.proved}/{report.total} verification conditions "
        f"proved in {report.total_seconds:.1f} s")
    out("\nNext steps:")
    out("  python -m repro prove --jobs 4        # scheduled + cached")
    out("  python examples/quickstart.py")
    out("  python examples/verified_pagetable_proof.py   # all 220 VCs")
    out("  pytest benchmarks/ --benchmark-only           # every figure")
    return 0


def _build_engine(layers: str, quick: bool):
    from repro.core.refine.proof import build_proof

    selected = {name for name in layers.split(",") if name}
    known = {"all", "lemmas", "structural", "nr", "contract", "sched",
             "rg"}
    unknown = selected - known
    if unknown:
        raise SystemExit(f"unknown --layers {sorted(unknown)}; "
                         f"choose from {sorted(known)}")
    everything = "all" in selected
    return build_proof(
        include_lemmas=everything or "lemmas" in selected,
        include_structural=everything or "structural" in selected,
        include_nr=everything or "nr" in selected,
        include_contract=everything or "contract" in selected,
        include_sched=everything or "sched" in selected,
        include_rg=everything or "rg" in selected,
        scenario_depth=2 if quick else 3,
        scenario_cap=12 if quick else 60,
    )


def prove(args) -> int:
    from repro.prover import ProofCache, ProverConfig, prove_all
    from repro.prover.cache import default_cache_dir

    writer = _start_trace(args.trace) if args.trace else None
    engine = _build_engine(args.layers, args.quick)
    out(f"prover: {engine.vc_count} verification conditions, "
        f"jobs={args.jobs}, cache="
        f"{'off' if args.no_cache else (args.cache_dir or default_cache_dir())}")

    cache = None
    config = ProverConfig(
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        conflict_budget=args.budget,
        preprocess=not args.no_preprocess,
        incremental=not args.no_incremental,
    )
    if not args.no_cache:
        cache = ProofCache(args.cache_dir or default_cache_dir())
        if args.clear_cache:
            removed = cache.clear()
            out(f"prover: cleared {removed} cached entries")

    done = {"count": 0}

    def progress(result):
        done["count"] += 1
        if not result.ok and result.status.value != "timeout":
            out(f"  FAILED {result.name}: {result.detail}")
        elif done["count"] % 40 == 0:
            out(f"  ... {done['count']}/{engine.vc_count}")

    report = prove_all(engine, jobs=args.jobs, cache=cache, config=config,
                       progress=progress)

    out()
    for line in report.summary_lines():
        out("  " + line)
    if cache is not None:
        out(f"  cache: {cache.stats.hits} hits, {cache.stats.misses} "
            f"misses, {cache.stats.stores} stored "
            f"({cache.stats.hit_rate:.0%} hit rate)")

    if args.events:
        out("\n  slowest discharges:")
        slowest = sorted(report.results,
                         key=lambda r: -r.seconds)[:args.events]
        for r in slowest:
            out(f"    {r.name:45s} {r.status.value:8s} "
                f"{r.seconds:7.3f}s solver={r.solver_seconds:7.3f}s"
                f"{'  [cache]' if r.cached else ''}")

    if writer is not None:
        _stop_trace(writer)

    if args.min_hit_rate is not None:
        rate = report.cache_hits / report.total if report.total else 0.0
        if rate < args.min_hit_rate:
            err(f"prover: cache hit rate {rate:.0%} below required "
                f"{args.min_hit_rate:.0%}")
            return 3

    if not report.all_proved:
        return 1
    return 0


def _emit_site_events(reports) -> None:
    """Publish every campaign's per-site counters on the bus (the JSONL
    view of what `summary_lines` prints)."""
    from repro.faults.campaign import OUTCOMES

    bus = obs.bus()
    for report in reports:
        for name in sorted(report.sites):
            site = report.sites[name]
            bus.emit("faults.site", campaign=report.name, seed=report.seed,
                     site=name,
                     **{outcome: getattr(site, outcome)
                        for outcome in OUTCOMES})
        bus.emit("faults.campaign", campaign=report.name, seed=report.seed,
                 injections=report.injections,
                 violations=len(report.violations))


def faults(args) -> int:
    from repro.faults import run_campaign
    from repro.faults.campaign import summary_text

    writer = _start_trace(args.trace) if args.trace else None
    out(f"faults: campaign={args.campaign} seed={args.seed}")
    reports = run_campaign(args.campaign, seed=args.seed)
    text = summary_text(reports)
    out(text)

    if writer is not None:
        _emit_site_events(reports)
        # the determinism replay below must not double the trace
        _stop_trace(writer)

    if args.check_determinism:
        replay = summary_text(run_campaign(args.campaign, seed=args.seed))
        if replay != text:
            err("faults: NONDETERMINISM — replay with the same seed "
                "produced a different summary")
            return 2
        out("faults: replay with the same seed is byte-identical")

    if any(report.violations for report in reports):
        err("faults: invariant violations detected")
        return 1
    return 0


def cluster(args) -> int:
    """Run the sharded/replicated KV service end to end."""
    from repro.cluster import harness

    writer = _start_trace(args.trace) if args.trace else None
    try:
        if args.bench:
            payload = harness.scaling_bench(seed=args.seed)
            out(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        if args.wal_matrix:
            from repro.faults.cluster import run_wal_crash_matrix
            matrix = run_wal_crash_matrix(seed=args.seed)
            out(matrix.summary())
            for violation in matrix.violations:
                err(f"cluster: {violation}")
            return 0 if matrix.ok else 1
        profile = harness.default_profile(ops=args.ops, seed=args.seed)
        kill_at = args.kill_at
        if args.kill is not None and kill_at is None:
            kill_at = profile.ops // 3
        restart_at = None
        if args.restart_after is not None:
            if args.kill is None:
                err("cluster: --restart-after needs --kill")
                return 2
            restart_at = min(kill_at + args.restart_after,
                             profile.ops - 1)
        out(f"cluster: {args.nodes} nodes rf={args.replicas} "
            f"seed={args.seed} ops={profile.ops}"
            + (f" kill={args.kill}@op{kill_at}" if args.kill else "")
            + (f" restart@op{restart_at}" if restart_at is not None
               else ""))
        _, report = harness.run_cluster(
            num_nodes=args.nodes, rf=args.replicas, seed=args.seed,
            profile=profile, kill_at_op=kill_at, kill_node=args.kill,
            restart_at_op=restart_at)
        for line in report.summary_lines():
            out(line)
        if not report.ok:
            err("cluster: service contract violated")
            return 1
        if restart_at is not None and not report.recovery:
            err("cluster: restart requested but never happened")
            return 1
        for rec in report.recovery:
            if not rec["serving"]:
                err(f"cluster: {rec['node']} restarted but never "
                    f"returned to serving")
                return 1
        return 0
    finally:
        if writer is not None:
            _stop_trace(writer)


def sched(args) -> int:
    """Run the multi-class scheduler workload / scaling benchmark."""
    from repro.nros.sched import workload

    writer = _start_trace(args.trace) if args.trace else None
    try:
        if args.bench:
            payload = workload.scaling_bench(seed=args.seed)
            out(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        profile = workload.default_profile(ticks=args.ticks)
        metrics = workload.run_workload(args.cores, profile,
                                        seed=args.seed,
                                        record_trace=args.switch_trace)
        trace_lines = metrics.pop("switch_trace", None)
        out(f"sched: {args.cores} cores seed={args.seed} "
            f"ticks={profile.ticks} ({profile.batch} batch + "
            f"{profile.interactive} interactive + {profile.rt} rt)")
        out(json.dumps(metrics, indent=2, sort_keys=True))
        if trace_lines is not None:
            for core, label in trace_lines:
                out(f"  core{core} -> {label}")
        return 0
    finally:
        if writer is not None:
            _stop_trace(writer)


def analyze(args) -> int:
    from repro.analysis import cli as analysis_cli

    writer = _start_trace(args.trace) if args.trace else None
    try:
        return analysis_cli.main(args)
    finally:
        if writer is not None:
            _stop_trace(writer)


def trace(args) -> int:
    """Work with JSONL trace files: schema / validate / summary."""
    if args.trace_command == "schema":
        out("trace record schema (one JSON object per line):")
        for key, types in obs.SCHEMA_REQUIRED.items():
            names = "|".join(t.__name__ for t in types)
            out(f"  {key:<8} required  {names}")
        out(f"  clock    one of {list(obs.CLOCK_DOMAINS)}")
        out("  *        any further field must be a JSON scalar "
            "(str|int|float|bool|null)")
        out("span events carry `dur` (duration in the emitting clock's "
            "unit: wall seconds or simulated ns)")
        return 0

    problems_total = 0
    records = []
    try:
        with open(args.file, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as exc:
        err(f"trace: cannot read {args.file}: {exc}")
        return 2
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        problems = obs.validate_jsonl_line(line)
        if problems:
            problems_total += 1
            for problem in problems:
                err(f"{args.file}:{lineno}: {problem}")
        else:
            records.append(json.loads(line))

    if args.trace_command == "validate":
        out(f"trace: {len(records)} valid records, "
            f"{problems_total} invalid lines")
        return 1 if problems_total else 0

    # summary
    counts: dict[str, int] = {}
    durations: dict[str, obs.Histogram] = {}
    for record in records:
        name = record["name"]
        counts[name] = counts.get(name, 0) + 1
        if "dur" in record:
            durations.setdefault(
                name, obs.Histogram(name=name)).record(record["dur"])
    out(f"trace: {len(records)} events, {len(counts)} event types"
        + (f", {problems_total} invalid lines skipped"
           if problems_total else ""))
    for name in sorted(counts):
        line = f"  {name:<24} {counts[name]:>6}"
        if name in durations:
            snap = durations[name].snapshot()
            line += (f"   dur mean={snap['mean']:.6g} "
                     f"p50={snap['p50']:.6g} p99={snap['p99']:.6g} "
                     f"max={snap['max']:.6g}")
        out(line)
    return 1 if problems_total else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Beyond isolation' (HotOS '23)")
    sub = parser.add_subparsers(dest="command")

    prove_parser = sub.add_parser(
        "prove", help="discharge the VC population (scheduled + cached)")
    prove_parser.add_argument("--jobs", "-j", type=int, default=1,
                              help="worker processes (default 1)")
    prove_parser.add_argument("--layers", default="all",
                              help="comma list of layers: all,lemmas,"
                                   "structural,nr,contract,sched,rg")
    prove_parser.add_argument("--quick", action="store_true",
                              help="smaller scenario population")
    prove_parser.add_argument("--cache-dir", default=None,
                              help="proof-cache directory "
                                   "(default: $REPRO_PROOF_CACHE or "
                                   "~/.cache/repro/proofs)")
    prove_parser.add_argument("--no-cache", action="store_true",
                              help="disable the persistent proof cache")
    prove_parser.add_argument("--clear-cache", action="store_true",
                              help="drop cached verdicts before running")
    prove_parser.add_argument("--budget", type=int, default=None,
                              help="first-attempt SMT conflict budget")
    prove_parser.add_argument("--no-preprocess", action="store_true",
                              help="disable the SatELite CNF preprocessor "
                                   "(ablation)")
    prove_parser.add_argument("--no-incremental", action="store_true",
                              help="disable family grouping / incremental "
                                   "assumption solving (ablation)")
    prove_parser.add_argument("--events", type=int, default=0, metavar="N",
                              help="print the N slowest discharges")
    prove_parser.add_argument("--min-hit-rate", type=float, default=None,
                              help="exit 3 if the cache hit rate is below "
                                   "this fraction (CI warm-cache check)")
    prove_parser.add_argument("--trace", default=None, metavar="FILE",
                              help="stream every obs event of the run "
                                   "into FILE (JSONL)")

    faults_parser = sub.add_parser(
        "faults", help="run the deterministic fault-injection campaign")
    faults_parser.add_argument("--seed", type=int, default=1,
                               help="fault-plan seed (default 1)")
    faults_parser.add_argument("--campaign", default="all",
                               choices=["disk", "net", "mem", "prover",
                                        "cluster", "ring", "all"],
                               help="which layer to attack (default all)")
    faults_parser.add_argument("--check-determinism", action="store_true",
                               help="run twice and require byte-identical "
                                    "summaries")
    faults_parser.add_argument("--trace", default=None, metavar="FILE",
                               help="stream every obs event of the run "
                                    "into FILE (JSONL)")

    analyze_parser = sub.add_parser(
        "analyze",
        help="verification-aware static analysis (layering, purity, races)")
    analyze_parser.add_argument("--root", default=None, metavar="DIR",
                                help="analyze an alternate tree (expects "
                                     "layer_map.json in DIR; default: this "
                                     "repository)")
    analyze_parser.add_argument("--skip", default=None,
                                help="comma list of passes to skip: "
                                     "layering,purity,rg,lockorder,"
                                     "deadsupp,race")
    analyze_parser.add_argument("--seed", type=int, default=None,
                                help="replay the race detector under one "
                                     "seed only (default: the seed sweep)")
    analyze_parser.add_argument("--max-steps", type=int, default=200_000,
                                help="race-replay step budget per schedule")
    analyze_parser.add_argument("--mutant", default=None, metavar="NAME",
                                help="analyze a seeded mutant (expected "
                                     "to be flagged): reader-lock-elision, "
                                     "writer-lock-elision, sched mutants, "
                                     "or the rg interference mutants "
                                     "pmem-free-unlocked / "
                                     "buddy-split-no-merge-lock")
    analyze_parser.add_argument("--format", default="text",
                                choices=["text", "json"],
                                help="output format; json emits one "
                                     "canonical schema-validated payload "
                                     "on stdout")
    analyze_parser.add_argument("--list-rules", action="store_true",
                                help="print every rule id and exit")
    analyze_parser.add_argument("--trace", default=None, metavar="FILE",
                                help="stream every obs event of the run "
                                     "into FILE (JSONL)")

    cluster_parser = sub.add_parser(
        "cluster",
        help="run the sharded, replicated KV service over the verified OS")
    cluster_parser.add_argument("--nodes", type=int, default=3,
                                help="storage nodes (default 3)")
    cluster_parser.add_argument("--replicas", type=int, default=2,
                                help="replication factor (default 2)")
    cluster_parser.add_argument("--ops", type=int, default=None,
                                help="workload operations "
                                     "(default 2000, 600 under "
                                     "REPRO_BENCH_QUICK)")
    cluster_parser.add_argument("--seed", type=int, default=1,
                                help="workload/placement seed (default 1)")
    cluster_parser.add_argument("--kill", default=None, metavar="NODE",
                                help="fail-stop NODE mid-workload "
                                     "(e.g. node1)")
    cluster_parser.add_argument("--kill-at", type=int, default=None,
                                metavar="OP",
                                help="operation index for --kill "
                                     "(default: a third into the run)")
    cluster_parser.add_argument("--restart-after", type=int, default=None,
                                metavar="OPS",
                                help="with --kill: restart the killed "
                                     "node from its disk image OPS "
                                     "operations after the kill")
    cluster_parser.add_argument("--bench", action="store_true",
                                help="run the 1-vs-3-node scaling "
                                     "benchmark and print its JSON")
    cluster_parser.add_argument("--wal-matrix", action="store_true",
                                help="run the full WAL write-boundary "
                                     "crash-recovery matrix and exit")
    cluster_parser.add_argument("--trace", default=None, metavar="FILE",
                                help="stream every obs event of the run "
                                     "into FILE (JSONL)")

    sched_parser = sub.add_parser(
        "sched",
        help="run the multi-class scheduler under the mixed workload")
    sched_parser.add_argument("--cores", type=int, default=4,
                              help="runqueue count (default 4)")
    sched_parser.add_argument("--seed", type=int, default=1,
                              help="workload seed (default 1)")
    sched_parser.add_argument("--ticks", type=int, default=None,
                              help="workload ticks (default 6000, 1500 "
                                   "under REPRO_BENCH_QUICK)")
    sched_parser.add_argument("--bench", action="store_true",
                              help="run the 1/2/4/8-core scaling "
                                   "benchmark and print its JSON")
    sched_parser.add_argument("--switch-trace", action="store_true",
                              help="print the per-core context-switch "
                                   "trace after the metrics")
    sched_parser.add_argument("--trace", default=None, metavar="FILE",
                              help="stream every obs event of the run "
                                   "into FILE (JSONL)")

    trace_parser = sub.add_parser(
        "trace", help="inspect/validate JSONL trace files")
    trace_sub = trace_parser.add_subparsers(dest="trace_command",
                                            required=True)
    trace_sub.add_parser("schema", help="print the event record schema")
    validate_parser = trace_sub.add_parser(
        "validate", help="validate every line against the schema")
    validate_parser.add_argument("file")
    summary_parser = trace_sub.add_parser(
        "summary", help="per-event counts and span duration stats")
    summary_parser.add_argument("file")

    args = parser.parse_args(argv)
    if args.command == "cluster":
        return cluster(args)
    if args.command == "sched":
        return sched(args)
    if args.command == "faults":
        return faults(args)
    if args.command == "trace":
        return trace(args)
    if args.command == "analyze":
        return analyze(args)
    if args.command == "prove":
        if args.budget is None:
            from repro.prover import DEFAULT_CONFLICT_BUDGET

            args.budget = DEFAULT_CONFLICT_BUDGET
        return prove(args)
    return tour()


if __name__ == "__main__":
    sys.exit(main())
