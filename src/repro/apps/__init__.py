"""Package."""
