"""A scalable key-value store built on node replication.

The paper argues NrOS-style node replication applies beyond the kernel, to
"many of the user-space components".  This application demonstrates it: a
KV store whose sequential logic is replicated per NUMA node via NR, with a
self-check that the observed concurrent behaviour is linearizable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.immutable import EMPTY_MAP
from repro.nr.core import NodeReplicated
from repro.nr.datastructures import KvStore, kv_model_step


@dataclass
class KvStats:
    puts: int = 0
    gets: int = 0
    deletes: int = 0


class ReplicatedKv:
    """The user-facing API over NR-replicated state."""

    def __init__(self, num_nodes: int = 2) -> None:
        self.nr = NodeReplicated(KvStore, num_nodes=num_nodes)
        self.stats = KvStats()

    def put(self, key, value, node: int = 0, thread: int = 0):
        self.stats.puts += 1
        return self.nr.execute(("put", key, value), node=node, thread=thread)

    def get(self, key, node: int = 0, thread: int = 0):
        self.stats.gets += 1
        return self.nr.execute_ro(("get", key), node=node, thread=thread)

    def delete(self, key, node: int = 0, thread: int = 0):
        self.stats.deletes += 1
        return self.nr.execute(("del", key), node=node, thread=thread)

    def snapshot(self, node: int = 0) -> dict:
        """A consistent snapshot (after quiescing the replica)."""
        self.nr.sync_all()
        return dict(self.nr.replicas[node].ds.data)


def run_concurrent_workload(
    num_threads: int = 4,
    num_nodes: int = 2,
    ops_per_thread: int = 6,
    seed: int = 0,
):
    """Run a concurrent put/get/del workload and verify linearizability.

    Returns (kv, history, check_result)."""
    # Ghost imports: the self-check pulls in the proof layer only when
    # it actually runs, so the store itself deploys with proofs erased.
    from repro.nr.interleave import ThreadScript, run_interleaved  # repro: allow(ghost-import)
    from repro.nr.linearizability import check_linearizable  # repro: allow(ghost-import)

    kv = ReplicatedKv(num_nodes=num_nodes)
    keys = ["alpha", "beta", "gamma"]
    scripts = []
    for t in range(num_threads):
        ops = []
        for i in range(ops_per_thread):
            key = keys[(t + i) % len(keys)]
            which = (t * 7 + i) % 3
            if which == 0:
                ops.append((("put", key, f"v{t}.{i}"), False))
            elif which == 1:
                ops.append((("get", key), True))
            else:
                ops.append((("del", key), False))
        scripts.append(
            ThreadScript(thread=t, node=t % num_nodes, ops=ops)
        )
    history = run_interleaved(kv.nr, scripts, seed=seed)
    result = check_linearizable(history, EMPTY_MAP, kv_model_step)
    return kv, history, result
