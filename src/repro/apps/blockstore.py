"""The data-storage node of a distributed block store.

"As an example of the kind of application we are interested in verifying,
consider the data-storage node in a distributed block store like GFS or S3.
In fact, Amazon even describes their use of lightweight formal methods to
verify such a storage node" (Section 1, citing the S3 ShardStore paper).

This is that application, built on the full stack: blocks live as files in
the kernel's filesystem, requests arrive over the RDP reliable protocol on
the simulated network, payloads are CRC-checked end to end, and the node is
validated against a simple functional model by property-based testing —
the same "lightweight formal methods" discipline as the S3 work.

Wire protocol (marshalled tuples over RDP messages):

    ("put", key, data, crc)   -> ("ok",)            | ("err", reason)
    ("get", key)              -> ("ok", data, crc)  | ("err", "not_found")
    ("delete", key)           -> ("ok", existed)
    ("list",)                 -> ("ok", (key, ...))
    ("bye",)                  -> ("ok",)  and the connection ends
"""

from __future__ import annotations

from repro.apps.checksum import crc32
from repro.nros.fs.fd import O_CREAT, O_RDWR, O_TRUNC
from repro.nros.syscall.abi import SyscallError, sys
from repro.nros.syscall.marshal import MarshalError, marshal, unmarshal

BLOCKS_DIR = "/blocks"


class BlockStoreError(Exception):
    """Client-visible failure (bad checksum, server error)."""


def _key_path(key: str) -> str:
    if not key or "/" in key or key in (".", ".."):
        raise BlockStoreError(f"invalid key {key!r}")
    return f"{BLOCKS_DIR}/{key}"


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------


def storage_node(port: int, num_connections: int = 1):
    """The server program (a user program generator for a Kernel).

    Serves `num_connections` client sessions then exits, so simulations
    terminate cleanly."""
    try:
        yield sys("mkdir", BLOCKS_DIR)
    except SyscallError:
        pass  # already exists
    listener = yield sys("rdp_listen", port)
    for _ in range(num_connections):
        conn = yield sys("rdp_accept", listener)
        yield from _serve_session(conn)


def _serve_session(conn: int):
    while True:
        raw = yield sys("rdp_recv", conn)
        try:
            request = unmarshal(raw)
        except MarshalError:
            yield sys("rdp_send", conn, marshal(("err", "bad_request")))
            continue
        if not isinstance(request, tuple) or not request:
            yield sys("rdp_send", conn, marshal(("err", "bad_request")))
            continue
        verb = request[0]
        if verb == "bye":
            yield sys("rdp_send", conn, marshal(("ok",)))
            return
        response = yield from _handle(verb, request[1:])
        yield sys("rdp_send", conn, marshal(response))


def _handle(verb: str, args: tuple):
    try:
        if verb == "put":
            key, data, crc = args
            if crc32(data) != crc:
                return ("err", "checksum_mismatch")
            fd = yield sys("open", _key_path(key), O_CREAT | O_RDWR | O_TRUNC)
            yield sys("write", fd, marshal((crc, data)))
            yield sys("close", fd)
            return ("ok",)
        if verb == "get":
            (key,) = args
            try:
                fd = yield sys("open", _key_path(key), O_RDWR)
            except SyscallError:
                return ("err", "not_found")
            stored = yield from _read_all(fd)
            yield sys("close", fd)
            crc, data = unmarshal(stored)
            if crc32(data) != crc:
                return ("err", "corrupt_block")  # detected, never served
            return ("ok", data, crc)
        if verb == "delete":
            (key,) = args
            try:
                yield sys("unlink", _key_path(key))
                return ("ok", True)
            except SyscallError:
                return ("ok", False)
        if verb == "list":
            names = yield sys("readdir", BLOCKS_DIR)
            return ("ok", tuple(names))
        return ("err", f"unknown_verb:{verb}")
    except BlockStoreError as exc:
        return ("err", str(exc))
    except SyscallError as exc:
        return ("err", f"io_error:{exc.errno}")


def _read_all(fd: int):
    out = bytearray()
    while True:
        chunk = yield sys("read", fd, 4096)
        if not chunk:
            return bytes(out)
        out += chunk


# ---------------------------------------------------------------------------
# Client library
# ---------------------------------------------------------------------------


class BlockClient:
    """Client-side library: ``yield from`` each method from user code."""

    def __init__(self, server_ip: int, port: int) -> None:
        self.server_ip = server_ip
        self.port = port
        self._conn: int | None = None

    def connect(self):
        self._conn = yield sys("rdp_connect", self.server_ip, self.port)

    def _call(self, request: tuple):
        if self._conn is None:
            raise BlockStoreError("not connected")
        yield sys("rdp_send", self._conn, marshal(request))
        raw = yield sys("rdp_recv", self._conn)
        response = unmarshal(raw)
        if response[0] == "err":
            return ("err", response[1])
        return response

    def put(self, key: str, data: bytes):
        response = yield from self._call(("put", key, data, crc32(data)))
        if response[0] == "err":
            raise BlockStoreError(f"put failed: {response[1]}")

    def get(self, key: str):
        """Returns the block data, or None when absent."""
        response = yield from self._call(("get", key))
        if response[0] == "err":
            if response[1] == "not_found":
                return None
            raise BlockStoreError(f"get failed: {response[1]}")
        _, data, crc = response
        if crc32(data) != crc:
            raise BlockStoreError("checksum mismatch on the wire")
        return data

    def delete(self, key: str):
        response = yield from self._call(("delete", key))
        if response[0] == "err":
            raise BlockStoreError(f"delete failed: {response[1]}")
        return response[1]

    def list_keys(self):
        response = yield from self._call(("list",))
        if response[0] == "err":
            raise BlockStoreError(f"list failed: {response[1]}")
        return response[1]

    def close(self):
        if self._conn is not None:
            yield from self._call(("bye",))
            yield sys("rdp_close", self._conn)
            self._conn = None


class BlockStoreModel:
    """The functional model the node is checked against — the 'reference
    model' of S3's lightweight formal methods."""

    def __init__(self) -> None:
        self.blocks: dict[str, bytes] = {}

    def put(self, key: str, data: bytes) -> None:
        self.blocks[key] = data

    def get(self, key: str) -> bytes | None:
        return self.blocks.get(key)

    def delete(self, key: str) -> bool:
        return self.blocks.pop(key, None) is not None

    def list_keys(self) -> tuple:
        return tuple(sorted(self.blocks))
