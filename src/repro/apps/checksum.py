"""CRC-32 (IEEE 802.3), table-driven, implemented from scratch.

The storage node checksums every block so corruption is detected end to
end; tests cross-validate this implementation against known vectors."""

from __future__ import annotations

_POLY = 0xEDB88320


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: bytes, crc: int = 0) -> int:
    """CRC-32 of `data`; `crc` allows incremental computation."""
    crc ^= 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF
