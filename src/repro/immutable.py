"""A small persistent (immutable, hashable) map.

Specification states must be hashable values (Section 3's specs are state
machines over mathematical maps).  ``FrozenMap`` wraps a dict with
copy-on-write updates, structural equality, and hashing, which is all the
spec layer needs.
"""

from __future__ import annotations

from typing import Iterator


class FrozenMap:
    """An immutable mapping with persistent update operations."""

    __slots__ = ("_items", "_hash")

    def __init__(self, items=()) -> None:
        if isinstance(items, FrozenMap):
            object.__setattr__(self, "_items", items._items)
        else:
            object.__setattr__(self, "_items", dict(items))
        object.__setattr__(self, "_hash", None)

    # -- mapping protocol -----------------------------------------------------

    def __getitem__(self, key):
        return self._items[key]

    def get(self, key, default=None):
        return self._items.get(key, default)

    def __contains__(self, key) -> bool:
        return key in self._items

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def keys(self):
        return self._items.keys()

    def values(self):
        return self._items.values()

    def items(self):
        return self._items.items()

    # -- persistent updates -----------------------------------------------------

    def set(self, key, value) -> "FrozenMap":
        """Return a copy with `key` bound to `value`."""
        updated = dict(self._items)
        updated[key] = value
        return FrozenMap(updated)

    def remove(self, key) -> "FrozenMap":
        """Return a copy without `key` (which must be present)."""
        updated = dict(self._items)
        del updated[key]
        return FrozenMap(updated)

    def merge(self, other) -> "FrozenMap":
        updated = dict(self._items)
        updated.update(dict(other.items()) if isinstance(other, FrozenMap) else other)
        return FrozenMap(updated)

    # -- value semantics -----------------------------------------------------------

    def __eq__(self, other) -> bool:
        if isinstance(other, FrozenMap):
            return self._items == other._items
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(
                self, "_hash", hash(frozenset(self._items.items()))
            )
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in sorted(
            self._items.items(), key=lambda kv: repr(kv[0])))
        return f"FrozenMap({{{inner}}})"


EMPTY_MAP = FrozenMap()
