"""A block storage device.

Fixed-size sectors, whole-sector reads and writes, and an operation count
so benchmarks can report I/O.  `snapshot`/`restore` support the "power
cycle" tests of the filesystem (contents survive a remount)."""

from __future__ import annotations


class DiskError(Exception):
    """Out-of-range sector or bad buffer size."""


class Disk:
    """A simple sector-addressed disk."""

    SECTOR_SIZE = 4096

    def __init__(self, num_sectors: int) -> None:
        if num_sectors <= 0:
            raise ValueError("disk needs at least one sector")
        self.num_sectors = num_sectors
        self._data = bytearray(num_sectors * self.SECTOR_SIZE)
        self.reads = 0
        self.writes = 0

    def read_sector(self, index: int) -> bytes:
        self._check(index)
        self.reads += 1
        start = index * self.SECTOR_SIZE
        return bytes(self._data[start : start + self.SECTOR_SIZE])

    def write_sector(self, index: int, data: bytes) -> None:
        self._check(index)
        if len(data) != self.SECTOR_SIZE:
            raise DiskError(
                f"write of {len(data)} bytes; sectors are {self.SECTOR_SIZE}"
            )
        self.writes += 1
        start = index * self.SECTOR_SIZE
        self._data[start : start + self.SECTOR_SIZE] = data

    def _check(self, index: int) -> None:
        if not 0 <= index < self.num_sectors:
            raise DiskError(f"sector {index} out of range")

    def snapshot(self) -> bytes:
        """The full disk image (for remount / power-cycle tests)."""
        return bytes(self._data)

    def restore(self, image: bytes) -> None:
        if len(image) != len(self._data):
            raise DiskError("image size mismatch")
        self._data = bytearray(image)
