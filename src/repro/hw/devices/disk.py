"""A block storage device.

Fixed-size sectors, whole-sector reads and writes, and an operation count
so benchmarks can report I/O.  `snapshot`/`restore` support the "power
cycle" tests of the filesystem (contents survive a remount).

The device is also the lowest fault-injection site of
:mod:`repro.faults`: given a ``fault_plan``, reads and writes consult it
and misbehave the way real media does — transient I/O errors
(``io-error``), bit flips on the bus (``corrupt``: the returned buffer is
damaged, the medium is not), torn writes (``torn``: only a prefix of the
sector reaches the platter before the error), and whole-device power loss
(``crash``: nothing of the current write lands and every later operation
fails until the harness restores an image into a fresh device).
"""

from __future__ import annotations


class DiskError(Exception):
    """Out-of-range sector or bad buffer size."""


class DiskIOError(DiskError):
    """A transient I/O failure; the operation may be retried."""


class DiskCrash(DiskError):
    """Power loss: the device is gone until remounted from its image."""


class Disk:
    """A simple sector-addressed disk."""

    SECTOR_SIZE = 4096

    def __init__(self, num_sectors: int, fault_plan=None) -> None:
        if num_sectors <= 0:
            raise ValueError("disk needs at least one sector")
        self.num_sectors = num_sectors
        self._data = bytearray(num_sectors * self.SECTOR_SIZE)
        self.reads = 0
        self.writes = 0
        self.fault_plan = fault_plan
        self.crashed = False
        self.torn_writes = 0
        self.io_errors = 0
        self.corrupt_reads = 0

    def read_sector(self, index: int) -> bytes:
        self._check_alive()
        self._check(index)
        self.reads += 1
        start = index * self.SECTOR_SIZE
        data = bytes(self._data[start : start + self.SECTOR_SIZE])
        decision = self._draw("disk.read")
        if decision is not None:
            if decision.kind == "io-error":
                self.io_errors += 1
                raise DiskIOError(f"transient read error at sector {index}")
            if decision.kind == "corrupt":
                # a flip on the bus: the returned buffer is damaged, the
                # medium is intact — the next read sees good data
                self.corrupt_reads += 1
                offset = decision.rand_below(self.SECTOR_SIZE)
                damaged = bytearray(data)
                damaged[offset] ^= 0xFF
                return bytes(damaged)
        return data

    def write_sector(self, index: int, data: bytes) -> None:
        self._check_alive()
        self._check(index)
        if len(data) != self.SECTOR_SIZE:
            raise DiskError(
                f"write of {len(data)} bytes; sectors are {self.SECTOR_SIZE}"
            )
        decision = self._draw("disk.write")
        if decision is not None:
            if decision.kind == "io-error":
                self.io_errors += 1
                raise DiskIOError(f"transient write error at sector {index}")
            if decision.kind == "torn":
                # a prefix lands, then the write fails: the sector now
                # holds new-head/old-tail until a retry rewrites it whole
                self.torn_writes += 1
                self.io_errors += 1
                keep = 1 + decision.rand_below(self.SECTOR_SIZE - 1)
                start = index * self.SECTOR_SIZE
                self._data[start : start + keep] = data[:keep]
                raise DiskIOError(
                    f"torn write at sector {index}: {keep} of "
                    f"{self.SECTOR_SIZE} bytes landed"
                )
            if decision.kind == "crash":
                # power loss at a write boundary: this write never lands
                self.crashed = True
                raise DiskCrash(f"power lost before write #{self.writes + 1}")
        self.writes += 1
        start = index * self.SECTOR_SIZE
        self._data[start : start + self.SECTOR_SIZE] = data

    def _draw(self, site: str):
        if self.fault_plan is None:
            return None
        return self.fault_plan.draw(site)

    def _check_alive(self) -> None:
        if self.crashed:
            raise DiskCrash("disk is offline after a crash")

    def _check(self, index: int) -> None:
        if not 0 <= index < self.num_sectors:
            raise DiskError(f"sector {index} out of range")

    def snapshot(self) -> bytes:
        """The full disk image (for remount / power-cycle tests).

        Available even after a crash — this is the platter content the
        recovery harness remounts from."""
        return bytes(self._data)

    def restore(self, image: bytes) -> None:
        if len(image) != len(self._data):
            raise DiskError("image size mismatch")
        self._data = bytearray(image)
        self.crashed = False
