"""A periodic timer device.

The kernel's scheduler tick and the network stack's retransmission timers
are driven from this device's tick counter."""

from __future__ import annotations


class Timer:
    """A tick counter with registerable callbacks."""

    def __init__(self) -> None:
        self.ticks = 0
        self._callbacks: list = []
        self.irq_line: object | None = None

    def on_tick(self, callback) -> None:
        self._callbacks.append(callback)

    def tick(self, count: int = 1) -> None:
        """Advance time; fires callbacks once per tick."""
        if count < 0:
            raise ValueError("cannot tick backwards")
        for _ in range(count):
            self.ticks += 1
            if self.irq_line is not None:
                self.irq_line.raise_irq()
            for callback in list(self._callbacks):
                callback(self.ticks)
