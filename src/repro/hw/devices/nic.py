"""A network interface with transmit/receive rings.

Frames are byte strings.  The NIC owns bounded rx/tx rings like real
hardware: a full rx ring *drops* frames (the driver must keep up), and the
tx ring is drained by the attached link.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class NicStats:
    tx_frames: int = 0
    rx_frames: int = 0
    rx_dropped_ring_full: int = 0


class Nic:
    """One network interface."""

    def __init__(self, mac: bytes, ring_size: int = 64) -> None:
        if len(mac) != 6:
            raise ValueError("MAC address must be 6 bytes")
        if ring_size <= 0:
            raise ValueError("ring size must be positive")
        self.mac = mac
        self.ring_size = ring_size
        self.tx_ring: deque[bytes] = deque()
        self.rx_ring: deque[bytes] = deque()
        self.stats = NicStats()
        self.irq_line: object | None = None  # set by the driver

    def transmit(self, frame: bytes) -> None:
        """Queue a frame for transmission (driver side)."""
        if not isinstance(frame, bytes):
            raise TypeError("frames are bytes")
        self.tx_ring.append(frame)
        self.stats.tx_frames += 1

    def deliver(self, frame: bytes) -> bool:
        """Push a frame into the rx ring (link side); False when dropped."""
        if len(self.rx_ring) >= self.ring_size:
            self.stats.rx_dropped_ring_full += 1
            return False
        self.rx_ring.append(frame)
        self.stats.rx_frames += 1
        if self.irq_line is not None:
            self.irq_line.raise_irq()
        return True

    def receive(self) -> bytes | None:
        """Pop the next received frame (driver side)."""
        if self.rx_ring:
            return self.rx_ring.popleft()
        return None

    def drain_tx(self) -> list[bytes]:
        """Take all queued outbound frames (link side)."""
        frames = list(self.tx_ring)
        self.tx_ring.clear()
        return frames
