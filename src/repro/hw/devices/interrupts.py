"""An interrupt controller (APIC-lite).

Devices raise IRQ lines; the kernel polls and acknowledges pending
interrupts at its scheduling boundaries (the cooperative equivalent of
interrupt delivery)."""

from __future__ import annotations


class IrqLine:
    """One interrupt line, owned by a device."""

    def __init__(self, controller: "InterruptController", irq: int) -> None:
        self._controller = controller
        self.irq = irq

    def raise_irq(self) -> None:
        self._controller._pend(self.irq)


class InterruptController:
    """Tracks pending and masked interrupt lines."""

    NUM_IRQS = 32

    def __init__(self) -> None:
        self._pending: set[int] = set()
        self._masked: set[int] = set()
        self.delivered = 0

    def line(self, irq: int) -> IrqLine:
        self._check(irq)
        return IrqLine(self, irq)

    def _pend(self, irq: int) -> None:
        self._check(irq)
        self._pending.add(irq)

    def mask(self, irq: int) -> None:
        self._check(irq)
        self._masked.add(irq)

    def unmask(self, irq: int) -> None:
        self._check(irq)
        self._masked.discard(irq)

    def pending(self) -> list[int]:
        """Deliverable (pending and unmasked) IRQs, lowest first."""
        return sorted(self._pending - self._masked)

    def acknowledge(self, irq: int) -> None:
        self._check(irq)
        if irq not in self._pending:
            raise ValueError(f"acknowledging non-pending irq {irq}")
        self._pending.discard(irq)
        self.delivered += 1

    def _check(self, irq: int) -> None:
        if not 0 <= irq < self.NUM_IRQS:
            raise ValueError(f"irq {irq} out of range")
