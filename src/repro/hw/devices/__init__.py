"""Simulated devices: NIC, disk, timer, serial console, interrupt
controller.  These are the "device drivers" row of the paper's component
list (Section 1) -- the kernel's drivers in :mod:`repro.nros.drivers` sit on
top of these device models."""

from repro.hw.devices.nic import Nic
from repro.hw.devices.disk import Disk
from repro.hw.devices.timer import Timer
from repro.hw.devices.serial import SerialPort
from repro.hw.devices.interrupts import InterruptController

__all__ = ["Nic", "Disk", "Timer", "SerialPort", "InterruptController"]
