"""A serial console: the kernel's log output device."""

from __future__ import annotations


class SerialPort:
    """Byte-oriented output with line assembly."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.lines: list[str] = []
        self.bytes_written = 0

    def write_byte(self, byte: int) -> None:
        if not 0 <= byte <= 0xFF:
            raise ValueError(f"not a byte: {byte}")
        self.bytes_written += 1
        if byte == 0x0A:  # newline flushes a line
            self.lines.append(self._buffer.decode("utf-8", errors="replace"))
            self._buffer.clear()
        else:
            self._buffer.append(byte)

    def write(self, text: str) -> None:
        for byte in text.encode("utf-8"):
            self.write_byte(byte)

    def flush(self) -> None:
        if self._buffer:
            self.lines.append(self._buffer.decode("utf-8", errors="replace"))
            self._buffer.clear()
