"""Translation lookaside buffer model.

The TLB caches completed walks.  Crucially for the refinement story, the TLB
makes *stale* translations observable: after the page table changes, the TLB
may keep returning the old translation until the kernel invalidates it.  The
unmap path must therefore perform a shootdown — the obligation checked by
the `tlb` group of verification conditions, and the cost that makes the
paper's unmap latency (Figure 1c) grow with core count.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.pt import defs
from repro.hw.mmu import Translation

# (page-base mask, size) per mappable size, checked smallest-first like
# the lookup the hardware performs.  Hoisted: these run on every lookup
# and every shootdown invalidation.
_BASE_MASKS = tuple(
    (~(int(size) - 1), size)
    for size in (defs.PageSize.SIZE_4K, defs.PageSize.SIZE_2M,
                 defs.PageSize.SIZE_1G)
)


class Tlb:
    """A per-core TLB with LRU replacement.

    Entries are keyed by the base virtual address of the mapped page; a
    lookup for any address within a cached page hits.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("TLB capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[int, Translation] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, vaddr: int) -> Translation | None:
        """Return the cached translation covering `vaddr`, if any."""
        entries = self._entries
        for mask, size in _BASE_MASKS:
            base = vaddr & mask
            entry = entries.get(base)
            if entry is not None and entry.page_size == size:
                entries.move_to_end(base)
                self.hits += 1
                return entry
        self.misses += 1
        return None

    def insert(self, translation: Translation) -> None:
        base = translation.page_base_vaddr
        self._entries[base] = translation
        self._entries.move_to_end(base)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate_page(self, vaddr: int) -> None:
        """`invlpg`: drop any cached translation covering `vaddr`."""
        entries = self._entries
        for mask, size in _BASE_MASKS:
            base = vaddr & mask
            entry = entries.get(base)
            if entry is not None and entry.page_size == size:
                del entries[base]

    def invalidate_pages(self, vaddrs) -> None:
        """One shootdown *round*: drop every listed page in a single
        IPI-acknowledge cycle.  The batched unmap path sends each core
        its invalidation set once per batch instead of once per page —
        the cost amortization behind ``unmap_batch``."""
        if not self._entries:
            return  # nothing cached: the round is an empty ack
        for vaddr in vaddrs:
            self.invalidate_page(vaddr)

    def flush(self) -> None:
        """Full flush (CR3 reload)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def cached_bases(self) -> list[int]:
        return list(self._entries.keys())
