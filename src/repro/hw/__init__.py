"""Simulated hardware substrate.

The paper's hardware spec "describes the intended runtime environment of the
implementation ... includes a description of how the MMU translates memory
addresses by interpreting the page table bits in memory".  This package is
that description, made executable:

* :mod:`repro.hw.mem` — byte-addressable physical memory
* :mod:`repro.hw.mmu` — the x86-64 four-level page walker
* :mod:`repro.hw.tlb` — translation lookaside buffer with invalidation
* :mod:`repro.hw.devices` — NIC, disk, timer, serial, interrupt controller
"""

from repro.hw.mem import PhysicalMemory
from repro.hw.mmu import Mmu, TranslationFault, AccessType
from repro.hw.tlb import Tlb

__all__ = ["PhysicalMemory", "Mmu", "TranslationFault", "AccessType", "Tlb"]
