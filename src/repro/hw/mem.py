"""Byte-addressable physical memory.

Backed by a bytearray.  Loads and stores of 64-bit words must be naturally
aligned, matching the alignment the hardware page walker requires of page
table entries.

Interference model (see :mod:`repro.verif.rgspec`): physical memory itself
carries no lock.  Its rely is *frame ownership* — a thread only touches
frames it owns, where ownership is handed out exclusively by the buddy
allocator (:mod:`repro.nros.pmem`) under ``pmem.alloc``.  That makes every
access here guarded ambiently: the allocator's mutual exclusion on the
frame map is what prevents two threads from racing on the same frame, so
the static rely-guarantee checker treats `PhysicalMemory` accesses as
covered by the `physmem` component's ownership guard rather than by a
lexical lock bracket.
"""

from __future__ import annotations

from repro import wordlib

PAGE_SIZE = 4096


class PhysAccessError(Exception):
    """Out-of-range or misaligned physical access."""


class PhysicalMemory:
    """A flat physical address space.

    The `frames` helper views memory as an array of 4 KiB frames, which is
    the granularity the frame allocator hands out.
    """

    def __init__(self, size: int) -> None:
        if size <= 0 or size % PAGE_SIZE:
            raise ValueError(f"memory size must be a positive multiple of {PAGE_SIZE}")
        self.size = size
        self._bytes = bytearray(size)

    @property
    def num_frames(self) -> int:
        return self.size // PAGE_SIZE

    def _check(self, paddr: int, length: int, alignment: int = 1) -> None:
        if paddr < 0 or paddr + length > self.size:
            raise PhysAccessError(
                f"access [{paddr:#x}, {paddr + length:#x}) outside memory of "
                f"size {self.size:#x}"
            )
        if alignment > 1 and paddr % alignment:
            raise PhysAccessError(f"misaligned access at {paddr:#x}")

    def load_u64(self, paddr: int) -> int:
        self._check(paddr, 8, alignment=8)
        return int.from_bytes(self._bytes[paddr : paddr + 8], "little")

    def store_u64(self, paddr: int, value: int) -> None:
        self._check(paddr, 8, alignment=8)
        self._bytes[paddr : paddr + 8] = wordlib.truncate(value, 64).to_bytes(
            8, "little"
        )

    def load_u8(self, paddr: int) -> int:
        self._check(paddr, 1)
        return self._bytes[paddr]

    def store_u8(self, paddr: int, value: int) -> None:
        self._check(paddr, 1)
        self._bytes[paddr] = value & 0xFF

    def read(self, paddr: int, length: int) -> bytes:
        self._check(paddr, length)
        return bytes(self._bytes[paddr : paddr + length])

    def write(self, paddr: int, data: bytes) -> None:
        self._check(paddr, len(data))
        self._bytes[paddr : paddr + len(data)] = data

    def zero_frame(self, frame_paddr: int) -> None:
        """Clear one 4 KiB frame (used when allocating page-table nodes)."""
        self._check(frame_paddr, PAGE_SIZE, alignment=PAGE_SIZE)
        self._bytes[frame_paddr : frame_paddr + PAGE_SIZE] = bytes(PAGE_SIZE)

    def is_zero_range(self, paddr: int, length: int) -> bool:
        """True when every byte in [paddr, paddr+length) is zero (used by
        the page-table GC to test table emptiness cheaply)."""
        self._check(paddr, length)
        return self._bytes[paddr : paddr + length].count(0) == length

    def frame_words(self, frame_paddr: int) -> list[int]:
        """The 512 u64 entries stored in one frame (a page-table node)."""
        self._check(frame_paddr, PAGE_SIZE, alignment=PAGE_SIZE)
        return [
            self.load_u64(frame_paddr + i * 8) for i in range(PAGE_SIZE // 8)
        ]
