"""The hardware page walker — the executable hardware specification.

This module is intentionally written *independently* of the page-table
implementation in :mod:`repro.core.pt.impl`: it interprets whatever bits are
in physical memory exactly the way an x86-64 MMU would (modulo the modelling
simplifications listed in DESIGN.md).  The refinement proof then shows that
the implementation maintains bits whose interpretation matches the abstract
map.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import wordlib
from repro.core.pt import defs
from repro.hw.mem import PhysicalMemory


class AccessType(enum.Enum):
    READ = "read"
    WRITE = "write"
    EXECUTE = "execute"


class TranslationFault(Exception):
    """A page fault: translation failed or permissions were violated."""

    def __init__(self, vaddr: int, reason: str) -> None:
        super().__init__(f"page fault at {vaddr:#x}: {reason}")
        self.vaddr = vaddr
        self.reason = reason


@dataclass(frozen=True)
class Translation:
    """The result of a successful walk."""

    paddr: int
    page_base_vaddr: int
    page_size: defs.PageSize
    flags: defs.Flags

    @property
    def frame_paddr(self) -> int:
        return wordlib.align_down(self.paddr, int(self.page_size))


class Mmu:
    """Walks page tables in physical memory.

    `user_mode` access checks follow the architecture: user accesses require
    the user bit, writes require the writable bit, instruction fetches
    require the entry to be executable (NX clear).
    """

    def __init__(self, memory: PhysicalMemory) -> None:
        self.memory = memory
        self.walks = 0  # counted so the TLB ablation can report walk savings

    def walk(self, root_paddr: int, vaddr: int) -> Translation:
        """Translate `vaddr` using the tree rooted at `root_paddr`,
        without permission checks (those depend on the access)."""
        if not defs.is_canonical(vaddr):
            raise TranslationFault(vaddr, "non-canonical address")
        self.walks += 1
        table = root_paddr
        for level in range(defs.NUM_LEVELS):
            index = defs.vaddr_index(vaddr, level)
            raw = self.memory.load_u64(table + index * defs.ENTRY_SIZE)
            if not wordlib.bit(raw, defs.BIT_PRESENT):
                raise TranslationFault(vaddr, f"not present at {defs.LEVEL_NAMES[level]}")
            maps_page = level == 3 or (
                level in (1, 2) and wordlib.bit(raw, defs.BIT_HUGE)
            )
            if maps_page:
                size = defs.PageSize.for_level(level)
                base = wordlib.align_down(raw & defs.ADDR_MASK, int(size))
                flags = defs.Flags(
                    writable=bool(wordlib.bit(raw, defs.BIT_WRITABLE)),
                    user=bool(wordlib.bit(raw, defs.BIT_USER)),
                    executable=not wordlib.bit(raw, defs.BIT_NX),
                    write_through=bool(wordlib.bit(raw, defs.BIT_WRITE_THROUGH)),
                    cache_disable=bool(wordlib.bit(raw, defs.BIT_CACHE_DISABLE)),
                    global_=bool(wordlib.bit(raw, defs.BIT_GLOBAL)),
                )
                return Translation(
                    paddr=base + defs.vaddr_offset(vaddr, size),
                    page_base_vaddr=defs.vaddr_base(vaddr, size),
                    page_size=size,
                    flags=flags,
                )
            table = raw & defs.ADDR_MASK
        raise AssertionError("unreachable: PT level always maps or faults")

    def translate(
        self,
        root_paddr: int,
        vaddr: int,
        access: AccessType = AccessType.READ,
        user_mode: bool = False,
    ) -> Translation:
        """Walk and enforce permissions for the given access."""
        translation = self.walk(root_paddr, vaddr)
        flags = translation.flags
        if user_mode and not flags.user:
            raise TranslationFault(vaddr, "supervisor page accessed from user")
        if access is AccessType.WRITE and not flags.writable:
            raise TranslationFault(vaddr, "write to read-only page")
        if access is AccessType.EXECUTE and not flags.executable:
            raise TranslationFault(vaddr, "execute of NX page")
        return translation

    # -- convenience accessors used by the kernel's usercopy path ------------

    def load_u64(
        self, root_paddr: int, vaddr: int, user_mode: bool = False
    ) -> int:
        t = self.translate(root_paddr, vaddr, AccessType.READ, user_mode)
        return self.memory.load_u64(t.paddr)

    def store_u64(
        self, root_paddr: int, vaddr: int, value: int, user_mode: bool = False
    ) -> None:
        t = self.translate(root_paddr, vaddr, AccessType.WRITE, user_mode)
        self.memory.store_u64(t.paddr, value)
