"""Shared helpers for the benchmark harness.

Every benchmark prints the rows/series the paper reports (via
`report_lines`, which bypasses pytest's capture so the numbers are visible
in a normal `pytest benchmarks/ --benchmark-only` run) and attaches the
same numbers to `benchmark.extra_info` for machine consumption.
"""

from __future__ import annotations

import json
import os
import time

#: Version of the BENCH_*.json layout; bump on incompatible change so the
#: CI validator (`benchmarks/check_bench_json.py`) can reject stale files.
BENCH_SCHEMA_VERSION = 1


def write_bench_json(name: str, payload: dict, out_dir: str | None = None) -> str:
    """Write the machine-readable result file ``BENCH_<name>.json``.

    Every figure benchmark emits one of these next to the working directory
    (override with `out_dir` or ``$REPRO_BENCH_DIR``) so CI and the
    experiment log can consume the same numbers the console report prints.
    Returns the path written."""
    out_dir = out_dir or os.environ.get("REPRO_BENCH_DIR") or os.getcwd()
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    document = {"schema_version": BENCH_SCHEMA_VERSION, "bench": name}
    document.update(payload)
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def report_lines(capsys, title: str, lines) -> None:
    """Print a block of result rows, bypassing pytest capture."""
    with capsys.disabled():
        print()
        print(f"=== {title} ===")
        for line in lines:
            print(line)


def calibrate_impl_cost(ops: int = 400, trials: int = 5) -> dict:
    """Measure the real Python cost of one map operation on the verified
    and the unverified page-table implementations.

    Trials are interleaved and the minimum per implementation is taken
    (the standard microbenchmark discipline: the minimum is the least
    noisy estimator of intrinsic cost).  The latency figures scale the
    simulated apply cost by the measured ratio, so 'verified vs
    unverified' reflects the actual relative cost of the two code bases."""
    from repro.core.pt.defs import Flags, PageSize
    from repro.core.pt.impl import PageTable, SimpleFrameAllocator
    from repro.hw.mem import PhysicalMemory
    from repro.nros.pt_unverified import UnverifiedPageTable

    MB = 1024 * 1024

    def run(factory):
        memory = PhysicalMemory(16 * MB)
        allocator = SimpleFrameAllocator(memory, start=8 * MB)
        pt = factory(memory, allocator)
        start = time.perf_counter()
        for i in range(ops):
            pt.map_frame(0x10_0000 + i * 0x1000, 0x10_0000 + i * 0x1000,
                         PageSize.SIZE_4K, Flags.user_rw())
        return (time.perf_counter() - start) / ops

    verified = min(run(PageTable) for _ in range(trials))
    unverified = min(run(UnverifiedPageTable) for _ in range(trials))
    return {
        "verified_s_per_op": verified,
        "unverified_s_per_op": unverified,
        "ratio": verified / unverified if unverified else 1.0,
    }


CORE_COUNTS = (1, 8, 16, 24, 28)

# Base simulated cost (ns) of applying one page-table operation on a
# replica; the verified variant scales this by the measured code ratio.
BASE_APPLY_NS = 2000
BASE_QUERY_NS = 400
OPS_PER_CORE = 24
