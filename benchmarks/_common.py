"""Shared helpers for the benchmark harness.

Every benchmark prints the rows/series the paper reports (via
`report_lines`, which bypasses pytest's capture so the numbers are visible
in a normal `pytest benchmarks/ --benchmark-only` run) and attaches the
same numbers to `benchmark.extra_info` for machine consumption.
"""

from __future__ import annotations

import json
import os
import time

#: Version of the BENCH_*.json layout; bump on incompatible change so the
#: CI validator (`benchmarks/check_bench_json.py`) can reject stale files.
BENCH_SCHEMA_VERSION = 1


def write_bench_json(name: str, payload: dict, out_dir: str | None = None) -> str:
    """Write the machine-readable result file ``BENCH_<name>.json``.

    Every figure benchmark emits one of these next to the working directory
    (override with `out_dir` or ``$REPRO_BENCH_DIR``) so CI and the
    experiment log can consume the same numbers the console report prints.
    Returns the path written."""
    out_dir = out_dir or os.environ.get("REPRO_BENCH_DIR") or os.getcwd()
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    document = {"schema_version": BENCH_SCHEMA_VERSION, "bench": name}
    document.update(payload)
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def report_lines(capsys, title: str, lines) -> None:
    """Print a block of result rows, bypassing pytest capture."""
    with capsys.disabled():
        print()
        print(f"=== {title} ===")
        for line in lines:
            print(line)


def calibrate_impl_cost(ops: int = 400, trials: int = 5) -> dict:
    """Measure the real Python cost of one map operation on the verified
    and the unverified page-table implementations.

    Trials are interleaved and the minimum per implementation is taken
    (the standard microbenchmark discipline: the minimum is the least
    noisy estimator of intrinsic cost).  The latency figures scale the
    simulated apply cost by the measured ratio, so 'verified vs
    unverified' reflects the actual relative cost of the two code bases."""
    from repro.core.pt.defs import Flags, PageSize
    from repro.core.pt.impl import PageTable, SimpleFrameAllocator
    from repro.hw.mem import PhysicalMemory
    from repro.nros.pt_unverified import UnverifiedPageTable

    MB = 1024 * 1024

    def run(factory):
        memory = PhysicalMemory(16 * MB)
        allocator = SimpleFrameAllocator(memory, start=8 * MB)
        pt = factory(memory, allocator)
        start = time.perf_counter()
        for i in range(ops):
            pt.map_frame(0x10_0000 + i * 0x1000, 0x10_0000 + i * 0x1000,
                         PageSize.SIZE_4K, Flags.user_rw())
        return (time.perf_counter() - start) / ops

    verified = min(run(PageTable) for _ in range(trials))
    unverified = min(run(UnverifiedPageTable) for _ in range(trials))
    return {
        "verified_s_per_op": verified,
        "unverified_s_per_op": unverified,
        "ratio": verified / unverified if unverified else 1.0,
    }


def vspace_obs_probe(pages: int = 64, batch: int = 16) -> dict:
    """Drive a short batched map/unmap workload on the *real* VSpace and
    return the deltas the process-wide ``repro.obs`` instruments record.

    Figures 1b/1c price map/unmap on the timed NR model; this probe runs
    the same operation shapes through ``repro.nros.vspace`` so each
    figure's JSON also carries the observable side the model abstracts:
    shootdown rounds and pages, the mapped-page gauge, and the batch-size
    histogram.  The deltas double as a consistency check — one shootdown
    round per unmap batch, shot pages equal to pages unmapped, and the
    gauge back at its starting level once everything is unmapped.
    """
    from repro import obs
    from repro.core.pt.defs import Flags, PageSize
    from repro.hw.mem import PhysicalMemory
    from repro.nros.pmem import BuddyAllocator
    from repro.nros.vspace import VSpace

    if pages % batch:
        raise ValueError("pages must be a multiple of batch")
    MB = 1024 * 1024
    rounds = obs.counter("vspace.shootdown_rounds")
    shot = obs.counter("vspace.shootdown_pages")
    mapped = obs.gauge("vspace.mapped_pages")
    batch_hist = obs.histogram("vspace.batch_pages")
    before = (rounds.value, shot.value, mapped.value, batch_hist.count)

    memory = PhysicalMemory(16 * MB)
    allocator = BuddyAllocator(memory, start=8 * MB)
    vspace = VSpace(memory, allocator, num_nodes=2)
    for core in range(4):
        vspace.attach_core(core, core % 2)
    flags = Flags.user_rw()
    for index in range(pages // batch):
        base = 0x40_0000 + index * batch * 0x1000
        entries = [(base + i * 0x1000, 0x10_0000 + i * 0x1000,
                    PageSize.SIZE_4K, flags) for i in range(batch)]
        vspace.map_batch(entries, core=index % 4)
        vspace.unmap_batch([vaddr for vaddr, _, _, _ in entries],
                           core=index % 4)

    probe = {
        "pages": pages,
        "batch": batch,
        "shootdown_rounds": rounds.value - before[0],
        "shootdown_pages": shot.value - before[1],
        "mapped_pages_gauge_delta": mapped.value - before[2],
        "batch_pages_recorded": batch_hist.count - before[3],
        "batch_pages_p50": batch_hist.percentile(50),
    }
    assert probe["shootdown_rounds"] == pages // batch
    assert probe["shootdown_pages"] == pages
    assert probe["mapped_pages_gauge_delta"] == 0
    # one batch_pages sample per map_batch plus one per unmap_batch
    assert probe["batch_pages_recorded"] == 2 * (pages // batch)
    assert vspace.shootdowns == probe["shootdown_rounds"]
    return probe


CORE_COUNTS = (1, 8, 16, 24, 28)

# Base simulated cost (ns) of applying one page-table operation on a
# replica; the verified variant scales this by the measured code ratio.
BASE_APPLY_NS = 2000
BASE_QUERY_NS = 400
OPS_PER_CORE = 24
