"""Table 2: verified OS components per project.

Regenerates the matrix and checks the gap the paper's argument stands on:
no prior project covers the filesystem+network+libraries surface a client
application needs — and that this repository provides every row (checked
against the actual modules, not just the table data)."""

import importlib

from benchmarks._common import report_lines
from repro.related.projects import PROJECTS, TABLE2_ROWS
from repro.related.tables import project_by_name, table2


def test_table2(benchmark, capsys):
    lines = benchmark(table2)
    report_lines(capsys, "Table 2 — verified OS components", lines)

    assert len(lines) == 2 + len(TABLE2_ROWS)
    for project in PROJECTS:
        assert project.components["Network stack"] == "no"
        assert project.components["System libraries"] == "no"
        assert project.components["Scheduler"] == "yes"
        assert project.components["Memory management"] == "yes"

    # this repository's column is backed by real modules with real tests
    this = project_by_name("this repro")
    module_for = {
        "Scheduler": "repro.nros.sched.scheduler",
        "Memory management": "repro.nros.pmem",
        "Filesystem": "repro.nros.fs.fs",
        "Complex drivers": "repro.nros.drivers.block",
        "Process management": "repro.nros.proc.process",
        "Threads and synchronization": "repro.ulib.sync",
        "Network stack": "repro.nros.net.stack",
        "System libraries": "repro.ulib.alloc",
    }
    for component in TABLE2_ROWS:
        assert this.components[component] == "yes"
        importlib.import_module(module_for[component])
