"""Scheduler: core scaling under the mixed interactive+batch+RT load.

The workload harness runs the multi-class scheduler under simulated
time at 1/2/4/8 cores: always-runnable batch threads across nice
levels, interactive threads doing short bursts between seeded sleeps,
and periodic FIFO real-time tasks.  Throughput must scale monotonically
from 1 to 4 cores (the batch pool saturates every added core),
interactive wake-to-run p99 must drop as cores are added, and the
one-core fairness run must track the nice-weight ideal within 5%.

Everything is simulated time under a seed, so the emitted numbers are
deterministic and CI compares them against the committed
``benchmarks/baseline_sched.json``.
"""

import pytest

from benchmarks._common import report_lines, write_bench_json
from repro.nros.sched.workload import SCALE_CORE_COUNTS, scaling_bench


def _format_series(payload):
    profile = payload["profile"]
    lines = [
        f"  {profile['ticks']} ticks, {profile['batch']} batch + "
        f"{profile['interactive']} interactive + {profile['rt']} rt "
        f"threads (rt prio {profile['rt_prio']}, period "
        f"{profile['rt_period']})",
        "",
        "  cores   quanta   tput [q/s]   inter p50/p99 [ns]   "
        "migrations  steals",
    ]
    for count in SCALE_CORE_COUNTS:
        entry = payload["series"][str(count)]
        lines.append(
            f"  {entry['cores']:5d}  {entry['quanta']:7d}"
            f"  {entry['throughput_qps']:11,.0f}"
            f"   {entry['interactive']['p50_ns']:8,.0f}/"
            f"{entry['interactive']['p99_ns']:<10,.0f}"
            f" {entry['migrations']:10d}  {entry['steals']:6d}")
    fairness = payload["fairness"]
    lines += ["", "  fairness (1 core, nice -5/0/+5): "
                  f"max relative error {fairness['max_rel_error']:.4f}"]
    for nice, share in sorted(fairness["shares"].items(),
                              key=lambda kv: int(kv[0])):
        lines.append(f"    nice {int(nice):+d}: achieved "
                     f"{share['achieved']:.4f} vs ideal "
                     f"{share['ideal']:.4f}")
    return lines


@pytest.mark.benchmark(group="sched")
def test_sched_core_scaling(benchmark, capsys):
    payload = benchmark.pedantic(scaling_bench, rounds=1, iterations=1)

    for count in SCALE_CORE_COUNTS:
        entry = payload["series"][str(count)]
        assert entry["quanta"] > 0
        benchmark.extra_info[f"tput_{count}"] = round(
            entry["throughput_qps"])
        benchmark.extra_info[f"inter_p99_ns_{count}"] = \
            entry["interactive"]["p99_ns"]

    # the scaling story: every added core up to 4 runs more batch work
    # in the same simulated time
    series = payload["series"]
    assert series["2"]["throughput_qps"] >= series["1"]["throughput_qps"]
    assert series["4"]["throughput_qps"] >= series["2"]["throughput_qps"]

    # interactive latency: more cores means a woken thread waits less
    assert series["4"]["interactive"]["p99_ns"] <= \
        series["1"]["interactive"]["p99_ns"]

    # cross-core balancing actually happened once there were cores to
    # balance across
    assert series["2"]["migrations"] + series["2"]["steals"] > 0

    # weighted fairness within 5% of the nice-weight ideal
    fairness = payload["fairness"]
    assert fairness["max_rel_error"] <= 0.05
    benchmark.extra_info["fairness_error"] = fairness["max_rel_error"]

    path = write_bench_json("sched", payload)
    report_lines(capsys, "Scheduler: core scaling, mixed workload",
                 _format_series(payload) + ["", f"  wrote {path}"])
