"""Ablation: sharding kernel state over multiple NR instances.

Section 4.1: "To scale writes further, NrOS shards kernel state into
multiple NR instances and replicates them over independent logs, allowing
for scalability to many cores."  This ablation sweeps the shard count for
a write-only workload over independent key groups and reports throughput —
the mechanism that lifts the write ceiling a single log imposes.
"""

import pytest

from benchmarks._common import BASE_APPLY_NS, report_lines
from repro.nr.datastructures import KvStore
from repro.nr.timed import TimedNrConfig, run_timed_sharded

SHARD_COUNTS = (1, 2, 4, 8)
CORES = 16
OPS = 16


def make_workload():
    def workload(core, i):
        key = core % 8  # eight independent key groups
        return (key, ("put", key, i), False)

    return workload


def test_ablation_sharding(benchmark, capsys):
    def run_all():
        results = {}
        for shards in SHARD_COUNTS:
            cfg = TimedNrConfig(num_cores=CORES, ops_per_core=OPS,
                                apply_cost_ns=BASE_APPLY_NS)
            results[shards] = run_timed_sharded(
                KvStore, make_workload(), cfg, num_shards=shards
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [f"  {CORES} cores, write-only workload over 8 key groups",
             "",
             "  shards   throughput [ops/ms]   mean latency [us]"]
    for shards in SHARD_COUNTS:
        r = results[shards]
        lines.append(
            f"  {shards:6d}   {r.throughput_ops_per_ms:19.1f}   "
            f"{r.latency.mean_us:17.2f}"
        )
        benchmark.extra_info[f"tput_{shards}"] = round(
            r.throughput_ops_per_ms, 1)
    lines += [
        "",
        "  expected: throughput rises with shard count (independent logs "
        "stop writes from serializing)",
    ]
    report_lines(capsys, "Ablation — sharding NR instances", lines)

    tputs = [results[s].throughput_ops_per_ms for s in SHARD_COUNTS]
    assert tputs[-1] > tputs[0] * 1.5  # sharding buys real write scaling
    # per-op latency also falls as contention spreads across logs
    assert (results[8].latency.mean_us < results[1].latency.mean_us)
