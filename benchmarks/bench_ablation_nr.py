"""Ablation: node replication vs a single global lock.

Section 4.1's design claim: NR gives good multi-core performance where
lock-based designs "suffer from degraded performance due to lock
contention".  Two workloads on the simulated NUMA machine:

* *write-only* (every op is a map): total apply work is inherently serial
  per replica, so both designs saturate; NR's advantage is locality — the
  combiner applies batches against its local replica, while the global
  lock drags the shared structure's cache lines across the machine on
  every operation.
* *read-heavy* (90% resolve): NR reads run concurrently against local
  replicas under the readers-writer lock; the global lock serialises
  everything.  This is where replication pays.
"""

import pytest

from benchmarks._common import BASE_APPLY_NS, BASE_QUERY_NS, report_lines
from repro.nr.datastructures import VSpaceModel
from repro.nr.timed import TimedNrConfig, run_timed_workload
from repro.sim.kernel import Acquire, Delay, Release, Simulator
from repro.sim.resources import CacheLine, SimLock
from repro.sim.stats import LatencyRecorder
from repro.sim.topology import Topology

CORES = (1, 8, 16, 28)
OPS = 24
# cache lines of the shared structure touched per operation under the
# global-lock design (tree walk + entry write)
STRUCT_LINES = 5


def write_workload(core, i):
    return (("map", (core << 28) | ((i + 1) << 12), i), False)


def mixed_workload(core, i):
    if i % 10 == 0:
        return (("map", (core << 28) | ((i + 1) << 12), i), False)
    return (("resolve", (core << 28) | (i << 12)), True)


def run_global_lock(num_cores: int, workload):
    """One lock, one shared structure whose lines bounce between cores."""
    topology = Topology(num_cores)
    sim = Simulator()
    lock = SimLock("global")
    lock_line = CacheLine(topology)
    struct_lines = [CacheLine(topology) for _ in range(STRUCT_LINES)]
    latency = LatencyRecorder()

    def core_proc(core):
        for i in range(OPS):
            op, is_read = workload(core, i)
            start = sim.now
            yield Delay(topology.costs.syscall_entry)
            yield Delay(lock_line.atomic_rmw(core))
            yield Acquire(lock)
            for line in struct_lines:
                yield Delay(line.write(core) if not is_read
                            else line.read(core))
            yield Delay(BASE_QUERY_NS if is_read else BASE_APPLY_NS)
            yield Release(lock)
            yield Delay(topology.costs.syscall_exit)
            latency.record(sim.now - start)
            yield Delay(250)

    for core in range(num_cores):
        sim.spawn(core_proc(core))
    sim.run()
    return latency, sim.now


def run_nr(num_cores: int, workload):
    cfg = TimedNrConfig(num_cores=num_cores, ops_per_core=OPS,
                        apply_cost_ns=BASE_APPLY_NS,
                        query_cost_ns=BASE_QUERY_NS)
    result = run_timed_workload(VSpaceModel, workload, cfg)
    return result.latency, result.sim_ns


def _tput(latency, sim_ns):
    return len(latency.samples) / (sim_ns / 1e6) if sim_ns else 0.0


@pytest.mark.parametrize("name,workload", [
    ("write-only", write_workload),
    ("read-heavy", mixed_workload),
])
def test_ablation_nr_vs_global_lock(benchmark, capsys, name, workload):
    def run_all():
        rows = []
        for cores in CORES:
            nr = _tput(*run_nr(cores, workload))
            lock = _tput(*run_global_lock(cores, workload))
            rows.append((cores, nr, lock))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["  cores   nr [ops/ms]   global-lock [ops/ms]   speedup"]
    for cores, nr, lock in rows:
        lines.append(f"  {cores:5d}   {nr:11.1f}   {lock:20.1f}   "
                     f"{nr / lock:6.2f}x")
        benchmark.extra_info[f"nr_{cores}"] = round(nr, 1)
        benchmark.extra_info[f"lock_{cores}"] = round(lock, 1)
    report_lines(capsys, f"Ablation — NR vs global lock ({name})", lines)

    # the design claim: at 28 cores NR beats the global lock, and the
    # advantage is larger for the read-heavy mix
    nr_28 = rows[-1][1]
    lock_28 = rows[-1][2]
    assert nr_28 > lock_28


def test_ablation_read_scaling(benchmark, capsys):
    """Reads through NR keep scaling with cores (the readers-writer lock
    admits concurrent readers on each replica)."""

    def read_workload(core, i):
        return (("resolve", (core << 28) | (i << 12)), True)

    def run_all():
        return {
            cores: _tput(*run_nr(cores, read_workload)) for cores in CORES
        }

    tputs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [f"  {cores:5d} cores: {tput:10.1f} ops/ms"
             for cores, tput in tputs.items()]
    report_lines(capsys, "Ablation — NR read throughput scaling", lines)
    assert tputs[28] > tputs[1] * 4  # reads scale with cores
