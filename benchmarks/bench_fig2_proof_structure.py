"""Figure 2: the proof structure of the page-table prototype.

Renders the layer diagram from the registered proof and checks that every
VC group named in the diagram actually exists in the assembled proof."""

from benchmarks._common import report_lines
from repro.core.refine.proof import build_proof, proof_structure


def test_fig2_structure(benchmark, capsys):
    lines = benchmark(proof_structure)
    report_lines(capsys, "Figure 2 — proof structure", lines)

    text = "\n".join(lines)
    engine = build_proof(scenario_cap=3)
    group_names = {g.name for g in engine.groups}
    # every VC group of the assembled proof is named in the diagram
    for group in group_names:
        assert group in text, group
    # the three boxes of the figure
    assert "High-level specification" in text
    assert "Page-table implementation" in text
    assert "Hardware specification" in text
