"""Figure 1a: CDF of the verification times of all 220 verification
conditions, plus the total verification time and the slowest VC
(Section 5's "approximately 40 seconds" / "at most 11 seconds").

The population is discharged through the :mod:`repro.prover` scheduler
into a benchmark-local proof cache, so this module also measures the
proof-engineering loop the paper argues for: the cold run pays the full
Figure 1a cost, the warm re-verification run is served almost entirely
from the cache.
"""

import os

import pytest

from benchmarks._common import report_lines, write_bench_json
from repro.core.refine.proof import build_proof
from repro.obs import Histogram
from repro.prover import ProofCache, prove_all

THRESHOLDS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 11.0)

#: CI's perf-smoke job sets this to run the same benchmark over a reduced
#: VC population (small scenario caps): same SMT lemma set — so the
#: deterministic solver counters match the committed baseline — but far
#: fewer structural enumeration VCs.
QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"


def _build_population():
    if QUICK:
        return build_proof(scenario_depth=2, scenario_cap=12)
    engine = build_proof()
    assert engine.vc_count == 220
    return engine


@pytest.fixture(scope="module")
def proof_cache(tmp_path_factory):
    return ProofCache(str(tmp_path_factory.mktemp("proof-cache")))


@pytest.fixture(scope="module")
def proof_report(proof_cache):
    return prove_all(_build_population(), cache=proof_cache)


def test_fig1a_vc_time_cdf(benchmark, proof_report, capsys):
    """Regenerates Figure 1a's series: cumulative fraction of VCs verified
    within t seconds.  The population is one :class:`repro.obs.Histogram`
    (the same type behind Figures 1b and 1c), so the CDF, the percentiles,
    and the fraction-within thresholds all come from a single sample set."""
    report = proof_report
    population = report.histogram()

    def summarize():
        return [population.fraction_within(t) for t in THRESHOLDS]

    fractions = benchmark(summarize)

    assert isinstance(population, Histogram)
    assert len(population) == report.total
    # the report's own accessors are thin views over the same histogram
    assert report.cdf(points=20) == population.cdf(points=20)
    assert report.fraction_within(1.0) == population.fraction_within(1.0)

    lines = ["  t [s]   cumulative fraction"]
    for threshold, fraction in zip(THRESHOLDS, fractions):
        lines.append(f"  {threshold:5.2f}   {fraction:6.3f}")
    lines += [
        "",
        f"  verification conditions: {report.total} (paper: 220)",
        f"  proved: {report.proved}/{report.total}",
        f"  total verification time: {report.total_seconds:.1f} s "
        f"(paper: ~40 s)",
        f"  wall-clock: {report.wall_seconds:.1f} s "
        f"(cumulative solver: {report.solver_seconds:.1f} s)",
        f"  slowest VC: {report.max_seconds:.2f} s (paper: <= 11 s)",
        f"  p50 / p99 VC time: {population.percentile(50):.3f} s / "
        f"{population.percentile(99):.3f} s",
    ]
    by_category = sorted(
        (sum(r.seconds for r in results), name, len(results))
        for name, results in report.by_category().items()
    )
    lines.append("  time by proof layer:")
    for seconds, name, count in reversed(by_category):
        lines.append(f"    {name:20s} {count:4d} VCs  {seconds:7.2f} s")
    report_lines(capsys, "Figure 1a — verification-time CDF", lines)

    benchmark.extra_info["total_vcs"] = report.total
    benchmark.extra_info["total_seconds"] = round(report.total_seconds, 2)
    benchmark.extra_info["wall_seconds"] = round(report.wall_seconds, 2)
    benchmark.extra_info["solver_seconds"] = round(report.solver_seconds, 2)
    benchmark.extra_info["max_seconds"] = round(report.max_seconds, 2)
    assert report.all_proved, [r.name for r in report.failed]


def test_fig1a_warm_cache_reverification(benchmark, proof_report,
                                         proof_cache, capsys):
    """The proof-engineering loop: re-verifying an unchanged system against
    the populated cache — every definitive verdict is a cache hit and the
    220-VC run collapses from minutes to seconds."""
    cold = proof_report  # ensures the cache is populated first

    def reverify():
        return prove_all(_build_population(), cache=proof_cache)

    warm = benchmark.pedantic(reverify, rounds=1, iterations=1,
                              warmup_rounds=0)

    hit_rate = warm.cache_hits / warm.total
    lines = [
        f"  cold run:  {cold.wall_seconds:7.2f} s wall "
        f"({cold.cache_hits}/{cold.total} cache hits)",
        f"  warm run:  {warm.wall_seconds:7.2f} s wall "
        f"({warm.cache_hits}/{warm.total} cache hits, "
        f"{hit_rate:.0%} hit rate)",
        f"  speedup:   {cold.wall_seconds / max(warm.wall_seconds, 1e-9):.0f}x",
    ]
    report_lines(capsys, "Warm-cache re-verification", lines)

    benchmark.extra_info["cold_wall_seconds"] = round(cold.wall_seconds, 2)
    benchmark.extra_info["warm_wall_seconds"] = round(warm.wall_seconds, 2)
    benchmark.extra_info["cache_hit_rate"] = round(hit_rate, 3)

    def timing_block(report):
        population = report.histogram()
        return {
            "p50_seconds": round(population.percentile(50), 4),
            "p99_seconds": round(population.percentile(99), 4),
            "total_seconds": round(report.total_seconds, 3),
            "wall_seconds": round(report.wall_seconds, 3),
        }

    write_bench_json("fig1a", {
        "quick": QUICK,
        "total_vcs": cold.total,
        "cold": timing_block(cold),
        "warm": timing_block(warm),
        "cache_hit_rate": round(hit_rate, 3),
        "solver_counters": cold.solver_counters(),
    })
    assert warm.all_proved
    assert warm.total == cold.total
    assert hit_rate >= 0.9, f"warm-cache hit rate {hit_rate:.0%} < 90%"
    # Determinism: the warm report is bit-identical to the cold one.
    assert [r.key() for r in warm.results] == \
        [r.key() for r in cold.results]


def test_fig1a_single_vc_discharge(benchmark):
    """Micro-benchmark: discharging one representative SMT lemma (the
    per-VC cost the CDF is made of)."""
    from repro.core.refine.lemmas import address_lemmas

    lemma = next(vc for vc in address_lemmas()
                 if vc.name == "addr_no_carry_into_frame_SIZE_4K")
    result = benchmark(lemma.discharge)
    assert result.ok
