"""Figure 1a: CDF of the verification times of all 220 verification
conditions, plus the total verification time and the slowest VC
(Section 5's "approximately 40 seconds" / "at most 11 seconds").
"""

import pytest

from benchmarks._common import report_lines
from repro.core.refine.proof import build_proof

THRESHOLDS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 11.0)


@pytest.fixture(scope="module")
def proof_report():
    engine = build_proof()
    assert engine.vc_count == 220
    return engine.run()


def test_fig1a_vc_time_cdf(benchmark, proof_report, capsys):
    """Regenerates Figure 1a's series: cumulative fraction of VCs verified
    within t seconds."""
    report = proof_report

    def summarize():
        return [report.fraction_within(t) for t in THRESHOLDS]

    fractions = benchmark(summarize)

    lines = ["  t [s]   cumulative fraction"]
    for threshold, fraction in zip(THRESHOLDS, fractions):
        lines.append(f"  {threshold:5.2f}   {fraction:6.3f}")
    lines += [
        "",
        f"  verification conditions: {report.total} (paper: 220)",
        f"  proved: {report.proved}/{report.total}",
        f"  total verification time: {report.total_seconds:.1f} s "
        f"(paper: ~40 s)",
        f"  slowest VC: {report.max_seconds:.2f} s (paper: <= 11 s)",
    ]
    by_category = sorted(
        (sum(r.seconds for r in results), name, len(results))
        for name, results in report.by_category().items()
    )
    lines.append("  time by proof layer:")
    for seconds, name, count in reversed(by_category):
        lines.append(f"    {name:20s} {count:4d} VCs  {seconds:7.2f} s")
    report_lines(capsys, "Figure 1a — verification-time CDF", lines)

    benchmark.extra_info["total_vcs"] = report.total
    benchmark.extra_info["total_seconds"] = round(report.total_seconds, 2)
    benchmark.extra_info["max_seconds"] = round(report.max_seconds, 2)
    assert report.all_proved, [r.name for r in report.failed]


def test_fig1a_single_vc_discharge(benchmark):
    """Micro-benchmark: discharging one representative SMT lemma (the
    per-VC cost the CDF is made of)."""
    from repro.core.refine.lemmas import address_lemmas

    lemma = next(vc for vc in address_lemmas()
                 if vc.name == "addr_no_carry_into_frame_SIZE_4K")
    result = benchmark(lemma.discharge)
    assert result.ok
