"""Table 1: comparison of OS verification projects.

Regenerates the paper's matrix from the structured transcription, with a
column for this reproduction, and checks the key facts the surrounding text
relies on (only CertiKOS and SeKVM are multi-processor; no prior project
has a process-centric spec)."""

from benchmarks._common import report_lines
from repro.related.projects import PROJECTS, TABLE1_ROWS
from repro.related.tables import project_by_name, table1


def test_table1(benchmark, capsys):
    lines = benchmark(table1)
    report_lines(capsys, "Table 1 — OS verification projects", lines)

    assert len(lines) == 2 + len(TABLE1_ROWS)
    # the claims Section 2 makes about this table:
    multiprocessor = [p.name for p in PROJECTS
                      if p.properties["Multi-processor support"] == "yes"]
    assert multiprocessor == ["CertiKOS", "SeKVM+VRM"]
    assert all(p.properties["Kernel memory safety"] == "yes"
               for p in PROJECTS)
    assert all(p.properties["Specification refinement"] == "yes"
               for p in PROJECTS)
    assert all(p.properties["Process-centric spec"] == "no"
               for p in PROJECTS)
    # the proposed system's column
    this = project_by_name("this repro")
    assert this.properties["Process-centric spec"] == "yes"
