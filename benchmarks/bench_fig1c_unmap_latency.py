"""Figure 1c: unmap latency vs core count, verified vs unverified.

Unmap pays for everything map pays plus the TLB shootdown (IPI every other
core and wait for acknowledgement), so its curve sits above Figure 1b's and
grows faster with core count — the same relationship the paper's two
figures show.
"""

import pytest

from benchmarks._common import (
    BASE_APPLY_NS,
    BASE_QUERY_NS,
    CORE_COUNTS,
    OPS_PER_CORE,
    calibrate_impl_cost,
    report_lines,
    vspace_obs_probe,
    write_bench_json,
)
from repro.nr.datastructures import VSpaceModel
from repro.nr.timed import TimedNrConfig, run_timed_workload, tlb_shootdown_cost
from repro.obs import Histogram


def unmap_workload(core, i):
    """Alternate map/unmap so every unmap has something to remove."""
    vaddr = (core << 28) | ((i // 2 + 1) << 12)
    if i % 2 == 0:
        return (("map", vaddr, core), False)
    return (("unmap", vaddr), False)


def unmap_post_cost(op, is_read, num_cores, topology):
    if op[0] != "unmap":
        return 0
    return tlb_shootdown_cost(op, is_read, num_cores, topology)


@pytest.fixture(scope="module")
def calibration():
    return calibrate_impl_cost()


def run_series(apply_cost_ns):
    series = {}
    for cores in CORE_COUNTS:
        cfg = TimedNrConfig(
            num_cores=cores,
            ops_per_core=OPS_PER_CORE,
            apply_cost_ns=apply_cost_ns,
            query_cost_ns=BASE_QUERY_NS,
            post_op_cost_fn=unmap_post_cost,
        )
        series[cores] = run_timed_workload(VSpaceModel, unmap_workload, cfg)
    return series


def test_fig1c_unmap_latency(benchmark, calibration, capsys):
    unverified_cost = BASE_APPLY_NS
    verified_cost = int(BASE_APPLY_NS * calibration["ratio"])

    def run_both():
        return (run_series(unverified_cost), run_series(verified_cost))

    unverified, verified = benchmark.pedantic(run_both, rounds=1,
                                              iterations=1)

    lines = ["  cores   unverified unmap [us]   verified unmap [us]   "
             "p99 [us]"]
    for cores in CORE_COUNTS:
        u = unverified[cores].kind("unmap")
        v = verified[cores].kind("unmap")
        # per-kind recorders are the same unified Histogram type as 1a/1b
        assert isinstance(v, Histogram)
        lines.append(
            f"  {cores:5d}   {u.mean_us:21.2f}   {v.mean_us:19.2f}   "
            f"{v.p99_us:8.2f}"
        )
        benchmark.extra_info[f"unverified_us_{cores}"] = round(u.mean_us, 2)
        benchmark.extra_info[f"verified_us_{cores}"] = round(v.mean_us, 2)
    # cross-check against the real VSpace: the shootdown cost this figure
    # prices is observable in the obs registry — exactly one round per
    # unmap batch, and every unmapped page appears in shootdown_pages
    probe = vspace_obs_probe(pages=64, batch=16)
    lines += [
        "",
        f"  real-VSpace obs probe: {probe['shootdown_rounds']} shootdown "
        f"rounds for {probe['shootdown_pages']} pages unmapped in "
        f"batches of {probe['batch']} (one round per batch)",
        "",
        "  paper shape: same growth as map plus shootdown overhead; "
        "verified closely matches unverified",
    ]
    report_lines(capsys, "Figure 1c — unmap latency", lines)

    write_bench_json("fig1c", {
        "impl_cost_ratio": round(calibration["ratio"], 3),
        "series": {
            str(cores): {
                "unverified_mean_us": round(
                    unverified[cores].kind("unmap").mean_us, 2),
                "verified_mean_us": round(
                    verified[cores].kind("unmap").mean_us, 2),
                "verified_p99_us": round(
                    verified[cores].kind("unmap").p99_us, 2),
            }
            for cores in CORE_COUNTS
        },
        "vspace_obs": probe,
    })

    u_means = [unverified[c].kind("unmap").mean_us for c in CORE_COUNTS]
    v_means = [verified[c].kind("unmap").mean_us for c in CORE_COUNTS]
    assert all(a < b for a, b in zip(u_means, u_means[1:]))
    for u_mean, v_mean in zip(u_means, v_means):
        assert abs(v_mean - u_mean) / u_mean < 0.6


def test_fig1c_unmap_exceeds_map(benchmark, capsys):
    """Cross-figure check: at equal core counts the unmap workload's
    latency exceeds the pure-map workload's (shootdown cost)."""
    from benchmarks.bench_fig1b_map_latency import map_workload

    cores = 16

    def run_pair():
        base_cfg = dict(num_cores=cores, ops_per_core=OPS_PER_CORE,
                        apply_cost_ns=BASE_APPLY_NS)
        map_result = run_timed_workload(
            VSpaceModel, map_workload, TimedNrConfig(**base_cfg)
        )
        unmap_result = run_timed_workload(
            VSpaceModel, unmap_workload,
            TimedNrConfig(**base_cfg, post_op_cost_fn=unmap_post_cost),
        )
        return map_result, unmap_result

    map_result, unmap_result = benchmark.pedantic(run_pair, rounds=1,
                                                  iterations=1)
    map_us = map_result.latency.mean_us
    unmap_us = unmap_result.kind("unmap").mean_us
    report_lines(capsys, "Figure 1c vs 1b — shootdown overhead", [
        f"  map   at {cores} cores: {map_us:6.2f} us",
        f"  unmap at {cores} cores: {unmap_us:6.2f} us",
    ])
    assert unmap_us > map_us
