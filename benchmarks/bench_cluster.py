"""Cluster service: open-loop Zipfian load at 1 vs 3 nodes.

The workload harness offers the same seeded arrival process (Poisson
arrivals at a rate above a single node's service capacity, Zipfian key
popularity, a million-client virtual population) to a 1-node rf=1 and a
3-node rf=2 deployment, and reports per-op-class latency percentiles and
throughput.  One node must queue — its p50 sits far above service time —
while three nodes absorb the same offered load near service latency,
which is the node-scaling story ``BENCH_cluster.json`` carries.

The payload also carries a ``recovery`` section: a 3-node run that
kills node1 mid-workload, restarts it from its surviving disk image,
and measures WAL replay, time-to-serving, and time-to-restore-RF (the
first tick at which every acknowledged write is back on all ``rf`` of
its owners) — with the same zero-loss invariants as every other run.

Everything is simulated time under a seed, so the emitted numbers are
deterministic and CI compares them against the committed
``benchmarks/baseline_cluster.json``.
"""

import pytest

from benchmarks._common import report_lines, write_bench_json
from repro.cluster import scaling_bench
from repro.cluster.harness import SCALE_NODE_COUNTS


def _format_series(payload):
    lines = [
        f"  open-loop rate {payload['profile']['rate_ops_per_s']:,.0f} "
        f"ops/s, {payload['profile']['ops']} ops, zipf "
        f"theta={payload['profile']['zipf_theta']}, "
        f"{payload['profile']['num_clients']:,} clients",
        "",
        "  nodes  rf    acked   tput [ops/s]   put p50/p99 [ns]   "
        "get p50/p99 [ns]",
    ]
    for count in SCALE_NODE_COUNTS:
        entry = payload["series"][str(count)]
        lines.append(
            f"  {entry['nodes']:5d}  {entry['rf']:2d}  {entry['acked']:7d}"
            f"   {entry['throughput_ops_per_s']:12,.0f}"
            f"   {entry['put']['p50_ns']:7.0f}/{entry['put']['p99_ns']:<8.0f}"
            f"  {entry['get']['p50_ns']:7.0f}/{entry['get']['p99_ns']:<8.0f}")
    rec = payload["recovery"]
    lines += [
        "",
        f"  crash-restart: killed node1 at op {rec['kill_at_op']}, "
        f"restarted at op {rec['restart_at_op']}",
        f"    fsck issues={rec['fsck_issues']}, replayed "
        f"{rec['replayed_records']} wal records "
        f"({rec['recovered_keys']} keys)",
        f"    serving after {rec['recovery_ticks']} ticks, full rf "
        f"restored after {rec['rf_restore_ticks']} ticks",
    ]
    return lines


@pytest.mark.benchmark(group="cluster")
def test_cluster_node_scaling(benchmark, capsys):
    payload = benchmark.pedantic(scaling_bench, rounds=1, iterations=1)

    for count in SCALE_NODE_COUNTS:
        entry = payload["series"][str(count)]
        # the service contract holds at every scale
        assert entry["lost_acked_writes"] == 0
        assert entry["ryw_violations"] == 0
        assert entry["undrained"] == 0
        assert entry["acked"] == entry["issued"]
        benchmark.extra_info[f"acked_{count}"] = entry["acked"]
        benchmark.extra_info[f"put_p99_ns_{count}"] = entry["put"]["p99_ns"]
        benchmark.extra_info[f"tput_{count}"] = round(
            entry["throughput_ops_per_s"])

    # the scaling story itself: one node queues under the offered load,
    # three nodes serve the same arrivals at far lower median latency
    one = payload["series"][str(SCALE_NODE_COUNTS[0])]
    three = payload["series"][str(SCALE_NODE_COUNTS[-1])]
    assert one["get"]["p50_ns"] > 3 * three["get"]["p50_ns"]

    # the crash-restart story: the killed node came back from its WAL,
    # fsck-clean, with the contract intact and full rf restored
    rec = payload["recovery"]
    assert rec["lost_acked_writes"] == 0
    assert rec["ryw_violations"] == 0
    assert rec["undrained"] == 0
    assert rec["fsck_issues"] == 0
    assert rec["serving"]
    assert rec["replayed_records"] > 0
    assert rec["recovery_ticks"] >= 0
    assert rec["rf_restore_ticks"] >= 0
    benchmark.extra_info["recovery_ticks"] = rec["recovery_ticks"]
    benchmark.extra_info["rf_restore_ticks"] = rec["rf_restore_ticks"]

    path = write_bench_json("cluster", payload)
    report_lines(capsys, "Cluster: open-loop Zipfian load, 1 vs 3 nodes",
                 _format_series(payload) + ["", f"  wrote {path}"])
