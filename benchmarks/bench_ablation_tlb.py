"""Ablation: the TLB in the hardware model.

Quantifies how many page walks the TLB saves under three access patterns
(sequential within a page, looping over a small working set, and a random
scatter larger than the TLB), and the simulated time saved per access —
the cost structure that justifies modelling the TLB (and its shootdowns)
at all.
"""

import random

from benchmarks._common import report_lines
from repro.core.pt.defs import Flags, PageSize
from repro.core.pt.impl import PageTable, SimpleFrameAllocator
from repro.hw.mem import PhysicalMemory
from repro.hw.mmu import Mmu
from repro.hw.tlb import Tlb

MB = 1024 * 1024
WALK_COST_NS = 4 * 90   # four memory accesses per 4-level walk
TLB_HIT_COST_NS = 2


def setup(num_pages=128):
    memory = PhysicalMemory(16 * MB)
    allocator = SimpleFrameAllocator(memory, start=8 * MB)
    pt = PageTable(memory, allocator)
    for i in range(num_pages):
        pt.map_frame(0x10000 + i * 0x1000, 0x100000 + i * 0x1000,
                     PageSize.SIZE_4K, Flags.user_rw())
    return memory, pt


def access_patterns(num_accesses=2000, num_pages=128):
    rng = random.Random(7)
    sequential = [0x10000 + (i % 16) * 8 for i in range(num_accesses)]
    working_set = [0x10000 + (i % 8) * 0x1000 for i in range(num_accesses)]
    scatter = [0x10000 + rng.randrange(num_pages) * 0x1000
               for _ in range(num_accesses)]
    return {"sequential": sequential, "working-set(8p)": working_set,
            f"scatter({num_pages}p)": scatter}


def run_pattern(pt, addresses, capacity):
    mmu = Mmu(pt.memory)
    tlb = Tlb(capacity=capacity) if capacity else None
    walks = 0
    for vaddr in addresses:
        if tlb is not None:
            if tlb.lookup(vaddr) is not None:
                continue
        translation = mmu.walk(pt.root_paddr, vaddr)
        walks += 1
        if tlb is not None:
            tlb.insert(translation)
    return walks


def test_ablation_tlb(benchmark, capsys):
    memory, pt = setup()
    patterns = access_patterns()

    def run_all():
        rows = {}
        for name, addresses in patterns.items():
            without = run_pattern(pt, addresses, capacity=0)
            with_64 = run_pattern(pt, addresses, capacity=64)
            with_16 = run_pattern(pt, addresses, capacity=16)
            rows[name] = (without, with_64, with_16, len(addresses))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["  pattern            walks(noTLB)  walks(64e)  walks(16e)  "
             "hit%(64e)   est. time saved"]
    for name, (without, with_64, with_16, accesses) in rows.items():
        hit_rate = 1 - with_64 / accesses
        saved_ns = (without - with_64) * (WALK_COST_NS - TLB_HIT_COST_NS)
        lines.append(
            f"  {name:18s} {without:12d}  {with_64:10d}  {with_16:10d}  "
            f"{hit_rate * 100:8.1f}%   {saved_ns / 1000:8.1f} us"
        )
    report_lines(capsys, "Ablation — TLB", lines)

    seq = rows["sequential"]
    assert seq[1] < seq[0]  # TLB saves walks on every pattern
    # small working set fits even the small TLB; scatter defeats it
    ws = rows["working-set(8p)"]
    assert ws[1] == ws[2]
    scatter_name = [n for n in rows if n.startswith("scatter")][0]
    sc = rows[scatter_name]
    assert sc[2] > sc[1]  # capacity matters under scatter
