"""Section 5's proof-to-code ratio.

Measures this repository the way the paper measured its prototype and
prints the comparison row: "the proof-to-code ratio is 10:1 ... The
approximate ratios for SeL4 and CertiKOS are 19:1 and 20:1 ... SeKVM ...
10:1 ... Verve ... 3:1."
"""

from benchmarks._common import report_lines
from repro.metrics.loc import measure, page_table_subset
from repro.related.projects import REPORTED_RATIOS


def test_ratio_proof_to_code(benchmark, capsys):
    full, subset = benchmark(lambda: (measure(), page_table_subset()))

    lines = [
        "  reported by the paper:",
    ]
    for name, ratio in sorted(REPORTED_RATIOS.items(), key=lambda kv: -kv[1]):
        lines.append(f"    {name:32s} {ratio:5.1f} : 1")
    lines += [
        "",
        "  measured on this repository:",
        f"    page-table artifact (spec+refinement tests vs impl)"
        f"      {subset.ratio:5.1f} : 1",
        f"      proof lines: {subset.proof_lines}   "
        f"code lines: {subset.code_lines}",
        f"    whole repository (all spec/proof vs all implementation)"
        f"  {full.ratio:5.1f} : 1",
        f"      proof lines: {full.proof_lines}   "
        f"code lines: {full.code_lines}   "
        f"other: {full.other_lines}",
        "",
        "  note: lightweight (model-checked) proofs are cheaper per line",
        "  than foundational ones, so the measured ratios sit below the",
        "  paper's 10:1 — the paper itself predicts this effect for",
        "  'relatively simpler properties' (Section 5).",
    ]
    report_lines(capsys, "Proof-to-code ratio (Section 5)", lines)

    benchmark.extra_info["pt_ratio"] = round(subset.ratio, 2)
    benchmark.extra_info["repo_ratio"] = round(full.ratio, 2)
    assert subset.proof_lines > 0 and subset.code_lines > 0
    assert subset.ratio > 1.0  # proof-heavy, like every verified OS
