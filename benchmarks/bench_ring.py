"""Ring: batched syscall dispatch vs one-at-a-time, under contention.

Three workloads cross the user/kernel boundary ``ITERS`` times per
process — ``fs`` (64-entry file writes), ``net`` (UDP sends through the
loopback stack), ``pt`` (page map+unmap pairs) — each in two modes:

* **single** — one ``yield sys(...)`` per operation, the classic
  trap-per-call path (and for ``pt``, one full NR sync + TLB-shootdown
  round per unmapped page);
* **batched** — the same operations staged as fixed-size SQEs and
  submitted through the submission/completion ring, one ``ring_enter``
  per ``BATCH`` entries (and for ``pt``, ``vm_map_batch`` /
  ``vm_unmap_batch`` paying one shootdown round per ``PT_BATCH`` pages).

Each (workload, mode) cell runs at 1..8 processes on one kernel, so the
batched path is measured under scheduler contention, where amortizing
the per-crossing overhead matters most.  The acceptance gate — batched
pt throughput at least 3x single-call under contention — is asserted
here and re-checked by ``check_bench_json.py`` on the emitted
``BENCH_ring.json``.

Operation *counts* (ops, ring batches, SQEs, shootdown rounds) are
deterministic and CI-compares against ``baseline_ring.json``;
wall-clock throughput is reported but never gated against the baseline.
"""

import os
import time

import pytest

from benchmarks._common import report_lines, write_bench_json
from repro import obs
from repro.core.pt.defs import PAGE_SIZE
from repro.nros.fs.fd import O_CREAT, O_RDWR
from repro.nros.kernel import Kernel
from repro.nros.syscall.abi import sys
from repro.ulib import Ring

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
PROC_COUNTS = (1, 8) if QUICK else (1, 2, 4, 8)
ITERS = 32 if QUICK else 96  # boundary crossings per process
BATCH = 16  # SQEs per ring_enter on the batched path
PT_BATCH = 16  # pages per vm_map_batch/vm_unmap_batch SQE
IP = 0x0A00_0001
PAYLOAD = b"x" * 48  # fits an SQE blob alongside the int args
DEAD_PORT = 9  # nothing binds it: the stack drops deliveries

WORKLOADS = ("fs", "net", "pt")


def _fs_single(index, iters, lats):
    def prog():
        fd = yield sys("open", f"/ring{index}.dat", O_CREAT | O_RDWR)
        for _ in range(iters):
            t0 = time.perf_counter()
            yield sys("write", fd, PAYLOAD)
            lats.append(time.perf_counter() - t0)
        yield sys("close", fd)

    return prog


def _fs_batched(index, iters, lats):
    def prog():
        fd = yield sys("open", f"/ring{index}.dat", O_CREAT | O_RDWR)
        ring = Ring(sq_depth=BATCH)
        yield from ring.setup()
        for _ in range(iters // BATCH):
            for _ in range(BATCH):
                ring.prepare("write", (fd, PAYLOAD))
            t0 = time.perf_counter()
            completions = yield from ring.submit()
            elapsed = time.perf_counter() - t0
            Ring.unwrap(completions)
            lats.extend([elapsed / BATCH] * BATCH)
        yield sys("close", fd)

    return prog


def _net_single(index, iters, lats):
    def prog():
        sid = yield sys("socket")
        yield sys("bind", sid, 1000 + index)
        for _ in range(iters):
            t0 = time.perf_counter()
            yield sys("sendto", sid, IP, DEAD_PORT, PAYLOAD)
            lats.append(time.perf_counter() - t0)

    return prog


def _net_batched(index, iters, lats):
    def prog():
        sid = yield sys("socket")
        yield sys("bind", sid, 1000 + index)
        ring = Ring(sq_depth=BATCH)
        yield from ring.setup()
        for _ in range(iters // BATCH):
            for _ in range(BATCH):
                ring.prepare("sendto", (sid, IP, DEAD_PORT, PAYLOAD))
            t0 = time.perf_counter()
            completions = yield from ring.submit()
            elapsed = time.perf_counter() - t0
            Ring.unwrap(completions)
            lats.extend([elapsed / BATCH] * BATCH)

    return prog


def _pt_single(index, iters, lats):
    def prog():
        for _ in range(iters):
            t0 = time.perf_counter()
            base = yield sys("vm_map", 1)
            yield sys("vm_unmap", base)
            lats.append(time.perf_counter() - t0)

    return prog


def _pt_batched(index, iters, lats):
    def prog():
        ring = Ring(sq_depth=4)
        yield from ring.setup()
        for _ in range(iters // PT_BATCH):
            t0 = time.perf_counter()
            ring.prepare("vm_map_batch", (PT_BATCH,))
            completions = yield from ring.submit()
            (base,) = Ring.unwrap(completions)
            # munmap-style range form: a few bytes in the SQE regardless
            # of the page count (a marshalled vaddr tuple would outgrow
            # the fixed-size slot past ~12 pages)
            ring.prepare("vm_unmap_batch", (base, PT_BATCH))
            Ring.unwrap((yield from ring.submit()))
            elapsed = time.perf_counter() - t0
            lats.extend([elapsed / PT_BATCH] * PT_BATCH)

    return prog


_FACTORIES = {
    ("fs", "single"): _fs_single,
    ("fs", "batched"): _fs_batched,
    ("net", "single"): _net_single,
    ("net", "batched"): _net_batched,
    ("pt", "single"): _pt_single,
    ("pt", "batched"): _pt_batched,
}


def _percentile(sorted_lats, q):
    if not sorted_lats:
        return 0.0
    return sorted_lats[min(len(sorted_lats) - 1, int(q * len(sorted_lats)))]


def _run_cell(kind, mode, procs):
    kernel = Kernel(num_cores=4, ip=IP)
    lats: list[float] = []
    rounds_before = obs.counter("vspace.shootdown_rounds").value
    for index in range(procs):
        name = f"{kind}-{mode}-{index}"
        kernel.register_program(
            name, _FACTORIES[(kind, mode)](index, ITERS, lats))
        kernel.spawn(name)
    t0 = time.perf_counter()
    kernel.run(max_ticks=5_000_000)
    wall = time.perf_counter() - t0
    for process in kernel.processes.values():
        assert process.exit_code == 0, (
            f"{kind}/{mode}/{procs}p: pid {process.pid} exited "
            f"{process.exit_code}")
    ops = procs * ITERS
    lats.sort()
    return {
        "procs": procs,
        "ops": ops,
        "wall_seconds": wall,
        "ops_per_s": ops / wall if wall > 0 else 0.0,
        "p50_s": _percentile(lats, 0.50),
        "p99_s": _percentile(lats, 0.99),
        "ring_batches": kernel.stats.ring_batches,
        "ring_sqes": kernel.stats.ring_sqes,
        "shootdown_rounds": sum(p.vspace.shootdowns
                                for p in kernel.processes.values()),
        "shootdown_rounds_obs": (
            obs.counter("vspace.shootdown_rounds").value - rounds_before),
    }


def ring_bench():
    series: dict = {}
    for kind in WORKLOADS:
        series[kind] = {}
        for procs in PROC_COUNTS:
            series[kind][str(procs)] = {
                mode: _run_cell(kind, mode, procs)
                for mode in ("single", "batched")
            }
    speedup = {
        kind: {
            procs: (cell["batched"]["ops_per_s"]
                    / max(cell["single"]["ops_per_s"], 1e-12))
            for procs, cell in series[kind].items()
        }
        for kind in WORKLOADS
    }
    batch_hist = obs.histogram("ring.batch_sqes")
    return {
        "quick": QUICK,
        "iters": ITERS,
        "batch": BATCH,
        "pt_batch": PT_BATCH,
        "proc_counts": list(PROC_COUNTS),
        "series": series,
        "speedup": speedup,
        "ring_obs": {
            "batch_count": batch_hist.count,
            "batch_p50": batch_hist.percentile(50),
            "sq_pending_gauge": obs.gauge("ring.sq_pending").value,
            "cq_ready_gauge": obs.gauge("ring.cq_ready").value,
        },
    }


def _format(payload):
    lines = [
        f"  {payload['iters']} crossings/process, ring batch "
        f"{payload['batch']} SQEs, pt batch {payload['pt_batch']} pages",
        "",
        "  work  procs   single [op/s]   batched [op/s]   speedup"
        "   batched p50/p99 [us]",
    ]
    for kind in WORKLOADS:
        for procs in payload["proc_counts"]:
            cell = payload["series"][kind][str(procs)]
            single, batched = cell["single"], cell["batched"]
            lines.append(
                f"  {kind:4s}  {procs:5d}   {single['ops_per_s']:13,.0f}"
                f"   {batched['ops_per_s']:14,.0f}"
                f"   {payload['speedup'][kind][str(procs)]:7.2f}"
                f"   {batched['p50_s'] * 1e6:8.1f}/"
                f"{batched['p99_s'] * 1e6:<8.1f}")
    max_procs = str(payload["proc_counts"][-1])
    pt = payload["series"]["pt"][max_procs]
    lines += [
        "",
        f"  pt shootdown rounds at {max_procs} processes: "
        f"{pt['single']['shootdown_rounds']} single vs "
        f"{pt['batched']['shootdown_rounds']} batched",
    ]
    return lines


@pytest.mark.benchmark(group="ring")
def test_ring_batched_vs_single(benchmark, capsys):
    payload = benchmark.pedantic(ring_bench, rounds=1, iterations=1)

    max_procs = str(payload["proc_counts"][-1])
    for kind in WORKLOADS:
        for procs in payload["proc_counts"]:
            cell = payload["series"][kind][str(procs)]
            for mode in ("single", "batched"):
                assert cell[mode]["ops"] == procs * payload["iters"]
        benchmark.extra_info[f"speedup_{kind}_{max_procs}p"] = round(
            payload["speedup"][kind][max_procs], 2)

    # the headline gate: batched memory ops under contention must beat
    # the trap-per-call path by at least 3x
    assert payload["speedup"]["pt"][max_procs] >= 3.0, (
        f"pt batched speedup {payload['speedup']['pt'][max_procs]:.2f} "
        f"< 3.0 at {max_procs} processes")

    # the amortization that buys it: one shootdown round per PT_BATCH
    # pages instead of one per page
    pt = payload["series"]["pt"][max_procs]
    assert pt["single"]["shootdown_rounds"] == pt["single"]["ops"]
    assert pt["batched"]["shootdown_rounds"] == (
        pt["batched"]["ops"] // payload["pt_batch"])

    # the ring accounting must add up: every batched operation rode an
    # SQE (fs/net: one op per SQE; pt: one map SQE + one unmap SQE per
    # PT_BATCH pages) and the single path never touched a ring
    for kind in WORKLOADS:
        cell = payload["series"][kind][max_procs]
        expected = (2 * cell["batched"]["ops"] // payload["pt_batch"]
                    if kind == "pt" else cell["batched"]["ops"])
        assert cell["batched"]["ring_sqes"] == expected
        assert cell["single"]["ring_sqes"] == 0

    path = write_bench_json("ring", payload)
    report_lines(capsys, "Ring: batched vs single-call syscall dispatch",
                 _format(payload) + ["", f"  wrote {path}"])
