"""Ablation: the SMT solving pipeline, stage by stage.

DESIGN.md calls out the rewrite + AIG structural-hashing pipeline as the
reason most bit-level lemmas discharge without touching the SAT solver.
This module ablates each optimisation independently over the same lemma
population:

* the term rewriter (`simplify`) — how many goals even reach SAT;
* the SatELite CNF preprocessor (`preprocess`) — clause-level reductions;
* family grouping / incremental assumption solving (`incremental`) —
  shared-solver discharge of same-shape lemmas.

The preprocess/incremental arms run through the prover scheduler exactly
as ``repro prove --no-preprocess`` / ``--no-incremental`` would, and every
arm must produce bit-identical verdicts.
"""

import time

from benchmarks._common import report_lines
from repro.core.refine.lemmas import all_lemma_vcs, c64
from repro.core.refine.proof import build_proof
from repro.prover import ProverConfig, prove_all
from repro.smt import ast
from repro.smt.solver import prove


def _lemma_goals():
    """A representative subset of lemma goals, rebuilt as raw terms."""
    va = ast.bv_var("va", 64)
    frame = ast.bv_var("frame", 64)
    off = ast.bv_var("off", 64)
    goals = []
    for shift in (12, 21, 30, 39):
        lhs = ast.bvand(ast.bvlshr(va, c64(shift)), c64(0x1FF))
        rhs = ast.zext(ast.extract(va, shift + 8, shift), 64)
        goals.append((f"index_extract_{shift}", ast.eq(lhs, rhs)))
    for size in (0x1000, 0x20_0000, 0x4000_0000):
        guards = ast.and_(
            ast.eq(ast.bvand(frame, c64(size - 1)), c64(0)),
            ast.ult(off, c64(size)),
        )
        total = ast.bvadd(frame, off)
        goals.append((
            f"no_carry_{size:#x}",
            ast.implies(guards, ast.eq(ast.bvand(total, c64(~(size - 1))),
                                       frame)),
        ))
    return goals


def _run(simplify: bool):
    total = 0.0
    reached_sat = 0
    for name, goal in _lemma_goals():
        start = time.perf_counter()
        result = prove(goal, simplify=simplify)
        total += time.perf_counter() - start
        assert not result.sat, name
        if not result.stats.decided_structurally and result.stats.cnf_vars:
            reached_sat += 1
    return total, reached_sat


def test_ablation_rewriter(benchmark, capsys):
    def run_both():
        with_rw = _run(simplify=True)
        without_rw = _run(simplify=False)
        return with_rw, without_rw

    (with_time, with_sat), (without_time, without_sat) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    goals = len(_lemma_goals())
    lines = [
        f"  lemma goals: {goals}",
        f"  with rewriter:    {with_time * 1000:8.1f} ms total, "
        f"{with_sat}/{goals} reached the SAT solver",
        f"  without rewriter: {without_time * 1000:8.1f} ms total, "
        f"{without_sat}/{goals} reached the SAT solver",
    ]
    if with_time > 0:
        lines.append(f"  slowdown without rewriter: "
                     f"{without_time / with_time:5.1f}x")
    report_lines(capsys, "Ablation — SMT rewriter", lines)

    benchmark.extra_info["with_ms"] = round(with_time * 1000, 1)
    benchmark.extra_info["without_ms"] = round(without_time * 1000, 1)
    # the rewriter must keep more goals away from SAT
    assert with_sat <= without_sat


SCHEDULER_ARMS = (
    ("full pipeline", dict(preprocess=True, incremental=True)),
    ("no preprocess", dict(preprocess=False, incremental=True)),
    ("no incremental", dict(preprocess=True, incremental=False)),
    ("neither", dict(preprocess=False, incremental=False)),
)


def _run_arm(flags):
    engine = build_proof(include_structural=False, include_nr=False,
                         include_contract=False)
    start = time.perf_counter()
    report = prove_all(engine, config=ProverConfig(use_cache=False, **flags))
    elapsed = time.perf_counter() - start
    return elapsed, report


def test_ablation_preprocess_incremental(benchmark, capsys):
    """The PR's two optimisations ablated independently over the 80-lemma
    SMT slice: CNF preprocessing and family-grouped incremental solving.
    All four arms must agree on every verdict."""

    def run_all():
        return [(name, *_run_arm(flags)) for name, flags in SCHEDULER_ARMS]

    arms = benchmark.pedantic(run_all, rounds=1, iterations=1)

    baseline_keys = [r.key() for r in arms[0][2].results]
    lines = []
    for name, elapsed, report in arms:
        counters = report.solver_counters()
        lines.append(
            f"  {name:15s} {elapsed * 1000:8.1f} ms wall   "
            f"{counters.get('sat_conflicts', 0):6d} conflicts   "
            f"{counters.get('decided_by_preprocessing', 0):3d} by-preprocess"
        )
        benchmark.extra_info[name.replace(" ", "_") + "_ms"] = round(
            elapsed * 1000, 1)
        assert report.all_proved, [r.name for r in report.failed]
        assert [r.key() for r in report.results] == baseline_keys, name
    report_lines(capsys, "Ablation — CNF preprocessing / incremental SAT",
                 lines)


def test_full_lemma_population_time(benchmark):
    """Total discharge time of all 80 SMT lemmas (part of the Figure 1a
    total)."""

    def run_all():
        results = [vc.discharge() for vc in all_lemma_vcs()]
        assert all(r.ok for r in results)
        return sum(r.seconds for r in results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
