"""Ablation: the SMT rewriter/structural-hashing front end.

DESIGN.md calls out the rewrite + AIG structural-hashing pipeline as the
reason most bit-level lemmas discharge without touching the SAT solver.
This ablation proves the same lemma population with the rewriter disabled
and reports the effect on discharge time and on how many goals reach SAT.
"""

import time

from benchmarks._common import report_lines
from repro.core.refine.lemmas import all_lemma_vcs, c64
from repro.smt import ast
from repro.smt.solver import prove


def _lemma_goals():
    """A representative subset of lemma goals, rebuilt as raw terms."""
    va = ast.bv_var("va", 64)
    frame = ast.bv_var("frame", 64)
    off = ast.bv_var("off", 64)
    goals = []
    for shift in (12, 21, 30, 39):
        lhs = ast.bvand(ast.bvlshr(va, c64(shift)), c64(0x1FF))
        rhs = ast.zext(ast.extract(va, shift + 8, shift), 64)
        goals.append((f"index_extract_{shift}", ast.eq(lhs, rhs)))
    for size in (0x1000, 0x20_0000, 0x4000_0000):
        guards = ast.and_(
            ast.eq(ast.bvand(frame, c64(size - 1)), c64(0)),
            ast.ult(off, c64(size)),
        )
        total = ast.bvadd(frame, off)
        goals.append((
            f"no_carry_{size:#x}",
            ast.implies(guards, ast.eq(ast.bvand(total, c64(~(size - 1))),
                                       frame)),
        ))
    return goals


def _run(simplify: bool):
    total = 0.0
    reached_sat = 0
    for name, goal in _lemma_goals():
        start = time.perf_counter()
        result = prove(goal, simplify=simplify)
        total += time.perf_counter() - start
        assert not result.sat, name
        if not result.stats.decided_structurally and result.stats.cnf_vars:
            reached_sat += 1
    return total, reached_sat


def test_ablation_rewriter(benchmark, capsys):
    def run_both():
        with_rw = _run(simplify=True)
        without_rw = _run(simplify=False)
        return with_rw, without_rw

    (with_time, with_sat), (without_time, without_sat) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    goals = len(_lemma_goals())
    lines = [
        f"  lemma goals: {goals}",
        f"  with rewriter:    {with_time * 1000:8.1f} ms total, "
        f"{with_sat}/{goals} reached the SAT solver",
        f"  without rewriter: {without_time * 1000:8.1f} ms total, "
        f"{without_sat}/{goals} reached the SAT solver",
    ]
    if with_time > 0:
        lines.append(f"  slowdown without rewriter: "
                     f"{without_time / with_time:5.1f}x")
    report_lines(capsys, "Ablation — SMT rewriter", lines)

    benchmark.extra_info["with_ms"] = round(with_time * 1000, 1)
    benchmark.extra_info["without_ms"] = round(without_time * 1000, 1)
    # the rewriter must keep more goals away from SAT
    assert with_sat <= without_sat


def test_full_lemma_population_time(benchmark):
    """Total discharge time of all 80 SMT lemmas (part of the Figure 1a
    total)."""

    def run_all():
        results = [vc.discharge() for vc in all_lemma_vcs()]
        assert all(r.ok for r in results)
        return sum(r.seconds for r in results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
