"""Figure 1b: map latency vs core count, verified vs unverified.

Each core repeatedly executes map system calls through the NR-replicated
address space on the simulated NUMA machine; the series is the mean
latency in microseconds at 1..28 cores.  The 'verified' curve scales the
per-op replica cost by the *measured* wall-time ratio between the verified
and unverified Python implementations, so the gap between the two curves
is real, not assumed.
"""

import pytest

from benchmarks._common import (
    BASE_APPLY_NS,
    BASE_QUERY_NS,
    CORE_COUNTS,
    OPS_PER_CORE,
    calibrate_impl_cost,
    report_lines,
    vspace_obs_probe,
    write_bench_json,
)
from repro.nr.datastructures import VSpaceModel
from repro.nr.timed import TimedNrConfig, run_timed_workload
from repro.obs import Histogram


def map_workload(core, i):
    vaddr = (core << 28) | ((i + 1) << 12)
    return (("map", vaddr, (core << 20) | i), False)


@pytest.fixture(scope="module")
def calibration():
    return calibrate_impl_cost()


def run_series(apply_cost_ns):
    series = {}
    for cores in CORE_COUNTS:
        cfg = TimedNrConfig(
            num_cores=cores,
            ops_per_core=OPS_PER_CORE,
            apply_cost_ns=apply_cost_ns,
            query_cost_ns=BASE_QUERY_NS,
        )
        result = run_timed_workload(VSpaceModel, map_workload, cfg)
        series[cores] = result
    return series


def test_fig1b_map_latency(benchmark, calibration, capsys):
    unverified_cost = BASE_APPLY_NS
    verified_cost = int(BASE_APPLY_NS * calibration["ratio"])

    def run_both():
        return (run_series(unverified_cost), run_series(verified_cost))

    unverified, verified = benchmark.pedantic(run_both, rounds=1,
                                              iterations=1)

    lines = [
        f"  measured impl cost ratio (verified/unverified): "
        f"{calibration['ratio']:.2f}",
        "",
        "  cores   unverified [us]   verified [us]   p99 [us]   max batch",
    ]
    for cores in CORE_COUNTS:
        u = unverified[cores]
        v = verified[cores]
        # latency and batch-size populations are both repro.obs Histograms
        assert isinstance(v.latency, Histogram)
        assert v.batch_sizes.max == v.max_batch
        lines.append(
            f"  {cores:5d}   {u.latency.mean_us:15.2f}   "
            f"{v.latency.mean_us:13.2f}   {v.latency.p99_us:8.2f}   "
            f"{int(v.batch_sizes.max):9d}"
        )
        benchmark.extra_info[f"unverified_us_{cores}"] = round(
            u.latency.mean_us, 2)
        benchmark.extra_info[f"verified_us_{cores}"] = round(
            v.latency.mean_us, 2)
    # cross-check against the real VSpace: the obs registry must account
    # for every batched map the model prices (gauge returns to baseline,
    # one batch_pages sample per batch)
    probe = vspace_obs_probe(pages=64, batch=16)
    lines += [
        "",
        f"  real-VSpace obs probe: mapped {probe['pages']} pages in "
        f"batches of {probe['batch']}; batch_pages samples "
        f"{probe['batch_pages_recorded']}, gauge delta "
        f"{probe['mapped_pages_gauge_delta']}",
        "",
        "  paper shape: latency grows with contending cores "
        "(~5 us -> ~60 us at 28); verified closely matches unverified",
    ]
    report_lines(capsys, "Figure 1b — map latency", lines)

    write_bench_json("fig1b", {
        "impl_cost_ratio": round(calibration["ratio"], 3),
        "series": {
            str(cores): {
                "unverified_mean_us": round(
                    unverified[cores].latency.mean_us, 2),
                "verified_mean_us": round(verified[cores].latency.mean_us, 2),
                "verified_p99_us": round(verified[cores].latency.p99_us, 2),
            }
            for cores in CORE_COUNTS
        },
        "vspace_obs": probe,
    })

    # shape assertions: monotone growth, and verified within 60% of
    # unverified everywhere (the paper's 'closely match')
    u_means = [unverified[c].latency.mean_us for c in CORE_COUNTS]
    v_means = [verified[c].latency.mean_us for c in CORE_COUNTS]
    assert all(a < b for a, b in zip(u_means, u_means[1:]))
    for u_mean, v_mean in zip(u_means, v_means):
        assert abs(v_mean - u_mean) / u_mean < 0.6
