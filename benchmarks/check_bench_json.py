"""Validate a ``BENCH_*.json`` result file and guard against solver
regressions.

Usage::

    python benchmarks/check_bench_json.py BENCH_fig1a.json \
        [--baseline benchmarks/baseline_fig1a.json]

Two checks:

* **schema** — the file must carry the expected ``schema_version`` and the
  per-benchmark required keys with the right types (a benchmark refactor
  that silently stops emitting a field fails CI here);
* **baseline** (fig1a only, when ``--baseline`` is given) — the
  *deterministic* solver counters are compared against the committed
  baseline: the number of goals settled without CDCL search
  (``decided_structurally`` + ``decided_by_preprocessing``) must not drop
  below half the baseline, and ``sat_conflicts`` must not exceed twice the
  baseline.  Wall-clock is deliberately not compared — CI machines vary;
  the counters do not.

Exit status 0 on success, 1 with a diagnostic on any failure.
"""

from __future__ import annotations

import argparse
import json
import sys

EXPECTED_SCHEMA_VERSION = 1

_TIMING_KEYS = ("p50_seconds", "p99_seconds", "total_seconds",
                "wall_seconds")

#: Required top-level keys (and types) per benchmark name.
SCHEMAS: dict[str, dict[str, type | tuple]] = {
    "fig1a": {
        "quick": bool,
        "total_vcs": int,
        "cold": dict,
        "warm": dict,
        "cache_hit_rate": (int, float),
        "solver_counters": dict,
    },
    "fig1b": {"impl_cost_ratio": (int, float), "series": dict,
              "vspace_obs": dict},
    "fig1c": {"impl_cost_ratio": (int, float), "series": dict,
              "vspace_obs": dict},
    "cluster": {"quick": bool, "seed": int, "profile": dict,
                "series": dict, "recovery": dict},
    "sched": {"quick": bool, "seed": int, "profile": dict,
              "series": dict, "fairness": dict},
    "ring": {"quick": bool, "iters": int, "batch": int, "pt_batch": int,
             "proc_counts": list, "series": dict, "speedup": dict,
             "ring_obs": dict},
}

#: Required keys of every per-node-count entry of the cluster series.
_CLUSTER_ENTRY_KEYS = ("nodes", "rf", "issued", "acked", "failed",
                       "undrained", "lost_acked_writes", "ryw_violations",
                       "sim_ns", "throughput_ops_per_s")

#: Required numeric keys of the cluster recovery entry (the kill+restart
#: measurement: WAL replay, time-to-serving, time-to-restore-RF).
_CLUSTER_RECOVERY_KEYS = ("acked", "gaveup", "undrained",
                          "lost_acked_writes", "ryw_violations",
                          "fsck_issues", "replayed_records",
                          "recovered_keys", "recovery_ticks",
                          "rf_restore_ticks")

#: Required numeric keys of every per-core-count entry of the sched
#: series (workload metrics + the scheduler's own counters).
_SCHED_ENTRY_KEYS = ("cores", "ticks", "quanta", "sim_ns",
                     "throughput_qps", "context_switches", "migrations",
                     "steals", "preemptions", "rt_throttles")

#: The fairness gate: achieved CPU shares must track the nice-weight
#: ideal within this relative error on every run.
_SCHED_FAIRNESS_LIMIT = 0.05

#: Required numeric keys of every (workload, procs, mode) ring cell.
_RING_CELL_KEYS = ("procs", "ops", "wall_seconds", "ops_per_s", "p50_s",
                   "p99_s", "ring_batches", "ring_sqes",
                   "shootdown_rounds", "shootdown_rounds_obs")

#: Ring deterministic counters compared exactly against the baseline.
_RING_COUNT_KEYS = ("ops", "ring_batches", "ring_sqes", "shootdown_rounds")

#: The headline ring gate: batched pt dispatch must beat trap-per-call
#: by this factor at the highest process count.
_RING_SPEEDUP_FLOOR = 3.0


def _fail(message: str) -> None:
    print(f"check_bench_json: FAIL: {message}")
    raise SystemExit(1)


def validate_schema(document: dict) -> None:
    if document.get("schema_version") != EXPECTED_SCHEMA_VERSION:
        _fail(f"schema_version {document.get('schema_version')!r} != "
              f"{EXPECTED_SCHEMA_VERSION}")
    bench = document.get("bench")
    if bench not in SCHEMAS:
        _fail(f"unknown bench name {bench!r} (known: {sorted(SCHEMAS)})")
    for key, expected_type in SCHEMAS[bench].items():
        if key not in document:
            _fail(f"{bench}: missing required key {key!r}")
        if not isinstance(document[key], expected_type):
            _fail(f"{bench}: key {key!r} has type "
                  f"{type(document[key]).__name__}, expected "
                  f"{expected_type}")
    if bench == "fig1a":
        for block in ("cold", "warm"):
            for key in _TIMING_KEYS:
                value = document[block].get(key)
                if not isinstance(value, (int, float)):
                    _fail(f"fig1a: {block}.{key} missing or non-numeric "
                          f"({value!r})")
    if bench in ("fig1b", "fig1c"):
        # the real-VSpace probe riding along with the timed-model series:
        # its obs deltas must tell the amortized-shootdown story exactly
        probe = document["vspace_obs"]
        for key in ("pages", "batch", "shootdown_rounds",
                    "shootdown_pages", "mapped_pages_gauge_delta",
                    "batch_pages_recorded"):
            if not isinstance(probe.get(key), (int, float)):
                _fail(f"{bench}: vspace_obs.{key} missing or non-numeric "
                      f"({probe.get(key)!r})")
        if probe["shootdown_rounds"] * probe["batch"] != probe["pages"]:
            _fail(f"{bench}: vspace_obs paid {probe['shootdown_rounds']} "
                  f"shootdown rounds for {probe['pages']} pages in "
                  f"batches of {probe['batch']} (want one per batch)")
        if probe["shootdown_pages"] != probe["pages"]:
            _fail(f"{bench}: vspace_obs shot {probe['shootdown_pages']} "
                  f"pages but unmapped {probe['pages']}")
        if probe["mapped_pages_gauge_delta"] != 0:
            _fail(f"{bench}: vspace_obs mapped_pages gauge drifted by "
                  f"{probe['mapped_pages_gauge_delta']} (leaked mappings)")
    if bench == "cluster":
        if not document["series"]:
            _fail("cluster: empty series")
        for count, entry in sorted(document["series"].items()):
            for key in _CLUSTER_ENTRY_KEYS:
                if not isinstance(entry.get(key), (int, float)):
                    _fail(f"cluster: series[{count}].{key} missing or "
                          f"non-numeric ({entry.get(key)!r})")
            for op in ("put", "get"):
                for field in ("count", "p50_ns", "p99_ns"):
                    if not isinstance(entry.get(op, {}).get(field),
                                      (int, float)):
                        _fail(f"cluster: series[{count}].{op}.{field} "
                              f"missing or non-numeric")
            # the contract gates are exact: an acknowledged write may
            # never be lost, sessions keep read-your-writes, every
            # request completes
            for invariant in ("lost_acked_writes", "ryw_violations",
                              "undrained"):
                if entry[invariant] != 0:
                    _fail(f"cluster: series[{count}].{invariant} = "
                          f"{entry[invariant]} (must be 0)")
        recovery = document["recovery"]
        for key in _CLUSTER_RECOVERY_KEYS:
            if not isinstance(recovery.get(key), (int, float)):
                _fail(f"cluster: recovery.{key} missing or non-numeric "
                      f"({recovery.get(key)!r})")
        # kill+restart keeps the exact contract too, and the restarted
        # node must actually have made it back
        for invariant in ("lost_acked_writes", "ryw_violations",
                          "undrained", "fsck_issues"):
            if recovery[invariant] != 0:
                _fail(f"cluster: recovery.{invariant} = "
                      f"{recovery[invariant]} (must be 0)")
        if not recovery.get("serving"):
            _fail("cluster: recovery.serving is not true — the restarted "
                  "node never returned to service")
        for key in ("recovery_ticks", "rf_restore_ticks"):
            if recovery[key] < 0:
                _fail(f"cluster: recovery.{key} = {recovery[key]} "
                      f"(recovery never completed)")
    if bench == "sched":
        if not document["series"]:
            _fail("sched: empty series")
        for count, entry in sorted(document["series"].items(),
                                   key=lambda kv: int(kv[0])):
            for key in _SCHED_ENTRY_KEYS:
                if not isinstance(entry.get(key), (int, float)):
                    _fail(f"sched: series[{count}].{key} missing or "
                          f"non-numeric ({entry.get(key)!r})")
            for kind in ("interactive", "rt"):
                for field in ("count", "p50_ns", "p99_ns"):
                    if not isinstance(entry.get(kind, {}).get(field),
                                      (int, float)):
                        _fail(f"sched: series[{count}].{kind}.{field} "
                              f"missing or non-numeric")
        # the core-scaling contract: throughput must be monotone from
        # 1 to 4 cores (8 may flatten once the workload is saturated)
        series = document["series"]
        for lower, upper in (("1", "2"), ("2", "4")):
            if lower in series and upper in series:
                low = series[lower]["throughput_qps"]
                high = series[upper]["throughput_qps"]
                if high < low:
                    _fail(f"sched: throughput not monotone: {upper} "
                          f"cores {high:.0f} qps < {lower} cores "
                          f"{low:.0f} qps")
        fairness = document["fairness"]
        error = fairness.get("max_rel_error")
        if not isinstance(error, (int, float)):
            _fail("sched: fairness.max_rel_error missing or non-numeric")
        if error > _SCHED_FAIRNESS_LIMIT:
            _fail(f"sched: fairness error {error:.4f} exceeds "
                  f"{_SCHED_FAIRNESS_LIMIT}")
    if bench == "ring":
        series = document["series"]
        if not series:
            _fail("ring: empty series")
        pt_batch = document["pt_batch"]
        for kind, by_procs in sorted(series.items()):
            for procs, cell in sorted(by_procs.items(), key=lambda kv:
                                      int(kv[0])):
                for mode in ("single", "batched"):
                    entry = cell.get(mode)
                    if entry is None:
                        _fail(f"ring: series[{kind}][{procs}] missing "
                              f"mode {mode!r}")
                    for key in _RING_CELL_KEYS:
                        if not isinstance(entry.get(key), (int, float)):
                            _fail(f"ring: series[{kind}][{procs}]"
                                  f".{mode}.{key} missing or non-numeric "
                                  f"({entry.get(key)!r})")
                    # the vspace attributes and the obs registry must
                    # report the same shootdown story
                    if entry["shootdown_rounds"] != \
                            entry["shootdown_rounds_obs"]:
                        _fail(f"ring: series[{kind}][{procs}].{mode} "
                              f"shootdown accounting split: "
                              f"{entry['shootdown_rounds']} vs obs "
                              f"{entry['shootdown_rounds_obs']}")
                # the single path never touches a ring; every batched op
                # rode an SQE (pt: one map + one unmap SQE per pt_batch
                # pages)
                if cell["single"]["ring_sqes"] != 0:
                    _fail(f"ring: series[{kind}][{procs}].single "
                          f"dispatched {cell['single']['ring_sqes']} SQEs")
                expected = (2 * cell["batched"]["ops"] // pt_batch
                            if kind == "pt" else cell["batched"]["ops"])
                if cell["batched"]["ring_sqes"] != expected:
                    _fail(f"ring: series[{kind}][{procs}].batched "
                          f"ring_sqes {cell['batched']['ring_sqes']} != "
                          f"expected {expected}")
        # the amortization contract: one shootdown round per page on the
        # single path, one per pt_batch pages on the batched path
        for procs, cell in series.get("pt", {}).items():
            if cell["single"]["shootdown_rounds"] != cell["single"]["ops"]:
                _fail(f"ring: pt single at {procs}p paid "
                      f"{cell['single']['shootdown_rounds']} shootdown "
                      f"rounds for {cell['single']['ops']} unmaps")
            if cell["batched"]["shootdown_rounds"] != (
                    cell["batched"]["ops"] // pt_batch):
                _fail(f"ring: pt batched at {procs}p paid "
                      f"{cell['batched']['shootdown_rounds']} shootdown "
                      f"rounds, expected "
                      f"{cell['batched']['ops'] // pt_batch}")
        # the headline gate, re-checked on the artifact CI archives
        max_procs = str(document["proc_counts"][-1])
        speedup = document["speedup"].get("pt", {}).get(max_procs)
        if not isinstance(speedup, (int, float)):
            _fail(f"ring: speedup.pt[{max_procs}] missing")
        if speedup < _RING_SPEEDUP_FLOOR:
            _fail(f"ring: pt batched speedup {speedup:.2f} at "
                  f"{max_procs} processes is below "
                  f"{_RING_SPEEDUP_FLOOR}")


def compare_cluster_to_baseline(document: dict,
                                baseline: dict) -> list[str]:
    """Cluster regression gates: the contract invariants are exact (and
    already schema-checked); acked counts and latency percentiles get
    loose factor gates so protocol tuning doesn't churn the baseline,
    while a collapse (mass request failure, an order-of-magnitude
    latency regression) still fails CI.  Counts are only compared when
    the run and the baseline used the same population (``quick``)."""
    lines = []
    if document.get("quick") != baseline.get("quick"):
        lines.append("quick flag differs from baseline; "
                     "skipping count/latency gates")
        return lines
    for count in sorted(baseline.get("series", {})):
        base = baseline["series"][count]
        entry = document.get("series", {}).get(count)
        if entry is None:
            _fail(f"cluster: baseline node count {count} missing from run")
        lines.append(
            f"{count} nodes: acked {entry['acked']} "
            f"(baseline {base['acked']}), get p99 "
            f"{entry['get']['p99_ns']:.0f}ns "
            f"(baseline {base['get']['p99_ns']:.0f}ns)")
        if entry["acked"] * 2 < base["acked"]:
            _fail(f"cluster: acked ops at {count} nodes collapsed: "
                  f"{entry['acked']} vs baseline {base['acked']}")
        for op in ("put", "get"):
            now = entry[op]["p99_ns"]
            then = base[op]["p99_ns"]
            if now > 4 * max(then, 1):
                _fail(f"cluster: {op} p99 at {count} nodes regressed "
                      f"more than 4x: {now:.0f}ns vs baseline "
                      f"{then:.0f}ns")
    base_rec = baseline.get("recovery")
    if base_rec is not None:
        rec = document["recovery"]
        for key in ("recovery_ticks", "rf_restore_ticks"):
            now, then = rec[key], base_rec[key]
            lines.append(f"recovery: {key} {now} (baseline {then})")
            if now > 4 * max(then, 1):
                _fail(f"cluster: recovery.{key} regressed more than 4x: "
                      f"{now} vs baseline {then}")
    return lines


def compare_sched_to_baseline(document: dict,
                              baseline: dict) -> list[str]:
    """Sched regression gates: monotone scaling and fairness are exact
    (schema-checked); per-core throughput and interactive p99 get loose
    factor gates, comparable only when ``quick`` matches."""
    lines = []
    if document.get("quick") != baseline.get("quick"):
        lines.append("quick flag differs from baseline; "
                     "skipping throughput/latency gates")
        return lines
    for count in sorted(baseline.get("series", {}), key=int):
        base = baseline["series"][count]
        entry = document.get("series", {}).get(count)
        if entry is None:
            _fail(f"sched: baseline core count {count} missing from run")
        lines.append(
            f"{count} cores: {entry['throughput_qps']:.0f} qps "
            f"(baseline {base['throughput_qps']:.0f}), interactive p99 "
            f"{entry['interactive']['p99_ns']:.0f}ns "
            f"(baseline {base['interactive']['p99_ns']:.0f}ns)")
        if entry["throughput_qps"] * 2 < base["throughput_qps"]:
            _fail(f"sched: throughput at {count} cores collapsed: "
                  f"{entry['throughput_qps']:.0f} qps vs baseline "
                  f"{base['throughput_qps']:.0f} qps")
        now = entry["interactive"]["p99_ns"]
        then = base["interactive"]["p99_ns"]
        if now > 4 * max(then, 1):
            _fail(f"sched: interactive p99 at {count} cores regressed "
                  f"more than 4x: {now:.0f}ns vs baseline {then:.0f}ns")
    base_err = baseline.get("fairness", {}).get("max_rel_error")
    if base_err is not None:
        err = document["fairness"]["max_rel_error"]
        lines.append(f"fairness error: {err:.4f} (baseline {base_err:.4f})")
    return lines


def compare_ring_to_baseline(document: dict, baseline: dict) -> list[str]:
    """Ring regression gates: operation counts (ops, batches, SQEs,
    shootdown rounds) are deterministic and must match the baseline
    exactly; throughput gets a collapse gate only (factor 2), since
    wall-clock varies across CI machines.  Comparable only when
    ``quick`` matches."""
    lines = []
    if document.get("quick") != baseline.get("quick"):
        lines.append("quick flag differs from baseline; "
                     "skipping count/throughput gates")
        return lines
    for kind in sorted(baseline.get("series", {})):
        for procs in sorted(baseline["series"][kind], key=int):
            base = baseline["series"][kind][procs]
            cell = document.get("series", {}).get(kind, {}).get(procs)
            if cell is None:
                _fail(f"ring: baseline cell {kind}/{procs}p missing "
                      f"from run")
            for mode in ("single", "batched"):
                for key in _RING_COUNT_KEYS:
                    now = cell[mode][key]
                    then = base[mode][key]
                    if now != then:
                        _fail(f"ring: {kind}/{procs}p/{mode}.{key} = "
                              f"{now}, baseline {then} (deterministic "
                              f"count drifted)")
                if cell[mode]["ops_per_s"] * 2 < base[mode]["ops_per_s"]:
                    _fail(f"ring: {kind}/{procs}p/{mode} throughput "
                          f"collapsed: {cell[mode]['ops_per_s']:.0f} "
                          f"op/s vs baseline "
                          f"{base[mode]['ops_per_s']:.0f}")
        max_procs = sorted(baseline["series"][kind], key=int)[-1]
        lines.append(
            f"{kind} at {max_procs}p: batched "
            f"{document['series'][kind][max_procs]['batched']['ops_per_s']:.0f} op/s "
            f"(baseline "
            f"{baseline['series'][kind][max_procs]['batched']['ops_per_s']:.0f})")
    return lines


def compare_to_baseline(document: dict, baseline: dict) -> list[str]:
    """Deterministic-counter regression gates; returns report lines."""
    if document.get("bench") == "cluster":
        return compare_cluster_to_baseline(document, baseline)
    if document.get("bench") == "sched":
        return compare_sched_to_baseline(document, baseline)
    if document.get("bench") == "ring":
        return compare_ring_to_baseline(document, baseline)
    current = document.get("solver_counters", {})
    expected = baseline.get("solver_counters", {})
    lines = []

    decided_now = (current.get("decided_structurally", 0)
                   + current.get("decided_by_preprocessing", 0))
    decided_base = (expected.get("decided_structurally", 0)
                    + expected.get("decided_by_preprocessing", 0))
    lines.append(f"decided without search: {decided_now} "
                 f"(baseline {decided_base})")
    if decided_now * 2 < decided_base:
        _fail(f"goals decided without CDCL search regressed more than 2x: "
              f"{decided_now} vs baseline {decided_base}")

    conflicts_now = current.get("sat_conflicts", 0)
    conflicts_base = expected.get("sat_conflicts", 0)
    lines.append(f"sat conflicts: {conflicts_now} "
                 f"(baseline {conflicts_base})")
    if conflicts_now > 2 * max(conflicts_base, 1):
        _fail(f"sat_conflicts regressed more than 2x: {conflicts_now} vs "
              f"baseline {conflicts_base}")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="BENCH_*.json file to validate")
    parser.add_argument("--baseline", default=None,
                        help="committed baseline JSON to compare "
                             "deterministic solver counters against")
    args = parser.parse_args(argv)

    with open(args.file) as fh:
        document = json.load(fh)
    validate_schema(document)
    print(f"check_bench_json: schema OK "
          f"({document['bench']}, v{document['schema_version']})")

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        for line in compare_to_baseline(document, baseline):
            print(f"check_bench_json: {line}")
        print("check_bench_json: baseline comparison OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
