"""The consistent-hash ring: determinism, balance, minimal movement."""

import os
import subprocess
import sys

import pytest

from repro.cluster.ring import HashRing, ring_hash

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
NODES = [f"node{i}" for i in range(5)]
KEYS = [f"k{i}" for i in range(2000)]


def test_ring_hash_is_process_independent():
    # placement must not depend on PYTHONHASHSEED: a server and a client
    # library in different processes have to agree on who owns a key
    probe = ("import sys; sys.path.insert(0, 'src'); "
             "from repro.cluster.ring import ring_hash; "
             "print(ring_hash('k42'))")
    outputs = {
        subprocess.run(
            [sys.executable, "-c", probe],
            env={"PYTHONHASHSEED": seed},
            capture_output=True, text=True, cwd=ROOT,
        ).stdout.strip()
        for seed in ("0", "1", "12345")
    }
    assert outputs == {str(ring_hash("k42"))}


def test_placement_is_deterministic_across_instances():
    a = HashRing(NODES, vnodes=64)
    b = HashRing(reversed(NODES), vnodes=64)  # insertion order irrelevant
    for key in KEYS[:200]:
        assert a.owners(key, 3) == b.owners(key, 3)


def test_owners_are_distinct_and_clamped():
    ring = HashRing(NODES, vnodes=32)
    owners = ring.owners("some-key", 3)
    assert len(owners) == len(set(owners)) == 3
    assert ring.owners("some-key", 99) == ring.owners("some-key", 5)
    assert ring.primary_for("some-key") == owners[0]


def test_balance_within_bounded_spread_at_1k_vnodes():
    ring = HashRing(NODES, vnodes=1000)
    counts = ring.assignment_counts(KEYS)
    ideal = len(KEYS) / len(NODES)
    for node, count in counts.items():
        # with 1k vnodes the per-node share stays within 25% of ideal
        assert abs(count - ideal) <= 0.25 * ideal, (node, count)


def test_minimal_movement_on_join():
    before = HashRing(NODES, vnodes=256)
    after = HashRing(NODES + ["node5"], vnodes=256)
    moved = sum(1 for key in KEYS
                if before.primary_for(key) != after.primary_for(key))
    # only keys landing on the joiner's tokens move: ~1/(n+1) of them
    expected = len(KEYS) / (len(NODES) + 1)
    assert moved <= 2 * expected
    # every moved key moved *to* the joiner, never between old nodes
    for key in KEYS:
        if before.primary_for(key) != after.primary_for(key):
            assert after.primary_for(key) == "node5"


def test_minimal_movement_on_leave_promotes_first_replica():
    ring = HashRing(NODES, vnodes=256)
    survivor_view = HashRing([n for n in NODES if n != "node2"],
                             vnodes=256)
    for key in KEYS:
        owners = ring.owners(key, 2)
        if owners[0] != "node2":
            # keys not owned by the leaver do not move
            assert survivor_view.primary_for(key) == owners[0]
        else:
            # the old first replica is exactly the new primary — the
            # property that makes failover lose no acknowledged write
            assert survivor_view.primary_for(key) == owners[1]


def test_remove_then_add_restores_placement():
    ring = HashRing(NODES, vnodes=128)
    want = {key: ring.primary_for(key) for key in KEYS[:300]}
    ring.remove_node("node3")
    ring.add_node("node3")
    assert {key: ring.primary_for(key) for key in KEYS[:300]} == want


def test_membership_errors():
    ring = HashRing(["a"], vnodes=8)
    with pytest.raises(ValueError):
        ring.add_node("a")
    with pytest.raises(ValueError):
        ring.remove_node("zz")
    with pytest.raises(ValueError):
        HashRing(vnodes=0)
    empty = HashRing()
    with pytest.raises(ValueError):
        empty.owners("k")
