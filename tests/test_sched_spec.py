"""Tests for the scheduler specification and its proof obligations:
the bounded state space is finite and invariant-clean, every invariant
is inductive, hand-broken states are flagged (no vacuous invariants),
and the scheduler VC family discharges through the proof engine."""

from dataclasses import replace

import pytest

from repro.verif import schedspec as ss
from repro.verif.explore import check_inductive, reachable_states
from repro.verif.schedproof import (
    MAX_STATES,
    _broken_states,
    scheduler_vcs,
)


@pytest.fixture(scope="module")
def explored():
    machine = ss.sched_machine()
    return machine, reachable_states(machine, max_states=MAX_STATES)


# -- the state space ----------------------------------------------------------


def test_reachable_space_is_finite_and_clean(explored):
    machine, result = explored
    assert not result.truncated, \
        "per-core renormalization must keep the space finite"
    assert result.ok, f"invariant violated: {result.violation[:2]}"
    assert len(result.states) > 1_000


def test_every_invariant_is_inductive(explored):
    machine, result = explored
    for name in ss.INVARIANTS:
        counterexample = check_inductive(machine, result.states, name)
        assert counterexample is None, \
            f"{name} not inductive: {counterexample[:3]}"


def test_canonicalization_is_idempotent(explored):
    machine, result = explored
    for state in result.states[::200]:
        assert ss.canonical(state) == state


def test_transitions_preserve_canonical_form(explored):
    machine, result = explored
    state = result.states[0]
    for name, args, successor in machine.enabled_steps(state):
        assert ss.canonical(successor) == successor


# -- vacuity ------------------------------------------------------------------


def test_broken_states_are_flagged():
    machine = ss.sched_machine()
    for expected, state in _broken_states().items():
        assert machine.check_invariants(state) is not None, \
            f"hand-broken state for {expected} not flagged"


def test_rt_streak_violation_flagged():
    base = ss.uniprocessor_config()
    # pick the fair thread, then claim the streak survived the pick
    picked = ss.sched_machine().step(base, "pick", (0,))
    running = ss.running_on(picked, 0)
    if running.kind == ss.FAIR:
        broken = replace(picked, rt_streak=(1,))
        assert not ss.inv_rt_first(broken)


# -- the pick policy ----------------------------------------------------------


def test_pick_chooses_rt_over_fair():
    state = ss.smp_config()
    chosen = ss.pick_choice(state, 0)
    assert chosen.kind == ss.RT


def test_pick_throttle_forces_fair():
    state = ss.smp_config()
    throttled = replace(
        state, rt_streak=(ss.RT_STREAK_LIMIT, 0))
    chosen = ss.pick_choice(throttled, 0)
    assert chosen.kind == ss.FAIR
    # min-vruntime fair thread wins
    fair = ss.queued_on(throttled, 0, ss.FAIR)
    assert chosen.vruntime == min(t.vruntime for t in fair)


# -- the VC family ------------------------------------------------------------


def test_scheduler_vcs_all_discharge():
    vcs = scheduler_vcs()
    assert len(vcs) >= 10
    for vc in vcs:
        counterexample = vc.check()
        assert counterexample is None, \
            f"{vc.name} failed: {counterexample}"


def test_build_proof_registers_scheduler_group():
    from repro.core.refine.proof import build_proof

    engine = build_proof(include_lemmas=False, include_structural=False,
                         include_nr=False, include_contract=False,
                         include_sched=True)
    names = [vc.name for vc in engine.vcs()]
    assert any(name.startswith("sched-spec-") for name in names)
    assert any(name.startswith("sched-impl-") for name in names)
    assert all(vc.category == "scheduler" for vc in engine.vcs())
    assert engine.rebuild_spec[1]["include_sched"] is True


def test_scheduler_vcs_prove_through_engine():
    from repro.core.refine.proof import build_proof

    engine = build_proof(include_lemmas=False, include_structural=False,
                         include_nr=False, include_contract=False,
                         include_sched=True)
    report = engine.run()
    assert report.all_proved, \
        [r.name for r in report.failed]
