"""Smoke tests: the example programs run end to end.

The heavyweight examples (the full proof, the KV scalability sweep) have
their own dedicated tests/benchmarks; here the fast ones are executed the
way a user would run them."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [name] + list(argv)
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "refinement holds" in out
        assert "stale!" in out

    def test_posix_app(self, capsys):
        run_example("posix_app.py")
        out = capsys.readouterr().out
        assert "workers produced 6 items under the mutex" in out
        assert "child 2 exited with code 17" in out
        assert "syscalls handled" in out

    def test_storage_node(self, capsys):
        run_example("storage_node.py")
        out = capsys.readouterr().out
        assert "0 disagreements with the model" in out
        assert "dropped" in out

    def test_examples_exist_and_documented(self):
        expected = {
            "quickstart.py",
            "storage_node.py",
            "verified_pagetable_proof.py",
            "posix_app.py",
            "nr_kvstore.py",
        }
        found = {p.name for p in EXAMPLES.glob("*.py")}
        assert expected <= found
        for name in expected:
            source = (EXAMPLES / name).read_text()
            assert source.startswith(("#!/usr/bin/env python3", '"""')), name
            assert '"""' in source  # has a module docstring
