"""Tests for the rely-guarantee interference checker (repro.analysis.rg)
and its seeded interference mutants."""

import subprocess
import sys

from repro.analysis.cli import repo_root
from repro.analysis.imports import discover_sources
from repro.analysis.rg import check_interference
from repro.analysis.rg_mutants import (PMEM_MODULE, RG_MUTANTS,
                                       apply_rg_mutant)
from repro.verif.rgspec import (COMPONENTS, LOCK, Action, Component,
                                Guard)

TOY = Component(
    name="toy",
    module="toy.py",
    cls="Box",
    guards=(Guard("box.lock", LOCK, attr="_lock"),),
    shared=(("_items", "box.lock"), ("_count", "box.lock")),
    actions=(
        Action("put", "box.lock", writes=("_items", "_count")),
        Action("peek", "box.lock", reads=("_items",)),
    ),
)


def _toy_findings(body, keep_missing=False):
    source = "class Box:\n" + "".join(
        f"    {line}\n" for line in body.splitlines())
    findings, _ = check_interference({"toy.py": source},
                                     components=(TOY,))
    if keep_missing:
        return findings
    # Snippets define only the method under test; an absent sibling
    # action is the dedicated missing-action test's business.
    return [f for f in findings if f.rule != "rg.missing-action"]


def test_guarded_action_is_clean():
    findings = _toy_findings(
        "def put(self, x):\n"
        "    with self._lock:\n"
        "        self._items.append(x)\n"
        "        self._count += 1\n"
    )
    assert findings == []


def test_unguarded_write_is_flagged():
    findings = _toy_findings(
        "def put(self, x):\n"
        "    self._items.append(x)\n"
    )
    assert [f.rule for f in findings] == ["rg.unguarded-write"]
    assert findings[0].line == 3


def test_mutating_call_counts_as_write_even_when_consumed():
    # dict.pop mutates even though its result is used — the purity
    # lint's discarded-result heuristic would miss this; rg must not.
    findings = _toy_findings(
        "def put(self, x):\n"
        "    return self._items.pop(x)\n"
    )
    assert "rg.unguarded-write" in {f.rule for f in findings}


def test_alias_carries_the_taint():
    findings = _toy_findings(
        "def put(self, x):\n"
        "    box = self._items\n"
        "    box.append(x)\n"
    )
    assert "rg.unguarded-write" in {f.rule for f in findings}


def test_undeclared_write_exceeds_guarantee():
    findings = _toy_findings(
        "def peek(self):\n"
        "    with self._lock:\n"
        "        self._count += 1\n"
        "        return self._items.copy()\n"
    )
    assert [f.rule for f in findings] == ["rg.undeclared-write"]


def test_unspecified_method_mutating_shared_state():
    findings = _toy_findings(
        "def rogue(self):\n"
        "    with self._lock:\n"
        "        self._items.clear()\n"
    )
    assert [f.rule for f in findings] == ["rg.unspecified-action"]


def test_missing_action_when_spec_rots():
    findings = _toy_findings(
        "def peek(self):\n"
        "    with self._lock:\n"
        "        return self._items.copy()\n",
        keep_missing=True,
    )
    assert [f.rule for f in findings] == ["rg.missing-action"]
    assert "put" in findings[0].message


def test_readonly_calls_are_reads():
    findings = _toy_findings(
        "def peek(self):\n"
        "    with self._lock:\n"
        "        return self._items.copy()\n"
        "def put(self, x):\n"
        "    with self._lock:\n"
        "        self._items.append(x)\n"
        "        self._count += 1\n"
    )
    assert findings == []


# -- the real tree ------------------------------------------------------------------


def _tree_sources():
    return discover_sources(repo_root())


def test_real_tree_is_interference_free():
    findings, stats = check_interference(_tree_sources())
    assert findings == [], [f.render() for f in findings]
    assert stats["components"] == len(COMPONENTS)
    assert stats["methods"] > 20
    assert stats["accesses"] > 40


def test_mutant_pmem_free_unlocked_is_flagged():
    sources = apply_rg_mutant(_tree_sources(), "pmem-free-unlocked")
    findings, _ = check_interference(sources)
    rules = {f.rule for f in findings}
    assert "rg.unguarded-write" in rules
    assert all(f.path == PMEM_MODULE for f in findings)
    assert any("free_block" in f.message for f in findings)


def test_mutant_buddy_split_no_merge_lock_is_flagged():
    sources = apply_rg_mutant(_tree_sources(),
                              "buddy-split-no-merge-lock")
    findings, _ = check_interference(sources)
    assert {f.rule for f in findings} == {"rg.unguarded-write"}
    assert any("alloc_block" in f.message for f in findings)


def test_mutants_are_deterministic_source_transforms():
    """Seed-independence for free: the mutants rewrite source text, so
    the findings are identical on every run and every seed."""
    base = _tree_sources()
    for name in RG_MUTANTS:
        first, _ = check_interference(apply_rg_mutant(base, name))
        second, _ = check_interference(apply_rg_mutant(base, name))
        assert [(f.rule, f.line) for f in first] \
            == [(f.rule, f.line) for f in second]
        assert first, f"mutant {name} produced no findings"


def test_cli_gates_on_rg_mutants():
    """The CI must-fail contract: analyze exits 1 under either mutant."""
    for name in RG_MUTANTS:
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "analyze",
             "--skip", "layering,purity,race,deadsupp",
             "--mutant", name],
            capture_output=True, text=True, cwd=repo_root(),
            env={"PYTHONPATH": str(repo_root() / "src"),
                 "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "rg.unguarded-write" in proc.stdout + proc.stderr
