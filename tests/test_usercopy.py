"""usercopy edge cases: the mapping obligation at its boundaries.

Page-boundary spans, buffers with an unmapped middle page, zero-length
copies, and permission violations — the cases a per-page translation
loop gets wrong first, and the cases the ring's per-batch slot access
leans on.
"""

import pytest

from repro.core.pt.defs import Flags, PageSize, PAGE_SIZE
from repro.core.pt.impl import PageTable, SimpleFrameAllocator
from repro.hw.mem import PhysicalMemory
from repro.hw.mmu import Mmu
from repro.nros.syscall.usercopy import (
    UserCopyFault,
    copy_from_user,
    copy_to_user,
)

MB = 1024 * 1024
BASE = 0x40_0000


def make_space(pages):
    """Map `pages` entries of (frame, flags) at consecutive vaddrs from
    BASE; a None entry leaves a hole.  Returns (memory, mmu, root)."""
    memory = PhysicalMemory(8 * MB)
    alloc = SimpleFrameAllocator(memory)
    pt = PageTable(memory, alloc)
    for i, entry in enumerate(pages):
        if entry is None:
            continue
        frame, flags = entry
        pt.map_frame(BASE + i * PAGE_SIZE, frame, PageSize.SIZE_4K, flags)
    return memory, Mmu(memory), pt.root_paddr


class TestPageBoundarySpans:
    def test_copy_spans_two_pages(self):
        memory, mmu, root = make_space([
            (0x10_0000, Flags.user_rw()), (0x20_0000, Flags.user_rw()),
        ])
        data = bytes(range(200)) * 41  # 8200 bytes > 2 pages? no: 8200
        data = data[:6000]
        start = BASE + PAGE_SIZE - 3000  # straddles the boundary
        copy_to_user(memory, mmu, root, start, data)
        assert copy_from_user(memory, mmu, root, start, len(data)) == data
        # the two halves really landed in their *distinct* frames
        assert memory.read(0x10_0000 + PAGE_SIZE - 3000, 3000) == data[:3000]
        assert memory.read(0x20_0000, 3000) == data[3000:]

    def test_copy_spans_three_pages(self):
        memory, mmu, root = make_space([
            (0x10_0000, Flags.user_rw()),
            (0x30_0000, Flags.user_rw()),
            (0x20_0000, Flags.user_rw()),
        ])
        # 50 bytes on page 0, all of page 1, 50 bytes on page 2
        data = bytes([i % 251 for i in range(PAGE_SIZE + 100)])
        start = BASE + PAGE_SIZE - 50
        copy_to_user(memory, mmu, root, start, data)
        assert copy_from_user(memory, mmu, root, start, len(data)) == data

    def test_copy_up_to_exact_page_end(self):
        memory, mmu, root = make_space([(0x10_0000, Flags.user_rw())])
        copy_to_user(memory, mmu, root, BASE + PAGE_SIZE - 8, b"12345678")
        assert copy_from_user(memory, mmu, root,
                              BASE + PAGE_SIZE - 8, 8) == b"12345678"

    def test_copy_ending_one_past_page_end_faults(self):
        memory, mmu, root = make_space([(0x10_0000, Flags.user_rw())])
        with pytest.raises(UserCopyFault):
            copy_to_user(memory, mmu, root, BASE + PAGE_SIZE - 8, b"x" * 9)


class TestUnmappedHoles:
    def test_unmapped_middle_page_faults(self):
        memory, mmu, root = make_space([
            (0x10_0000, Flags.user_rw()), None, (0x20_0000, Flags.user_rw()),
        ])
        length = 3 * PAGE_SIZE
        with pytest.raises(UserCopyFault) as exc:
            copy_from_user(memory, mmu, root, BASE, length)
        assert exc.value.vaddr == BASE + PAGE_SIZE  # names the hole
        with pytest.raises(UserCopyFault):
            copy_to_user(memory, mmu, root, BASE, bytes(length))

    def test_write_before_hole_lands_read_after_hole_never_runs(self):
        """The copy loop is per-chunk: the fault identifies the first
        bad page, and bytes before it were already written (callers that
        need all-or-nothing must pre-resolve, as vm_unmap_batch does)."""
        memory, mmu, root = make_space([
            (0x10_0000, Flags.user_rw()), None,
        ])
        with pytest.raises(UserCopyFault):
            copy_to_user(memory, mmu, root, BASE, b"\xab" * (2 * PAGE_SIZE))
        assert memory.read(0x10_0000, 4) == b"\xab" * 4

    def test_wholly_unmapped_buffer_faults(self):
        memory, mmu, root = make_space([])
        with pytest.raises(UserCopyFault):
            copy_from_user(memory, mmu, root, BASE, 1)


class TestZeroLength:
    def test_zero_length_read_is_empty(self):
        memory, mmu, root = make_space([])
        # no translation happens, so even an unmapped vaddr is fine
        assert copy_from_user(memory, mmu, root, BASE, 0) == b""

    def test_zero_length_write_is_noop(self):
        memory, mmu, root = make_space([])
        copy_to_user(memory, mmu, root, BASE, b"")

    def test_negative_length_rejected(self):
        memory, mmu, root = make_space([(0x10_0000, Flags.user_rw())])
        with pytest.raises(ValueError):
            copy_from_user(memory, mmu, root, BASE, -1)


class TestPermissions:
    def test_write_to_readonly_page_faults(self):
        memory, mmu, root = make_space([
            (0x10_0000, Flags(writable=False, user=True)),
        ])
        with pytest.raises(UserCopyFault):
            copy_to_user(memory, mmu, root, BASE, b"x")
        # reading the same page is fine
        assert len(copy_from_user(memory, mmu, root, BASE, 8)) == 8

    def test_kernel_only_page_faults_both_directions(self):
        memory, mmu, root = make_space([
            (0x10_0000, Flags(writable=True, user=False)),
        ])
        with pytest.raises(UserCopyFault):
            copy_from_user(memory, mmu, root, BASE, 8)
        with pytest.raises(UserCopyFault):
            copy_to_user(memory, mmu, root, BASE, b"x")

    def test_readonly_page_inside_span_faults_write(self):
        memory, mmu, root = make_space([
            (0x10_0000, Flags.user_rw()),
            (0x20_0000, Flags(writable=False, user=True)),
        ])
        with pytest.raises(UserCopyFault) as exc:
            copy_to_user(memory, mmu, root, BASE, b"y" * (2 * PAGE_SIZE))
        assert exc.value.vaddr == BASE + PAGE_SIZE
        # the same span is readable end to end
        assert len(copy_from_user(memory, mmu, root, BASE,
                                  2 * PAGE_SIZE)) == 2 * PAGE_SIZE
