"""CDCL SAT solver tests, including random instances vs brute force."""

import itertools
import random

from repro.smt.sat import SatSolver


def brute_force_sat(num_vars, clauses):
    """Reference solver: try all assignments."""
    for bits in itertools.product([False, True], repeat=num_vars):
        ok = True
        for clause in clauses:
            if not any(bits[abs(l) - 1] == (l > 0) for l in clause):
                ok = False
                break
        if ok:
            return True
    return False


def check_model(model, clauses):
    for clause in clauses:
        assert any(model[abs(l)] == (l > 0) for l in clause), clause


class TestBasics:
    def test_empty_problem_sat(self):
        assert SatSolver(3).solve().sat

    def test_unit_clause(self):
        s = SatSolver(1)
        s.add_clause([1])
        result = s.solve()
        assert result.sat
        assert result.model[1] is True

    def test_contradiction(self):
        s = SatSolver(1)
        s.add_clause([1])
        s.add_clause([-1])
        assert not s.solve().sat

    def test_empty_clause_unsat(self):
        s = SatSolver(1)
        s.add_clause([])
        assert not s.solve().sat

    def test_tautology_dropped(self):
        s = SatSolver(2)
        s.add_clause([1, -1])
        assert s.solve().sat

    def test_duplicate_literals_cleaned(self):
        s = SatSolver(2)
        s.add_clause([1, 1, 2])
        result = s.solve()
        assert result.sat
        check_model(result.model, [[1, 2]])

    def test_simple_implication_chain(self):
        s = SatSolver(5)
        s.add_clause([1])
        for v in range(1, 5):
            s.add_clause([-v, v + 1])
        result = s.solve()
        assert result.sat
        assert all(result.model[v] for v in range(1, 6))

    def test_out_of_range_literal(self):
        s = SatSolver(1)
        try:
            s.add_clause([2])
        except ValueError:
            return
        raise AssertionError("expected ValueError")


class TestPigeonhole:
    def _pigeonhole(self, holes):
        """PHP(holes+1, holes): classic small UNSAT family."""
        pigeons = holes + 1
        var = lambda p, h: p * holes + h + 1
        clauses = []
        for p in range(pigeons):
            clauses.append([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        return pigeons * holes, clauses

    def test_php_3(self):
        num_vars, clauses = self._pigeonhole(3)
        s = SatSolver(num_vars)
        for c in clauses:
            s.add_clause(c)
        assert not s.solve().sat

    def test_php_4(self):
        num_vars, clauses = self._pigeonhole(4)
        s = SatSolver(num_vars)
        for c in clauses:
            s.add_clause(c)
        result = s.solve()
        assert not result.sat
        assert result.stats.conflicts > 0


class TestRandomAgainstBruteForce:
    def test_random_3sat(self):
        rng = random.Random(1234)
        for trial in range(120):
            num_vars = rng.randint(3, 9)
            num_clauses = rng.randint(1, int(num_vars * 4.5))
            clauses = []
            for _ in range(num_clauses):
                width = rng.randint(1, 3)
                clause_vars = rng.sample(range(1, num_vars + 1),
                                         min(width, num_vars))
                clauses.append([v if rng.random() < 0.5 else -v
                                for v in clause_vars])
            solver = SatSolver(num_vars)
            for c in clauses:
                solver.add_clause(c)
            result = solver.solve()
            expected = brute_force_sat(num_vars, clauses)
            assert result.sat == expected, (trial, clauses)
            if result.sat:
                check_model(result.model, clauses)

    def test_random_wide_clauses(self):
        rng = random.Random(99)
        for _ in range(40):
            num_vars = rng.randint(8, 12)
            clauses = []
            for _ in range(rng.randint(5, 30)):
                clause_vars = rng.sample(range(1, num_vars + 1), rng.randint(2, 6))
                clauses.append([v if rng.random() < 0.5 else -v
                                for v in clause_vars])
            solver = SatSolver(num_vars)
            for c in clauses:
                solver.add_clause(c)
            result = solver.solve()
            assert result.sat == brute_force_sat(num_vars, clauses)
            if result.sat:
                check_model(result.model, clauses)


class TestHarderStructured:
    def test_xor_chain_unsat(self):
        """x1 ^ x2, x2 ^ x3, ..., plus parity contradiction."""
        n = 12
        s = SatSolver(n)
        # xi != xi+1 encoded as two clauses each
        for v in range(1, n):
            s.add_clause([v, v + 1])
            s.add_clause([-v, -(v + 1)])
        # force x1 == xn: with odd chain length, contradiction if n even.
        s.add_clause([1, -n])
        s.add_clause([-1, n])
        # alternation makes x1 != xn for even n, so this is UNSAT
        assert not s.solve().sat

    def test_at_most_one_big(self):
        n = 20
        s = SatSolver(n)
        s.add_clause(list(range(1, n + 1)))
        for i in range(1, n + 1):
            for j in range(i + 1, n + 1):
                s.add_clause([-i, -j])
        result = s.solve()
        assert result.sat
        assert sum(result.model[v] for v in range(1, n + 1)) == 1

    def test_stats_populated(self):
        num_vars = 4
        s = SatSolver(num_vars)
        s.add_clause([1, 2])
        s.add_clause([-1, 3])
        s.add_clause([-3, -2, 4])
        result = s.solve()
        assert result.sat
        assert result.stats.propagations >= 0
