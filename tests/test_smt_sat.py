"""CDCL SAT solver tests, including random instances vs brute force."""

import itertools
import random

from repro.smt.sat import SatSolver


def brute_force_sat(num_vars, clauses):
    """Reference solver: try all assignments."""
    for bits in itertools.product([False, True], repeat=num_vars):
        ok = True
        for clause in clauses:
            if not any(bits[abs(l) - 1] == (l > 0) for l in clause):
                ok = False
                break
        if ok:
            return True
    return False


def check_model(model, clauses):
    for clause in clauses:
        assert any(model[abs(l)] == (l > 0) for l in clause), clause


class TestBasics:
    def test_empty_problem_sat(self):
        assert SatSolver(3).solve().sat

    def test_unit_clause(self):
        s = SatSolver(1)
        s.add_clause([1])
        result = s.solve()
        assert result.sat
        assert result.model[1] is True

    def test_contradiction(self):
        s = SatSolver(1)
        s.add_clause([1])
        s.add_clause([-1])
        assert not s.solve().sat

    def test_empty_clause_unsat(self):
        s = SatSolver(1)
        s.add_clause([])
        assert not s.solve().sat

    def test_tautology_dropped(self):
        s = SatSolver(2)
        s.add_clause([1, -1])
        assert s.solve().sat

    def test_duplicate_literals_cleaned(self):
        s = SatSolver(2)
        s.add_clause([1, 1, 2])
        result = s.solve()
        assert result.sat
        check_model(result.model, [[1, 2]])

    def test_simple_implication_chain(self):
        s = SatSolver(5)
        s.add_clause([1])
        for v in range(1, 5):
            s.add_clause([-v, v + 1])
        result = s.solve()
        assert result.sat
        assert all(result.model[v] for v in range(1, 6))

    def test_out_of_range_literal(self):
        s = SatSolver(1)
        try:
            s.add_clause([2])
        except ValueError:
            return
        raise AssertionError("expected ValueError")


class TestPigeonhole:
    def _pigeonhole(self, holes):
        """PHP(holes+1, holes): classic small UNSAT family."""
        pigeons = holes + 1
        var = lambda p, h: p * holes + h + 1
        clauses = []
        for p in range(pigeons):
            clauses.append([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        return pigeons * holes, clauses

    def test_php_3(self):
        num_vars, clauses = self._pigeonhole(3)
        s = SatSolver(num_vars)
        for c in clauses:
            s.add_clause(c)
        assert not s.solve().sat

    def test_php_4(self):
        num_vars, clauses = self._pigeonhole(4)
        s = SatSolver(num_vars)
        for c in clauses:
            s.add_clause(c)
        result = s.solve()
        assert not result.sat
        assert result.stats.conflicts > 0


class TestRandomAgainstBruteForce:
    def test_random_3sat(self):
        rng = random.Random(1234)
        for trial in range(120):
            num_vars = rng.randint(3, 9)
            num_clauses = rng.randint(1, int(num_vars * 4.5))
            clauses = []
            for _ in range(num_clauses):
                width = rng.randint(1, 3)
                clause_vars = rng.sample(range(1, num_vars + 1),
                                         min(width, num_vars))
                clauses.append([v if rng.random() < 0.5 else -v
                                for v in clause_vars])
            solver = SatSolver(num_vars)
            for c in clauses:
                solver.add_clause(c)
            result = solver.solve()
            expected = brute_force_sat(num_vars, clauses)
            assert result.sat == expected, (trial, clauses)
            if result.sat:
                check_model(result.model, clauses)

    def test_random_wide_clauses(self):
        rng = random.Random(99)
        for _ in range(40):
            num_vars = rng.randint(8, 12)
            clauses = []
            for _ in range(rng.randint(5, 30)):
                clause_vars = rng.sample(range(1, num_vars + 1), rng.randint(2, 6))
                clauses.append([v if rng.random() < 0.5 else -v
                                for v in clause_vars])
            solver = SatSolver(num_vars)
            for c in clauses:
                solver.add_clause(c)
            result = solver.solve()
            assert result.sat == brute_force_sat(num_vars, clauses)
            if result.sat:
                check_model(result.model, clauses)


class TestHarderStructured:
    def test_xor_chain_unsat(self):
        """x1 ^ x2, x2 ^ x3, ..., plus parity contradiction."""
        n = 12
        s = SatSolver(n)
        # xi != xi+1 encoded as two clauses each
        for v in range(1, n):
            s.add_clause([v, v + 1])
            s.add_clause([-v, -(v + 1)])
        # force x1 == xn: with odd chain length, contradiction if n even.
        s.add_clause([1, -n])
        s.add_clause([-1, n])
        # alternation makes x1 != xn for even n, so this is UNSAT
        assert not s.solve().sat

    def test_at_most_one_big(self):
        n = 20
        s = SatSolver(n)
        s.add_clause(list(range(1, n + 1)))
        for i in range(1, n + 1):
            for j in range(i + 1, n + 1):
                s.add_clause([-i, -j])
        result = s.solve()
        assert result.sat
        assert sum(result.model[v] for v in range(1, n + 1)) == 1

    def test_stats_populated(self):
        num_vars = 4
        s = SatSolver(num_vars)
        s.add_clause([1, 2])
        s.add_clause([-1, 3])
        s.add_clause([-3, -2, 4])
        result = s.solve()
        assert result.sat
        assert result.stats.propagations >= 0


class TestAssumptions:
    def php_clauses(self, holes):
        """Pigeonhole clauses for holes+1 pigeons (UNSAT, non-trivial)."""
        pigeons = holes + 1
        var = lambda p, h: p * holes + h + 1
        clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
        for h in range(holes):
            for p in range(pigeons):
                for q in range(p + 1, pigeons):
                    clauses.append([-var(p, h), -var(q, h)])
        return pigeons * holes, clauses

    def test_assumption_solving_matches_unit_clauses(self):
        """solve(assumptions=[a, ...]) must agree with a fresh solver where
        the assumptions are asserted as units — on both verdict and (via the
        model check) on satisfying the clauses."""
        rng = random.Random(5)
        for _ in range(120):
            num_vars = rng.randint(2, 8)
            clauses = []
            for _ in range(rng.randint(2, 20)):
                size = rng.randint(1, 3)
                clauses.append([
                    rng.randint(1, num_vars) * rng.choice([1, -1])
                    for _ in range(size)
                ])
            assumed = sorted(rng.sample(range(1, num_vars + 1),
                                        rng.randint(1, num_vars)))
            assumptions = [v * rng.choice([1, -1]) for v in assumed]

            incremental = SatSolver(num_vars)
            for clause in clauses:
                incremental.add_clause(clause)
            got = incremental.solve(assumptions=assumptions)

            expected = brute_force_sat(
                num_vars, clauses + [[a] for a in assumptions])
            assert got.sat == expected, (clauses, assumptions)
            if got.sat:
                check_model(got.model, clauses + [[a] for a in assumptions])

    def test_solver_reusable_across_assumption_calls(self):
        """One long-lived solver queried under different assumptions must
        answer each query as a fresh solver would (learnt clauses are
        consequences of the clause set alone, never of past assumptions)."""
        rng = random.Random(17)
        num_vars = 8
        clauses = []
        for _ in range(24):
            clauses.append([
                rng.randint(1, num_vars) * rng.choice([1, -1])
                for _ in range(3)
            ])
        shared = SatSolver(num_vars)
        for clause in clauses:
            shared.add_clause(clause)
        for _ in range(30):
            lit = rng.randint(1, num_vars) * rng.choice([1, -1])
            expected = brute_force_sat(num_vars, clauses + [[lit]])
            result = shared.solve(assumptions=[lit])
            assert result.sat == expected, lit
            if result.sat:
                check_model(result.model, clauses + [[lit]])
        # the solver itself is still intact for an unconstrained query
        assert shared.solve().sat == brute_force_sat(num_vars, clauses)

    def test_conflicting_assumptions_unsat_but_recoverable(self):
        s = SatSolver(3)
        s.add_clause([1, 2])
        assert not s.solve(assumptions=[1, -1]).sat
        assert s.solve().sat

    def test_assumption_out_of_range_rejected(self):
        s = SatSolver(2)
        s.add_clause([1, 2])
        try:
            s.solve(assumptions=[5])
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")

    def test_budget_is_per_call_not_lifetime(self):
        """A conflict budget counts from call entry: spending conflicts in
        one call must not starve the next call's budget."""
        from repro.smt.sat import BudgetExceeded

        num_vars, clauses = self.php_clauses(5)
        s = SatSolver(num_vars)
        for clause in clauses:
            s.add_clause(clause)
        try:
            s.solve(max_conflicts=3)
        except BudgetExceeded:
            pass
        else:
            raise AssertionError("php(5) should exceed 3 conflicts")
        # same budget, fresh call: must get its own 3 conflicts, then a
        # larger per-call budget decides the instance outright
        try:
            s.solve(max_conflicts=3)
        except BudgetExceeded:
            pass
        assert not s.solve(max_conflicts=100_000).sat
