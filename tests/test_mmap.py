"""File-backed memory mapping tests (mmap_file / msync)."""

import pytest

from repro.nros.fs.fd import O_CREAT, O_RDWR
from repro.nros.kernel import Kernel
from repro.nros.syscall.abi import EFAULT, EISDIR, ENOENT, SyscallError, sys


def run(prog):
    kernel = Kernel()
    kernel.register_program("p", prog)
    kernel.spawn("p")
    kernel.run()
    return kernel


class TestMmap:
    def test_mmap_reads_file_contents(self):
        results = {}

        def prog():
            fd = yield sys("open", "/data", O_CREAT | O_RDWR)
            yield sys("write", fd, b"ABCDEFGH" + b"z" * 100)
            yield sys("close", fd)
            vaddr, length = yield sys("mmap_file", "/data")
            results["length"] = length
            results["word"] = yield sys("peek", vaddr)

        run(prog)
        assert results["length"] == 108
        assert results["word"] == int.from_bytes(b"ABCDEFGH", "little")

    def test_mmap_multi_page(self):
        results = {}

        def prog():
            fd = yield sys("open", "/big", O_CREAT | O_RDWR)
            yield sys("seek", fd, 5000)
            yield sys("write", fd, b"PAGE2WRD")
            yield sys("close", fd)
            vaddr, length = yield sys("mmap_file", "/big")
            results["length"] = length
            # word lives on the second page
            results["word"] = yield sys("peek", vaddr + 5000)
            # the hole reads as zeros
            results["hole"] = yield sys("peek", vaddr + 8)

        run(prog)
        assert results["length"] == 5008
        assert results["word"] == int.from_bytes(b"PAGE2WRD", "little")
        assert results["hole"] == 0

    def test_readonly_mapping_rejects_writes(self):
        errors = []

        def prog():
            fd = yield sys("open", "/ro", O_CREAT | O_RDWR)
            yield sys("write", fd, b"data")
            yield sys("close", fd)
            vaddr, _ = yield sys("mmap_file", "/ro")
            try:
                yield sys("poke", vaddr, 1)
            except SyscallError as exc:
                errors.append(exc.errno)

        run(prog)
        assert errors == [EFAULT]

    def test_writable_mapping_and_msync(self):
        results = {}

        def prog():
            fd = yield sys("open", "/rw", O_CREAT | O_RDWR)
            yield sys("write", fd, b"original")
            yield sys("close", fd)
            vaddr, length = yield sys("mmap_file", "/rw", True)
            yield sys("poke", vaddr, int.from_bytes(b"MODIFIED", "little"))
            yield sys("msync", "/rw", vaddr, length)
            fd = yield sys("open", "/rw", O_RDWR)
            results["after"] = yield sys("read", fd, 100)

        run(prog)
        assert results["after"] == b"MODIFIED"

    def test_mapping_is_a_snapshot(self):
        """Without msync, later file writes do not appear in the mapping
        (and vice versa) — our mmap is copy-based, documented as such."""
        results = {}

        def prog():
            fd = yield sys("open", "/snap", O_CREAT | O_RDWR)
            yield sys("write", fd, b"AAAAAAAA")
            yield sys("seek", fd, 0)
            vaddr, _ = yield sys("mmap_file", "/snap")
            yield sys("write", fd, b"BBBBBBBB")
            results["mapped"] = yield sys("peek", vaddr)

        run(prog)
        assert results["mapped"] == int.from_bytes(b"AAAAAAAA", "little")

    def test_mmap_missing_file(self):
        errors = []

        def prog():
            try:
                yield sys("mmap_file", "/ghost")
            except SyscallError as exc:
                errors.append(exc.errno)

        run(prog)
        assert errors == [ENOENT]

    def test_mmap_directory_rejected(self):
        errors = []

        def prog():
            yield sys("mkdir", "/d")
            try:
                yield sys("mmap_file", "/d")
            except SyscallError as exc:
                errors.append(exc.errno)

        run(prog)
        assert errors == [EISDIR]

    def test_unmap_mapped_file_pages(self):
        results = {}

        def prog():
            fd = yield sys("open", "/f", O_CREAT | O_RDWR)
            yield sys("write", fd, b"x")
            yield sys("close", fd)
            vaddr, _ = yield sys("mmap_file", "/f")
            yield sys("vm_unmap", vaddr)
            try:
                yield sys("peek", vaddr)
            except SyscallError as exc:
                results["errno"] = exc.errno

        kernel = run(prog)
        assert results["errno"] == EFAULT
        # the frame went back to the allocator
        assert kernel.frames.check_integrity() is None
