"""Scheduler unit tests: priorities, aging, affinity, fairness."""

import pytest

from repro.nros.proc.process import BlockReason, Process, Thread, ThreadState
from repro.nros.sched.scheduler import AGING_THRESHOLD, Scheduler


class _FakeProcess:
    def __init__(self):
        self.name = "fake"
        self.pid = 0


def make_thread(name=""):
    def gen():
        yield

    return Thread(_FakeProcess(), gen(), name=name)


class TestBasics:
    def test_round_robin_same_priority(self):
        sched = Scheduler(num_cores=1)
        a, b = make_thread("a"), make_thread("b")
        sched.ready(a)
        sched.ready(b)
        first = sched.next_thread()
        sched.ready(first)
        second = sched.next_thread()
        assert {first.name, second.name} == {"a", "b"}
        assert first is not second

    def test_empty(self):
        sched = Scheduler(num_cores=2)
        assert sched.next_thread() is None
        assert not sched.has_runnable()

    def test_bad_core_count(self):
        with pytest.raises(ValueError):
            Scheduler(num_cores=0)

    def test_affinity_sticks(self):
        sched = Scheduler(num_cores=4)
        thread = make_thread()
        first = sched.assign_core(thread)
        assert sched.assign_core(thread) == first
        assert sched.core_of(thread) == first

    def test_least_loaded_placement(self):
        sched = Scheduler(num_cores=2)
        threads = [make_thread(str(i)) for i in range(4)]
        for t in threads:
            sched.ready(t)
        cores = {sched.core_of(t) for t in threads}
        assert cores == {0, 1}  # spread across both cores

    def test_block_wake(self):
        sched = Scheduler(num_cores=1)
        thread = make_thread()
        sched.ready(thread)
        assert sched.next_thread() is thread
        sched.block(thread, BlockReason("sleep", 5))
        assert thread.state is ThreadState.BLOCKED
        assert sched.blocked_count() == 1
        sched.wake(thread, ("value", 42))
        assert thread.state is ThreadState.READY
        assert thread.pending == ("value", 42)
        assert sched.blocked_count() == 0

    def test_wake_non_blocked_is_noop(self):
        sched = Scheduler(num_cores=1)
        thread = make_thread()
        sched.ready(thread)
        sched.wake(thread)  # READY, not BLOCKED
        assert sched.next_thread() is thread
        assert sched.next_thread() is None  # not double-queued


class TestPriorities:
    def test_higher_priority_runs_first(self):
        sched = Scheduler(num_cores=1)
        low, high = make_thread("low"), make_thread("high")
        sched.set_priority(low, 2)
        sched.set_priority(high, 0)
        sched.ready(low)
        sched.ready(high)
        assert sched.next_thread() is high

    def test_priority_validated(self):
        sched = Scheduler(num_cores=1)
        with pytest.raises(ValueError):
            sched.set_priority(make_thread(), 5)

    def test_aging_prevents_starvation(self):
        sched = Scheduler(num_cores=1)
        hog = make_thread("hog")
        starved = make_thread("starved")
        sched.set_priority(hog, 0)
        sched.set_priority(starved, 2)
        sched.ready(hog)
        sched.ready(starved)
        for _ in range(3 * AGING_THRESHOLD):
            thread = sched.next_thread()
            if thread is starved:
                break
            sched.ready(thread)  # the hog keeps running
        else:
            raise AssertionError("low-priority thread starved")
        assert sched.promotions >= 1

    def test_forget_clears_state(self):
        sched = Scheduler(num_cores=1)
        thread = make_thread()
        sched.set_priority(thread, 0)
        sched.ready(thread)
        sched.next_thread()
        sched.forget(thread)
        assert sched.priority_of(thread) == 1  # back to default


class TestSetPrioritySyscall:
    def test_setpriority_via_kernel(self):
        from repro.nros.kernel import Kernel
        from repro.nros.syscall.abi import SyscallError, sys

        errors = []

        def prog():
            yield sys("setpriority", 0)
            try:
                yield sys("setpriority", 9)
            except SyscallError as exc:
                errors.append(exc.errno)

        from repro.nros.syscall.abi import EINVAL
        kernel = Kernel()
        kernel.register_program("p", prog)
        kernel.spawn("p")
        kernel.run()
        assert errors == [EINVAL]
