"""Scheduler unit tests: fair class, RT classes, affinity, migration.

The seed's behavioral tests are kept where the contract is unchanged
(round-robin among equals, block/wake, affinity, the ``setpriority``
syscall's EINVAL) and adapted where the multi-class scheduler refines
the semantics: strict priority ordering became weighted fair sharing,
and the old aging-based starvation test became the RT-throttle /
min-vruntime starvation-freedom regression.
"""

import pytest

from repro.nros.proc.process import BlockReason, Thread, ThreadState
from repro.nros.sched.entity import (
    NICE_TO_WEIGHT,
    RT_THROTTLE_STREAK,
    SchedPolicy,
)
from repro.nros.sched.scheduler import Scheduler


class _FakeProcess:
    def __init__(self):
        self.name = "fake"
        self.pid = 0


def make_thread(name=""):
    def gen():
        yield

    return Thread(_FakeProcess(), gen(), name=name)


def run_quanta(sched, count, core=None):
    """Drive `count` picks, immediately requeueing each picked thread
    (a busy workload); returns the picked threads in order."""
    picked = []
    for _ in range(count):
        thread = sched.next_thread(core=core) if core is not None \
            else sched.next_thread()
        if thread is None:
            break
        picked.append(thread)
        sched.ready(thread)
    return picked


class TestBasics:
    def test_round_robin_same_priority(self):
        sched = Scheduler(num_cores=1)
        a, b = make_thread("a"), make_thread("b")
        sched.ready(a)
        sched.ready(b)
        first = sched.next_thread()
        sched.ready(first)
        second = sched.next_thread()
        assert {first.name, second.name} == {"a", "b"}
        assert first is not second

    def test_empty(self):
        sched = Scheduler(num_cores=2)
        assert sched.next_thread() is None
        assert not sched.has_runnable()

    def test_bad_core_count(self):
        with pytest.raises(ValueError):
            Scheduler(num_cores=0)

    def test_affinity_sticks(self):
        sched = Scheduler(num_cores=4)
        thread = make_thread()
        first = sched.assign_core(thread)
        assert sched.assign_core(thread) == first
        assert sched.core_of(thread) == first

    def test_least_loaded_placement(self):
        sched = Scheduler(num_cores=2)
        threads = [make_thread(str(i)) for i in range(4)]
        for t in threads:
            sched.ready(t)
        cores = {sched.core_of(t) for t in threads}
        assert cores == {0, 1}  # spread across both cores

    def test_block_wake(self):
        sched = Scheduler(num_cores=1)
        thread = make_thread()
        sched.ready(thread)
        assert sched.next_thread() is thread
        sched.block(thread, BlockReason("sleep", 5))
        assert thread.state is ThreadState.BLOCKED
        assert sched.blocked_count() == 1
        sched.wake(thread, ("value", 42))
        assert thread.state is ThreadState.READY
        assert thread.pending == ("value", 42)
        assert sched.blocked_count() == 0

    def test_wake_non_blocked_is_noop(self):
        sched = Scheduler(num_cores=1)
        thread = make_thread()
        sched.ready(thread)
        sched.wake(thread)  # READY, not BLOCKED
        assert sched.next_thread() is thread
        assert sched.next_thread() is None  # not double-queued

    def test_ready_is_idempotent(self):
        sched = Scheduler(num_cores=1)
        thread = make_thread()
        sched.ready(thread)
        sched.ready(thread)
        assert sched.runnable_count() == 1
        assert sched.next_thread() is thread
        assert sched.next_thread() is None
        assert sched.audit() == []


class TestFairClass:
    def test_nice_weights_drive_cpu_share(self):
        sched = Scheduler(num_cores=1)
        fast = make_thread("fast")    # nice -5: ~3x the weight of 0
        slow = make_thread("slow")
        sched.set_nice(fast, -5)
        sched.set_nice(slow, 0)
        sched.ready(fast)
        sched.ready(slow)
        picks = run_quanta(sched, 400)
        share = sum(1 for t in picks if t is fast) / len(picks)
        ideal = NICE_TO_WEIGHT[-5] / (NICE_TO_WEIGHT[-5]
                                      + NICE_TO_WEIGHT[0])
        assert abs(share - ideal) < 0.05
        assert sched.audit() == []

    def test_legacy_priorities_still_bias_share(self):
        # the seed's strict-priority semantics refine to weighted
        # sharing: level 0 dominates level 2 without starving it
        sched = Scheduler(num_cores=1)
        high, low = make_thread("high"), make_thread("low")
        sched.set_priority(high, 0)
        sched.set_priority(low, 2)
        sched.ready(high)
        sched.ready(low)
        picks = run_quanta(sched, 300)
        high_count = sum(1 for t in picks if t is high)
        low_count = len(picks) - high_count
        assert high_count > 5 * low_count
        assert low_count >= 1

    def test_priority_validated(self):
        sched = Scheduler(num_cores=1)
        with pytest.raises(ValueError):
            sched.set_priority(make_thread(), 5)

    def test_sleeper_gets_latency_bonus(self):
        sched = Scheduler(num_cores=1)
        sleeper = make_thread("sleeper")
        busy = [make_thread(f"busy{i}") for i in range(3)]
        for t in busy:
            sched.ready(t)
        sched.ready(sleeper)
        assert sched.next_thread() is not None
        sched.block(sleeper, BlockReason("sleep", 1))
        run_quanta(sched, 100)
        sched.wake(sleeper)
        # the woken sleeper is clamped near the queue minimum: it runs
        # within a couple of picks instead of repaying 100 quanta
        picks = run_quanta(sched, 4)
        assert sleeper in picks

    def test_starvation_regression_busy_high_priority_hog(self):
        # satellite: the seed's aging test, re-targeted — a busy-looping
        # high-priority thread must not starve a low-priority one
        sched = Scheduler(num_cores=1)
        hog = make_thread("hog")
        starved = make_thread("starved")
        sched.set_priority(hog, 0)
        sched.set_priority(starved, 2)
        sched.ready(hog)
        sched.ready(starved)
        picks = run_quanta(sched, 200)
        assert starved in picks, "low-priority thread starved"

    def test_forget_clears_state(self):
        sched = Scheduler(num_cores=1)
        thread = make_thread()
        sched.set_priority(thread, 0)
        sched.ready(thread)
        sched.next_thread()
        sched.forget(thread)
        assert sched.priority_of(thread) == 1  # back to default


class TestRtClasses:
    def test_rt_preempts_fair(self):
        sched = Scheduler(num_cores=1)
        fair = make_thread("fair")
        rt = make_thread("rt")
        sched.set_policy(rt, SchedPolicy.FIFO, rt_prio=10)
        sched.ready(fair)
        sched.ready(rt)
        assert sched.next_thread() is rt
        assert sched.preemptions == 1

    def test_higher_rt_prio_first(self):
        sched = Scheduler(num_cores=1)
        lo = make_thread("lo")
        hi = make_thread("hi")
        sched.set_policy(lo, "fifo", rt_prio=5)
        sched.set_policy(hi, "fifo", rt_prio=50)
        sched.ready(lo)
        sched.ready(hi)
        assert sched.next_thread() is hi

    def test_fifo_runs_until_block(self):
        sched = Scheduler(num_cores=1)
        a, b = make_thread("a"), make_thread("b")
        for t in (a, b):
            sched.set_policy(t, SchedPolicy.FIFO, rt_prio=7)
            sched.ready(t)
        # a keeps the CPU across voluntary requeues until it blocks
        assert run_quanta(sched, 5) == [a] * 5
        sched.block(a, BlockReason("sleep", 1))
        assert sched.next_thread() is b

    def test_rr_rotates_within_priority(self):
        sched = Scheduler(num_cores=1)
        a, b = make_thread("a"), make_thread("b")
        for t in (a, b):
            sched.set_policy(t, SchedPolicy.RR, rt_prio=7)
            sched.ready(t)
        picks = run_quanta(sched, 24)
        assert a in picks and b in picks
        # both get whole slices, not quantum-by-quantum alternation
        assert picks.count(a) == picks.count(b)

    def test_rt_throttle_keeps_fair_alive(self):
        # starvation freedom for the fair class: a busy-looping RT
        # thread yields one pick to fair every RT_THROTTLE_STREAK
        sched = Scheduler(num_cores=1)
        rt_hog = make_thread("rt_hog")
        fair = make_thread("fair")
        sched.set_policy(rt_hog, SchedPolicy.FIFO, rt_prio=99)
        sched.ready(rt_hog)
        sched.ready(fair)
        picks = run_quanta(sched, 4 * (RT_THROTTLE_STREAK + 1))
        assert fair in picks, "fair thread starved by RT hog"
        assert picks[:RT_THROTTLE_STREAK] == [rt_hog] * RT_THROTTLE_STREAK
        assert sched.rt_throttles >= 1

    def test_policy_validated(self):
        sched = Scheduler(num_cores=1)
        thread = make_thread()
        with pytest.raises(ValueError):
            sched.set_policy(thread, "fifo", rt_prio=0)
        with pytest.raises(ValueError):
            sched.set_policy(thread, "fifo", rt_prio=100)
        with pytest.raises(ValueError):
            sched.set_policy(thread, "fair", nice=40)
        with pytest.raises(ValueError):
            sched.set_policy(thread, "deadline", rt_prio=1)

    def test_policy_switch_requeues(self):
        sched = Scheduler(num_cores=1)
        a, b = make_thread("a"), make_thread("b")
        sched.ready(a)
        sched.ready(b)
        sched.set_policy(b, SchedPolicy.FIFO, rt_prio=3)
        assert sched.next_thread() is b
        assert sched.policy_of(b) == ("fifo", 3)
        sched.set_policy(b, SchedPolicy.FAIR, nice=0)
        assert sched.policy_of(b) == ("fair", 0)
        assert sched.audit() == []


class TestForgetPurges:
    def test_forget_purges_queued_thread(self):
        # satellite fix: exited threads no longer linger in runqueues
        sched = Scheduler(num_cores=2)
        threads = [make_thread(str(i)) for i in range(3)]
        for t in threads:
            sched.ready(t)
        sched.forget(threads[0])
        assert sched.runnable_count() == 2
        assert sched.has_runnable()
        sched.forget(threads[1])
        sched.forget(threads[2])
        assert not sched.has_runnable()
        assert sched.next_thread() is None
        assert sched.audit() == []

    def test_exited_thread_not_requeued(self):
        sched = Scheduler(num_cores=1)
        thread = make_thread()
        sched.ready(thread)
        assert sched.next_thread() is thread
        thread.state = ThreadState.EXITED
        sched.forget(thread)
        sched.ready(thread)   # the seed contract: a no-op
        assert not sched.has_runnable()

    def test_forget_rt_thread(self):
        sched = Scheduler(num_cores=1)
        rt = make_thread("rt")
        sched.set_policy(rt, SchedPolicy.RR, rt_prio=20)
        sched.ready(rt)
        sched.forget(rt)
        assert not sched.has_runnable()
        assert sched.audit() == []


class TestMigration:
    def test_steal_fills_idle_core(self):
        sched = Scheduler(num_cores=2)
        threads = [make_thread(str(i)) for i in range(4)]
        for t in threads:
            sched.ready(t)
        # drain core 1, then keep picking on it: core 0's surplus
        # migrates over instead of leaving core 1 idle
        for _ in range(8):
            thread = sched.next_thread(core=1)
            if thread is None:
                break
        assert sched.steals >= 1
        assert sched.audit() == []

    def test_never_steals_last_thread(self):
        sched = Scheduler(num_cores=2)
        only = make_thread("only")
        sched.ready(only)
        assert sched.core_of(only) == 0
        other = 1
        assert sched.next_thread(core=other) is None
        assert sched.steals == 0

    def test_periodic_balance_spreads_load(self):
        sched = Scheduler(num_cores=2)
        threads = [make_thread(str(i)) for i in range(6)]
        for t in threads:
            sched.ready(t)
        # unbalance: forget everything on core 1
        for t in threads:
            if sched.core_of(t) == 1:
                sched.forget(t)
        survivors = [t for t in threads if t.tid in sched._entities]
        run_quanta(sched, 200)
        assert sched.migrations >= 1
        assert {sched.core_of(t) for t in survivors} == {0, 1}
        assert sched.audit() == []


class TestSetPrioritySyscall:
    def test_setpriority_via_kernel(self):
        from repro.nros.kernel import Kernel
        from repro.nros.syscall.abi import SyscallError, sys

        errors = []

        def prog():
            yield sys("setpriority", 0)
            try:
                yield sys("setpriority", 9)
            except SyscallError as exc:
                errors.append(exc.errno)

        from repro.nros.syscall.abi import EINVAL
        kernel = Kernel()
        kernel.register_program("p", prog)
        kernel.spawn("p")
        kernel.run()
        assert errors == [EINVAL]


class TestSchedSyscalls:
    def test_sched_setscheduler_roundtrip(self):
        from repro.nros.kernel import Kernel
        from repro.nros.syscall.abi import SyscallError, sys

        seen = []

        def prog():
            seen.append((yield sys("sched_getscheduler")))
            yield sys("sched_setscheduler", "fifo", 30)
            seen.append((yield sys("sched_getscheduler")))
            yield sys("sched_setscheduler", "fair", -5)
            seen.append((yield sys("sched_getscheduler")))
            try:
                yield sys("sched_setscheduler", "fifo", 0)
            except SyscallError as exc:
                seen.append(("err", exc.errno))

        from repro.nros.syscall.abi import EINVAL
        kernel = Kernel()
        kernel.register_program("p", prog)
        kernel.spawn("p")
        kernel.run()
        assert seen == [("fair", 0), ("fifo", 30), ("fair", -5),
                        ("err", EINVAL)]

    def test_rt_program_preempts_fair_program(self):
        from repro.nros.kernel import Kernel
        from repro.nros.syscall.abi import sys

        order = []

        def make_prog(tag, policy=None, prio=0):
            def prog():
                if policy is not None:
                    yield sys("sched_setscheduler", policy, prio)
                for _ in range(3):
                    order.append(tag)
                    yield sys("sched_yield")
            return prog

        kernel = Kernel(num_cores=1)
        kernel.register_program("fairp", make_prog("F"))
        kernel.register_program("rtp", make_prog("R", "fifo", 40))
        kernel.spawn("fairp")
        kernel.spawn("rtp")
        kernel.run()
        # once the RT program has set its class, it finishes its
        # remaining appends before the fair program runs again
        first_r = order.index("R")
        assert order[first_r:first_r + 3] == ["R", "R", "R"]
