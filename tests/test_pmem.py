"""Buddy allocator tests, including hypothesis-driven integrity checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pt.defs import PAGE_SIZE
from repro.hw.mem import PhysicalMemory
from repro.nros.pmem import BuddyAllocator, OutOfMemory

MB = 1024 * 1024


def make(size=4 * MB, start=0):
    mem = PhysicalMemory(size)
    return BuddyAllocator(mem, start=start)


class TestBasics:
    def test_alloc_distinct_frames(self):
        alloc = make()
        frames = [alloc.alloc_frame() for _ in range(16)]
        assert len(set(frames)) == 16
        assert all(f % PAGE_SIZE == 0 for f in frames)

    def test_free_and_reuse(self):
        alloc = make()
        frame = alloc.alloc_frame()
        alloc.free_frame(frame)
        assert alloc.alloc_frame() == frame

    def test_double_free_rejected(self):
        alloc = make()
        frame = alloc.alloc_frame()
        alloc.free_frame(frame)
        with pytest.raises(ValueError):
            alloc.free_frame(frame)

    def test_free_unallocated_rejected(self):
        alloc = make()
        with pytest.raises(ValueError):
            alloc.free_frame(0x1000)

    def test_orders(self):
        alloc = make()
        block = alloc.alloc_block(3)  # 8 frames
        assert block % (PAGE_SIZE << 3) == 0
        alloc.free_block(block)

    def test_order_out_of_range(self):
        alloc = make()
        with pytest.raises(ValueError):
            alloc.alloc_block(BuddyAllocator.MAX_ORDER + 1)
        with pytest.raises(ValueError):
            alloc.alloc_block(-1)

    def test_exhaustion(self):
        alloc = make(size=8 * PAGE_SIZE)
        for _ in range(8):
            alloc.alloc_frame()
        with pytest.raises(OutOfMemory):
            alloc.alloc_frame()

    def test_stats(self):
        alloc = make(size=16 * PAGE_SIZE)
        assert alloc.stats.total_frames == 16
        assert alloc.stats.free_frames == 16
        a = alloc.alloc_block(2)
        assert alloc.stats.free_frames == 12
        alloc.free_block(a)
        assert alloc.stats.free_frames == 16

    def test_range_limits(self):
        mem = PhysicalMemory(4 * MB)
        alloc = BuddyAllocator(mem, start=MB, end=2 * MB)
        assert alloc.stats.total_frames == MB // PAGE_SIZE
        frame = alloc.alloc_frame()
        assert MB <= frame < 2 * MB

    def test_misaligned_range_rejected(self):
        mem = PhysicalMemory(4 * MB)
        with pytest.raises(ValueError):
            BuddyAllocator(mem, start=100)


class TestCoalescing:
    def test_split_then_merge(self):
        alloc = make(size=8 * PAGE_SIZE)
        frames = [alloc.alloc_frame() for _ in range(8)]
        for frame in frames:
            alloc.free_frame(frame)
        # everything merged back: one block of order 3 (8 frames)
        free = alloc.free_blocks()
        assert free == {3: 1}
        assert alloc.stats.merges > 0

    def test_partial_merge(self):
        alloc = make(size=4 * PAGE_SIZE)
        a = alloc.alloc_frame()
        b = alloc.alloc_frame()
        c = alloc.alloc_frame()
        alloc.free_frame(a)
        alloc.free_frame(c)  # a and c are not buddies of each other
        free = alloc.free_blocks()
        assert free.get(0, 0) >= 1
        alloc.free_frame(b)  # now a+b merge, then with c+d region
        assert alloc.check_integrity() is None

    def test_integrity_after_mixed_ops(self):
        alloc = make()
        blocks = []
        for order in (0, 1, 2, 0, 3, 1):
            blocks.append((alloc.alloc_block(order), order))
        for block, _ in blocks[::2]:
            alloc.free_block(block)
        assert alloc.check_integrity() is None


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from(["alloc0", "alloc1", "alloc2", "free"]),
                    min_size=1, max_size=60))
    def test_random_alloc_free_integrity(self, ops):
        alloc = make(size=2 * MB)
        live = []
        for op in ops:
            if op == "free" and live:
                alloc.free_block(live.pop())
            elif op.startswith("alloc"):
                order = int(op[-1])
                try:
                    live.append(alloc.alloc_block(order))
                except OutOfMemory:
                    pass
        assert alloc.check_integrity() is None
        # no two live blocks overlap
        assert len(live) == len(set(live))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 32))
    def test_full_drain_restores_initial_state(self, count):
        alloc = make(size=2 * MB)
        initial = alloc.free_blocks()
        frames = [alloc.alloc_frame() for _ in range(count)]
        for frame in reversed(frames):
            alloc.free_frame(frame)
        assert alloc.free_blocks() == initial


class TestPageTableIntegration:
    def test_buddy_backs_page_table(self):
        from repro.core.pt.defs import Flags, PageSize
        from repro.core.pt.impl import PageTable

        mem = PhysicalMemory(8 * MB)
        alloc = BuddyAllocator(mem)
        pt = PageTable(mem, alloc)
        pt.map_frame(0x40_0000, alloc.alloc_frame(), PageSize.SIZE_4K,
                     Flags.user_rw())
        assert pt.resolve(0x40_0000) is not None
        pt.destroy()
        assert alloc.check_integrity() is None
