"""Tests for term construction, interning, and constant folding."""

import pytest

from repro.smt import ast
from repro.smt.ast import BV, BOOL


class TestSorts:
    def test_bool_sort(self):
        assert BOOL.is_bool
        assert not BOOL.is_bv

    def test_bv_sort_cached(self):
        assert ast.BV(64) is ast.BV(64)
        assert ast.BV(64).width == 64

    def test_bv_zero_width_rejected(self):
        with pytest.raises(ValueError):
            ast.BV(0)


class TestInterning:
    def test_consts_interned(self):
        assert ast.bv_const(5, 8) is ast.bv_const(5, 8)
        assert ast.true() is ast.true()

    def test_const_truncated(self):
        assert ast.bv_const(0x1FF, 8).value == 0xFF
        assert ast.bv_const(-1, 8).value == 0xFF

    def test_vars_interned(self):
        assert ast.bv_var("x", 8) is ast.bv_var("x", 8)
        assert ast.bv_var("x", 8) is not ast.bv_var("x", 16)

    def test_structural_sharing(self):
        x = ast.bv_var("x", 8)
        y = ast.bv_var("y", 8)
        assert (x + y) is (x + y)
        # commutative ops normalise argument order
        assert (x + y) is (y + x)
        assert (x & y) is (y & x)


class TestBoolFolding:
    def test_not_const(self):
        assert ast.not_(ast.true()) is ast.false()
        assert ast.not_(ast.not_(ast.bool_var("p"))) is ast.bool_var("p")

    def test_and_identity_absorb(self):
        p = ast.bool_var("p")
        assert ast.and_(p, ast.true()) is p
        assert ast.and_(p, ast.false()) is ast.false()
        assert ast.and_() is ast.true()
        assert ast.and_(p, p) is p

    def test_or_identity_absorb(self):
        p = ast.bool_var("p")
        assert ast.or_(p, ast.false()) is p
        assert ast.or_(p, ast.true()) is ast.true()
        assert ast.or_() is ast.false()

    def test_and_flattens(self):
        p, q, r = (ast.bool_var(n) for n in "pqr")
        nested = ast.and_(p, ast.and_(q, r))
        assert nested is ast.and_(p, q, r)

    def test_xor(self):
        p = ast.bool_var("p")
        assert ast.xor_(p, p) is ast.false()
        assert ast.xor_(p, ast.false()) is p
        assert ast.xor_(p, ast.true()) is ast.not_(p)

    def test_implies(self):
        p = ast.bool_var("p")
        assert ast.implies(ast.false(), p) is ast.true()
        assert ast.implies(ast.true(), p) is p
        assert ast.implies(p, p) is ast.true()

    def test_ite_folding(self):
        p = ast.bool_var("p")
        x = ast.bv_var("x", 8)
        y = ast.bv_var("y", 8)
        assert ast.ite(ast.true(), x, y) is x
        assert ast.ite(ast.false(), x, y) is y
        assert ast.ite(p, x, x) is x
        assert ast.ite(p, ast.true(), ast.false()) is p

    def test_ite_sort_mismatch(self):
        with pytest.raises(TypeError):
            ast.ite(ast.bool_var("p"), ast.bv_var("x", 8), ast.bv_var("y", 16))

    def test_eq_folding(self):
        x = ast.bv_var("x", 8)
        assert ast.eq(x, x) is ast.true()
        assert ast.eq(ast.bv_const(1, 8), ast.bv_const(1, 8)) is ast.true()
        assert ast.eq(ast.bv_const(1, 8), ast.bv_const(2, 8)) is ast.false()

    def test_eq_sort_mismatch(self):
        with pytest.raises(TypeError):
            ast.eq(ast.bv_var("x", 8), ast.bv_var("y", 16))


class TestBvFolding:
    def test_const_arith(self):
        a = ast.bv_const(200, 8)
        b = ast.bv_const(100, 8)
        assert (a + b).value == 44  # wraps mod 256
        assert (a - b).value == 100
        assert (b - a).value == 156
        assert (a * b).value == (200 * 100) % 256

    def test_and_or_idempotent(self):
        x = ast.bv_var("x", 8)
        assert ast.bvand(x, x) is x
        assert ast.bvor(x, x) is x
        assert ast.bvxor(x, x).value == 0

    def test_mask_identities(self):
        x = ast.bv_var("x", 8)
        assert ast.bvand(x, ast.bv_const(0xFF, 8)) is x
        assert ast.bvand(x, ast.bv_const(0, 8)).value == 0
        assert ast.bvor(x, ast.bv_const(0, 8)) is x

    def test_add_zero(self):
        x = ast.bv_var("x", 8)
        assert (x + ast.bv_const(0, 8)) is x
        assert (x - ast.bv_const(0, 8)) is x

    def test_shift_folding(self):
        x = ast.bv_var("x", 8)
        assert (x << ast.bv_const(0, 8)) is x
        assert (x << ast.bv_const(8, 8)).value == 0
        assert (x >> ast.bv_const(9, 8)).value == 0
        assert (ast.bv_const(0b1010, 8) >> ast.bv_const(1, 8)).value == 0b101

    def test_double_bvnot(self):
        x = ast.bv_var("x", 8)
        assert ast.bvnot(ast.bvnot(x)) is x

    def test_extract(self):
        x = ast.bv_var("x", 16)
        e = ast.extract(x, 7, 0)
        assert e.width == 8
        assert ast.extract(x, 15, 0) is x
        assert ast.extract(ast.bv_const(0xABCD, 16), 15, 8).value == 0xAB

    def test_extract_out_of_range(self):
        with pytest.raises(ValueError):
            ast.extract(ast.bv_var("x", 8), 8, 0)

    def test_concat(self):
        hi = ast.bv_const(0xAB, 8)
        lo = ast.bv_const(0xCD, 8)
        assert ast.concat(hi, lo).value == 0xABCD
        assert ast.concat(hi, lo).width == 16

    def test_zext_sext(self):
        assert ast.zext(ast.bv_const(0x80, 8), 16).value == 0x0080
        assert ast.sext(ast.bv_const(0x80, 8), 16).value == 0xFF80
        x = ast.bv_var("x", 8)
        assert ast.zext(x, 8) is x
        with pytest.raises(ValueError):
            ast.zext(x, 4)

    def test_comparisons_fold(self):
        one = ast.bv_const(1, 8)
        two = ast.bv_const(2, 8)
        assert ast.ult(one, two) is ast.true()
        assert ast.ult(two, one) is ast.false()
        x = ast.bv_var("x", 8)
        assert ast.ult(x, x) is ast.false()
        assert ast.ule(x, x) is ast.true()
        assert ast.ult(x, ast.bv_const(0, 8)) is ast.false()
        assert ast.ule(ast.bv_const(0, 8), x) is ast.true()

    def test_width_mismatch_rejected(self):
        with pytest.raises(TypeError):
            ast.bvadd(ast.bv_var("x", 8), ast.bv_var("y", 16))


class TestTraversal:
    def test_free_vars(self):
        x = ast.bv_var("x", 8)
        y = ast.bv_var("y", 8)
        term = (x + y).eq(x)
        names = [v.name for v in ast.free_vars(term)]
        assert names == ["x", "y"]

    def test_free_vars_of_const(self):
        assert ast.free_vars(ast.bv_const(3, 8)) == []

    def test_term_size_counts_dag_nodes(self):
        x = ast.bv_var("x", 8)
        shared = x + x
        term = ast.bvand(shared, shared)
        # shared counted once: x, x+x == 2 nodes, bvand(s,s) folds to s.
        assert ast.term_size(term) == 2
