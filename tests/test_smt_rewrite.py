"""Rewriter tests: semantics preservation and effectiveness."""

import random

from repro.smt import ast, interp
from repro.smt.rewrite import simplify
from tests.test_smt_bitblast import random_term


class TestSemanticsPreserved:
    def test_random_terms_equivalent(self):
        rng = random.Random(2024)
        for _ in range(200):
            term = random_term(rng, rng.randint(1, 4))
            simplified = simplify(term)
            for _ in range(8):
                env = {n: rng.randrange(256) for n in "abc"}
                assert interp.evaluate(term, env) == interp.evaluate(
                    simplified, env
                ), term

    def test_random_predicates_equivalent(self):
        rng = random.Random(555)
        for _ in range(120):
            a = random_term(rng, 3)
            b = random_term(rng, 3)
            pred = ast.eq(a, b)
            simplified = simplify(pred)
            for _ in range(8):
                env = {n: rng.randrange(256) for n in "abc"}
                assert interp.evaluate(pred, env) == interp.evaluate(
                    simplified, env
                )


class TestEffectiveness:
    """The rewriter should discharge the bit-manipulation patterns that
    dominate the page-table proof without reaching the SAT solver."""

    def test_shift_mask_is_extract(self):
        va = ast.bv_var("va", 64)
        lhs = (va >> ast.bv_const(12, 64)) & ast.bv_const(0x1FF, 64)
        rhs = ast.zext(ast.extract(va, 20, 12), 64)
        assert simplify(ast.eq(lhs, rhs)) is ast.true()

    def test_extract_of_extract(self):
        x = ast.bv_var("x", 64)
        nested = ast.extract(ast.extract(x, 47, 12), 20, 9)
        flat = ast.extract(x, 32, 21)
        assert simplify(nested) is flat

    def test_shift_chain_combines(self):
        x = ast.bv_var("x", 64)
        twice = ast.bvlshr(ast.bvlshr(x, ast.bv_const(9, 64)), ast.bv_const(3, 64))
        once = ast.bvlshr(x, ast.bv_const(12, 64))
        assert simplify(ast.eq(twice, once)) is ast.true()

    def test_mask_then_shift_roundtrip(self):
        """(x & ~0xfff) recognised as a high-bits mask."""
        x = ast.bv_var("x", 64)
        masked = x & ast.bv_const(0xFFFF_FFFF_FFFF_F000, 64)
        shifted = ast.bvshl(
            ast.bvlshr(x, ast.bv_const(12, 64)), ast.bv_const(12, 64)
        )
        assert simplify(ast.eq(masked, shifted)) is ast.true()

    def test_extract_of_or_distributes(self):
        x = ast.bv_var("x", 64)
        y = ast.bv_var("y", 64)
        lhs = ast.extract(ast.bvor(x, y), 11, 4)
        rhs = ast.bvor(ast.extract(x, 11, 4), ast.extract(y, 11, 4))
        assert simplify(ast.eq(lhs, rhs)) is ast.true()

    def test_zext_zext_collapses(self):
        x = ast.bv_var("x", 8)
        assert simplify(ast.zext(ast.zext(x, 16), 32)) is ast.zext(x, 32)

    def test_simplify_is_stable(self):
        rng = random.Random(31)
        for _ in range(50):
            term = random_term(rng, 3)
            once = simplify(term)
            assert simplify(once) is once
