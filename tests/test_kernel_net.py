"""Cross-machine tests: UDP and RDP syscalls over a simulated cluster."""

import pytest

from repro.nros.cluster import Cluster
from repro.nros.kernel import Kernel
from repro.nros.net.ip import ip_addr
from repro.nros.syscall.abi import SyscallError, sys

IP_A = ip_addr("10.0.0.1")
IP_B = ip_addr("10.0.0.2")


def make_cluster(drop_rate=0.0, seed=0):
    cluster = Cluster()
    a = cluster.add(Kernel(ip=IP_A, hostname="alpha"))
    b = cluster.add(Kernel(ip=IP_B, hostname="beta"))
    cluster.connect(a, b, drop_rate=drop_rate, seed=seed)
    return cluster, a, b


class TestUdpSyscalls:
    def test_udp_ping_pong(self):
        results = {}

        def server():
            sid = yield sys("socket")
            yield sys("bind", sid, 53)
            src_ip, src_port, payload = yield sys("recvfrom", sid)
            yield sys("sendto", sid, src_ip, src_port, b"pong:" + payload)

        def client():
            sid = yield sys("socket")
            yield sys("bind", sid, 9999)
            # UDP has no handshake: give the server time to bind, since a
            # datagram to an unbound port is (correctly) dropped
            yield sys("sleep", 3)
            yield sys("sendto", sid, IP_B, 53, b"ping")
            _, _, payload = yield sys("recvfrom", sid)
            results["reply"] = payload

        cluster, a, b = make_cluster()
        b.register_program("server", server)
        a.register_program("client", client)
        b.spawn("server")
        a.spawn("client")
        cluster.run()
        assert results["reply"] == b"pong:ping"

    def test_loopback_udp(self):
        results = {}

        def both():
            server = yield sys("socket")
            yield sys("bind", server, 100)
            client = yield sys("socket")
            yield sys("bind", client, 101)
            yield sys("sendto", client, IP_A, 100, b"local")
            _, src_port, payload = yield sys("recvfrom", server)
            results["got"] = (src_port, payload)

        kernel = Kernel(ip=IP_A)
        kernel.register_program("both", both)
        kernel.spawn("both")
        kernel.run()
        assert results["got"] == (101, b"local")

    def test_socket_errors(self):
        errors = []

        def prog():
            try:
                yield sys("recvfrom", 999)
            except SyscallError as exc:
                errors.append(exc.errno)
            sid = yield sys("socket")
            yield sys("bind", sid, 80)
            other = yield sys("socket")
            try:
                yield sys("bind", other, 80)  # port already bound
            except SyscallError as exc:
                errors.append(exc.errno)

        from repro.nros.syscall.abi import EINVAL
        kernel = Kernel(ip=IP_A)
        kernel.register_program("p", prog)
        kernel.spawn("p")
        kernel.run()
        assert errors == [EINVAL, EINVAL]

    def test_no_network_enosys(self):
        errors = []

        def prog():
            try:
                yield sys("socket")
            except SyscallError as exc:
                errors.append(exc.errno)

        from repro.nros.syscall.abi import ENOSYS
        kernel = Kernel()  # no ip
        kernel.register_program("p", prog)
        kernel.spawn("p")
        kernel.run()
        assert errors == [ENOSYS]


class TestRdpSyscalls:
    def _run_rdp(self, drop_rate=0.0, seed=0, n_messages=3):
        received = []
        replies = []

        def server():
            listener = yield sys("rdp_listen", 7000)
            conn = yield sys("rdp_accept", listener)
            for _ in range(n_messages):
                message = yield sys("rdp_recv", conn)
                received.append(message)
                yield sys("rdp_send", conn, b"ack:" + message)

        def client():
            conn = yield sys("rdp_connect", IP_B, 7000)
            for i in range(n_messages):
                yield sys("rdp_send", conn, f"msg{i}".encode())
                reply = yield sys("rdp_recv", conn)
                replies.append(reply)
            yield sys("rdp_close", conn)

        cluster, a, b = make_cluster(drop_rate=drop_rate, seed=seed)
        b.register_program("server", server)
        a.register_program("client", client)
        b.spawn("server")
        a.spawn("client")
        cluster.run()
        return received, replies

    def test_rdp_request_response(self):
        received, replies = self._run_rdp()
        assert received == [b"msg0", b"msg1", b"msg2"]
        assert replies == [b"ack:msg0", b"ack:msg1", b"ack:msg2"]

    def test_rdp_over_lossy_link(self):
        received, replies = self._run_rdp(drop_rate=0.25, seed=5)
        assert received == [b"msg0", b"msg1", b"msg2"]
        assert replies == [b"ack:msg0", b"ack:msg1", b"ack:msg2"]

    def test_rdp_two_clients(self):
        outcomes = {}

        def server():
            listener = yield sys("rdp_listen", 7000)
            for _ in range(2):
                conn = yield sys("rdp_accept", listener)
                message = yield sys("rdp_recv", conn)
                yield sys("rdp_send", conn, b"hello " + message)

        def client(tag):
            conn = yield sys("rdp_connect", IP_B, 7000)
            yield sys("rdp_send", conn, tag.encode())
            outcomes[tag] = yield sys("rdp_recv", conn)

        cluster, a, b = make_cluster()
        b.register_program("server", server)
        a.register_program("client", client)
        b.spawn("server")
        a.spawn("client", ("one",))
        a.spawn("client", ("two",))
        cluster.run()
        assert outcomes == {"one": b"hello one", "two": b"hello two"}
