"""Pipe tests: unit-level Pipe semantics and cross-process IPC."""

import pytest

from repro.nros.kernel import Kernel
from repro.nros.proc.pipe import Pipe, PipeClosed, PipeTable
from repro.nros.syscall.abi import EPIPE, SyscallError, sys


class TestPipeUnit:
    def test_write_then_read(self):
        pipe = Pipe(pipe_id=1)
        assert pipe.try_write(b"hello") == 5
        assert pipe.try_read(3) == b"hel"
        assert pipe.try_read(10) == b"lo"
        assert pipe.try_read(10) is None  # empty, writer open: would block

    def test_eof_after_write_close(self):
        pipe = Pipe(pipe_id=1)
        pipe.try_write(b"tail")
        pipe.close("w")
        assert pipe.try_read(10) == b"tail"
        assert pipe.try_read(10) == b""  # EOF

    def test_epipe_after_read_close(self):
        pipe = Pipe(pipe_id=1)
        pipe.close("r")
        with pytest.raises(PipeClosed):
            pipe.try_write(b"x")

    def test_capacity_blocks(self):
        pipe = Pipe(pipe_id=1, capacity=4)
        assert pipe.try_write(b"abcdef") == 4  # partial write
        assert pipe.try_write(b"zz") is None   # full: would block
        pipe.try_read(2)
        assert pipe.try_write(b"zz") == 2

    def test_bad_end(self):
        with pytest.raises(ValueError):
            Pipe(pipe_id=1).close("x")

    def test_table_reap(self):
        table = PipeTable()
        pipe = table.create()
        assert table.get(pipe.pipe_id) is pipe
        pipe.close("r")
        assert table.reap() == 0  # write end still open
        pipe.close("w")
        assert table.reap() == 1
        assert table.get(pipe.pipe_id) is None


class TestPipeSyscalls:
    def test_producer_consumer_processes(self):
        received = []

        def producer(pipe_id):
            for i in range(5):
                yield sys("pipe_write", pipe_id, f"msg{i};".encode())
            yield sys("pipe_close", pipe_id, "w")

        def consumer(pipe_id):
            while True:
                chunk = yield sys("pipe_read", pipe_id, 64)
                if chunk == b"":
                    break
                received.append(chunk)

        def main():
            pipe_id = yield sys("pipe")
            yield sys("spawn", "producer", (pipe_id,))
            yield sys("spawn", "consumer", (pipe_id,))
            yield sys("wait", -1)
            yield sys("wait", -1)

        kernel = Kernel(num_cores=2)
        kernel.register_program("producer", producer)
        kernel.register_program("consumer", consumer)
        kernel.register_program("main", main)
        kernel.spawn("main")
        kernel.run()
        assert b"".join(received) == b"msg0;msg1;msg2;msg3;msg4;"

    def test_backpressure(self):
        """A tiny pipe forces the writer to block until the reader
        drains — bytes still arrive intact and in order."""
        received = []

        def producer(pipe_id):
            payload = bytes(range(256)) * 2  # 512 bytes through a 64B pipe
            offset = 0
            while offset < len(payload):
                written = yield sys("pipe_write", pipe_id,
                                    payload[offset : offset + 64])
                offset += written
            yield sys("pipe_close", pipe_id, "w")

        def consumer(pipe_id):
            while True:
                chunk = yield sys("pipe_read", pipe_id, 16)
                if chunk == b"":
                    break
                received.append(chunk)

        def main():
            pipe_id = yield sys("pipe", 64)
            yield sys("spawn", "producer", (pipe_id,))
            yield sys("spawn", "consumer", (pipe_id,))
            yield sys("wait", -1)
            yield sys("wait", -1)

        kernel = Kernel(num_cores=2)
        kernel.register_program("producer", producer)
        kernel.register_program("consumer", consumer)
        kernel.register_program("main", main)
        kernel.spawn("main")
        kernel.run()
        assert b"".join(received) == bytes(range(256)) * 2

    def test_epipe_syscall(self):
        errors = []

        def prog():
            pipe_id = yield sys("pipe")
            yield sys("pipe_close", pipe_id, "r")
            try:
                yield sys("pipe_write", pipe_id, b"into the void")
            except SyscallError as exc:
                errors.append(exc.errno)

        kernel = Kernel()
        kernel.register_program("p", prog)
        kernel.spawn("p")
        kernel.run()
        assert errors == [EPIPE]

    def test_bad_pipe_id(self):
        errors = []

        def prog():
            try:
                yield sys("pipe_read", 777, 1)
            except SyscallError as exc:
                errors.append(exc.errno)

        from repro.nros.syscall.abi import EBADF
        kernel = Kernel()
        kernel.register_program("p", prog)
        kernel.spawn("p")
        kernel.run()
        assert errors == [EBADF]


class TestNrAutoGc:
    def test_auto_gc_bounds_log(self):
        from repro.nr.core import NodeReplicated
        from repro.nr.datastructures import Counter

        nr = NodeReplicated(Counter, num_nodes=1, auto_gc_threshold=8)
        for _ in range(100):
            nr.execute(("add", 1))
        assert nr.auto_gcs > 0
        assert len(nr.log) <= 9  # bounded around the threshold
        assert nr.execute_ro("get") == 100  # semantics intact

    def test_auto_gc_respects_lagging_replica(self):
        from repro.nr.core import NodeReplicated
        from repro.nr.datastructures import Counter

        nr = NodeReplicated(Counter, num_nodes=2, auto_gc_threshold=4)
        for _ in range(20):
            nr.execute(("add", 1), node=0)
        # replica 1 never applied anything: GC must not collect
        assert nr.replicas[1].ltail == 0
        assert nr.log.base == 0
        # once replica 1 catches up, GC proceeds on the next write
        assert nr.execute_ro("get", node=1) == 20
        nr.execute(("add", 1), node=0)
        assert nr.log.base > 0
