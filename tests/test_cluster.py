"""The replicated KV service end to end: deployment, failover,
partitions, and the trace schema."""

import pytest

from repro import obs
from repro.cluster.deploy import Deployment
from repro.cluster.node import TICK_NS
from repro.cluster.workload import WorkloadProfile, run_workload
from repro.nros.cluster import Cluster
from repro.nros.kernel import Kernel
from repro.nros.net.ip import ip_addr
from repro.obs.events import validate_record
from repro.obs.registry import Registry

MB = 1024 * 1024


def _deployment(num_nodes=3, rf=2, **kwargs):
    return Deployment(num_nodes, rf=rf, registry=Registry(), **kwargs)


def _run(deployment, ops=200, seed=1, **kwargs):
    return run_workload(deployment, WorkloadProfile(ops=ops, seed=seed),
                        **kwargs)


def test_three_node_smoke_serves_all_ops():
    deployment = _deployment()
    report = _run(deployment)
    assert report.acked == report.issued == 200
    assert report.failed == 0
    assert report.ok
    # writes really are replicated: every acked key exists on rf nodes
    gateway = deployment.gateway
    for key, (version, value) in sorted(gateway.acked_writes.items())[:20]:
        holders = [
            node_id for node_id, node in deployment.nodes.items()
            if node.local_data().get(key, (None, -1))[1] >= version
        ]
        assert len(holders) >= deployment.rf, (key, holders)


def test_node_kill_mid_workload_loses_no_acked_write():
    deployment = _deployment()
    report = _run(deployment, ops=600, seed=7, kill_at_op=200,
                  kill_node="node1")
    assert deployment.alive_nodes == ["node0", "node2"]
    assert report.kills == 1
    assert report.lost_acked_writes == []
    assert report.ryw_violations == []
    assert report.undrained == 0
    assert report.audited_keys > 0


def test_kill_is_deterministic_under_a_seed():
    def summary():
        report = _run(_deployment(), ops=300, seed=11, kill_at_op=100,
                      kill_node="node0")
        return report.summary_lines()

    assert summary() == summary()


def test_partition_and_heal_between_storage_nodes():
    deployment = _deployment()
    deployment.partition("node0", "node1")
    # the cut is total for that pair until healed
    for link in deployment.cluster.links_between(
            deployment.kernels["node0"], deployment.kernels["node1"]):
        assert link.partitioned
    report = _run(deployment, ops=200, seed=3)
    assert report.lost_acked_writes == []
    assert report.undrained == 0
    deployment.heal("node0", "node1")
    for link in deployment.cluster.links_between(
            deployment.kernels["node0"], deployment.kernels["node1"]):
        assert not link.partitioned


def test_single_node_rf1_deployment_works():
    deployment = _deployment(num_nodes=1, rf=1)
    report = _run(deployment, ops=150)
    assert report.acked == 150
    assert report.ok


def test_deployment_validates_shape():
    with pytest.raises(ValueError):
        _deployment(num_nodes=0)
    with pytest.raises(ValueError):
        _deployment(num_nodes=2, rf=3)


def test_trace_events_are_schema_valid():
    bus = obs.bus()
    bus.enable()
    try:
        bus.clear()
        deployment = _deployment()
        report = _run(deployment, ops=300, seed=5, kill_at_op=100,
                      kill_node="node2")
        assert report.ok
        names = {event.name for event in bus.events}
        assert "cluster.kill" in names
        assert "cluster.member" in names
        assert "cluster.failover" in names
        assert "cluster.sync" in names
        for event in bus.events:
            assert validate_record(event.to_dict()) == []
            # fs.op events (the nodes' WALs run through the verified FS)
            # are wall-clocked instrumentation; the service's own trace
            # must stay on simulated time
            if event.name.startswith("cluster."):
                assert event.clock == "sim"
                assert event.t % TICK_NS == 0
    finally:
        bus.disable()
        bus.clear()


# -- Cluster.connect validation + partition/heal (repro.nros.cluster) ------


def _kernel(ip, hostname):
    return Kernel(num_cores=1, memory_bytes=4 * MB, disk_sectors=256,
                  ip=ip_addr(ip), hostname=hostname)


def test_connect_validates_before_any_mutation():
    cluster = Cluster()
    good = _kernel("10.9.0.1", "good")
    bad = Kernel(num_cores=1, memory_bytes=4 * MB, disk_sectors=256)
    cluster.add(good)
    neighbours_before = dict(good.net.neighbours)
    with pytest.raises(ValueError, match="bad|no network"):
        cluster.connect(good, bad)
    # validation happened before mutation: nothing half-connected
    assert good.net.neighbours == neighbours_before
    assert cluster.links == []
    assert cluster.links_between(good, bad) == []


def test_cluster_partition_requires_a_link():
    cluster = Cluster()
    a = cluster.add(_kernel("10.9.0.1", "a"))
    b = cluster.add(_kernel("10.9.0.2", "b"))
    with pytest.raises(ValueError, match="no link"):
        cluster.partition(a, b)
    link = cluster.connect(a, b)
    assert cluster.partition(a, b) == 1
    assert link.partitioned
    assert cluster.heal(a, b) == 1
    assert not link.partitioned


def test_partitioned_link_drops_frames_to_the_peer():
    cluster = Cluster()
    a = cluster.add(_kernel("10.9.0.1", "a"))
    b = cluster.add(_kernel("10.9.0.2", "b"))
    link = cluster.connect(a, b)
    sock = b.net.udp_bind(5000)
    cluster.partition(a, b)
    a.net.udp_send(5000, b.net.ip, 5000, b"lost")
    link.pump()
    b.net.poll()
    assert not sock.recv_queue
    assert link.dropped == 1
    cluster.heal(a, b)
    a.net.udp_send(5000, b.net.ip, 5000, b"found")
    link.pump()
    b.net.poll()
    assert [payload for _, _, payload in sock.recv_queue] == [b"found"]
