"""Tests for the static lock-order pass (repro.analysis.lockorder)."""

from repro.analysis.cli import repo_root
from repro.analysis.imports import discover_sources
from repro.analysis.lockorder import (acquisition_graph,
                                      check_lock_order)


def test_real_tree_order_is_acyclic():
    sources = discover_sources(repo_root())
    findings, stats = check_lock_order(sources)
    assert findings == [], [f.render() for f in findings]
    assert stats["cycle"] is False
    assert stats["methods"] > 50


def test_real_tree_has_the_combiner_edge():
    """The one real edge: the NR combiner holds the replica writer lock
    while ds.apply reaches the buddy allocator (page-table frame
    allocation) — nr.replica is always taken before pmem.alloc."""
    sources = discover_sources(repo_root())
    edges = acquisition_graph(sources)
    assert ("nr.replica", "pmem.alloc") in edges
    assert ("pmem.alloc", "nr.replica") not in edges
    sites = edges[("nr.replica", "pmem.alloc")]
    assert all(path == "src/repro/nr/core.py" for path, _l, _h in sites)


_CYCLIC = {
    "a.py": (
        "from repro.nr.rwlock import RwLock\n"
        "from repro.nros.pmem import AllocLock\n"
        "class A:\n"
        "    def __init__(self):\n"
        "        self._r = RwLock()\n"
        "        self._a = AllocLock()\n"
        "    def forward(self):\n"
        "        with self._a:\n"
        "            while not self._r.try_acquire_write(0):\n"
        "                pass\n"
        "            self._r.release_write(0)\n"
        "    def backward(self):\n"
        "        while not self._r.try_acquire_write(0):\n"
        "            pass\n"
        "        with self._a:\n"
        "            pass\n"
        "        self._r.release_write(0)\n"
    ),
}


def test_synthetic_cycle_is_flagged():
    findings, stats = check_lock_order(_CYCLIC, modules=("a.py",))
    assert stats["cycle"] is True
    cycles = [f for f in findings if f.rule == "lockorder.cycle"]
    assert len(cycles) == 1
    assert "nr.replica" in cycles[0].message
    assert "pmem.alloc" in cycles[0].message


_UNORDERED = {
    "b.py": (
        "class B:\n"
        "    def __init__(self, q1, q2):\n"
        "        self.q1, self.q2 = q1, q2\n"
        "    def both(self):\n"
        "        while not self.q1.try_lock():\n"
        "            pass\n"
        "        while not self.q2.try_lock():\n"
        "            pass\n"
        "        self.q2.unlock()\n"
        "        self.q1.unlock()\n"
    ),
}


def test_unsorted_same_class_nesting_is_flagged():
    findings, _ = check_lock_order(_UNORDERED, modules=("b.py",))
    assert [f.rule for f in findings] == \
        ["lockorder.unordered-same-class"]


def test_sorted_same_class_nesting_is_sanctioned():
    source = _UNORDERED["b.py"].replace(
        "    def both(self):",
        "    def both(self):\n"
        "        self.q1, self.q2 = sorted((self.q1, self.q2))")
    findings, _ = check_lock_order({"b.py": source}, modules=("b.py",))
    assert findings == []


def test_migrate_steps_double_acquire_is_sanctioned():
    """The SMP protocol's migrate_steps takes two runqueue locks in
    sorted core order — the sanctioned same-class pattern."""
    sources = discover_sources(repo_root())
    findings, _ = check_lock_order(
        sources, modules=("src/repro/nros/sched/smp.py",
                          "src/repro/nros/sched/scheduler.py"))
    assert [f for f in findings
            if f.rule == "lockorder.unordered-same-class"] == []
