"""Tests for the repro.prover subsystem: fingerprints, the persistent
proof cache, the parallel scheduler, conflict-budget timeouts, and
determinism under parallelism."""

from __future__ import annotations

import json
import os

import pytest

from repro.prover import (
    ProofCache,
    ProverConfig,
    goal_fingerprint,
    prove_all,
    register_builder,
    term_fingerprint,
)
from repro.prover import events as ev
from repro.prover.fingerprint import (
    solver_config_fingerprint,
    structural_fingerprint,
)
from repro.prover.scheduler import ProverScheduler, _discharge_with_ladder
from repro.smt import ast
from repro.verif.engine import ProofEngine
from repro.verif.vc import VCStatus, forall_vc, smt_vc


def _goal_x_eq_x(width=8):
    x = ast.bv_var("x", width)
    return ast.eq(ast.bvand(x, ast.bv_const(0xF, width)),
                  ast.bvand(x, ast.bv_const(0xF, width)))


def _hard_goal(width=4):
    """(x + y)^2 == x^2 + 2xy + y^2 — valid, but needs real CDCL search
    (multipliers bit-blast into deep circuits), so a tiny conflict budget
    is exceeded deterministically; at width 4 the unbounded proof still
    lands in ~30 ms (width grows the search superlinearly — 8 bits is
    already ~40 s)."""
    x = ast.bv_var("x", width)
    y = ast.bv_var("y", width)
    s = ast.bvadd(x, y)
    lhs = ast.bvmul(s, s)
    two = ast.bv_const(2, width)
    rhs = ast.bvadd(ast.bvadd(ast.bvmul(x, x), ast.bvmul(y, y)),
                    ast.bvmul(two, ast.bvmul(x, y)))
    return ast.eq(lhs, rhs)


def _lemma_engine() -> ProofEngine:
    """A small, fast, fully reconstructible population: the SMT lemma
    layers of the real proof."""
    from repro.core.refine.proof import build_proof

    return build_proof(include_structural=False, include_nr=False,
                       include_contract=False)


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_identical_goals_same_fingerprint(self):
        # Two separately constructed but structurally equal terms.
        assert term_fingerprint(_goal_x_eq_x()) == \
            term_fingerprint(_goal_x_eq_x())

    def test_mutated_goal_changes_fingerprint(self):
        x = ast.bv_var("x", 8)
        a = ast.eq(ast.bvadd(x, ast.bv_const(1, 8)), x)
        b = ast.eq(ast.bvadd(x, ast.bv_const(2, 8)), x)
        assert term_fingerprint(a) != term_fingerprint(b)

    def test_variable_name_matters(self):
        a = ast.eq(ast.bv_var("x", 8), ast.bv_const(0, 8))
        b = ast.eq(ast.bv_var("y", 8), ast.bv_const(0, 8))
        assert term_fingerprint(a) != term_fingerprint(b)

    def test_solver_config_changes_key(self):
        goal = _goal_x_eq_x()
        assert goal_fingerprint(goal, simplify=True) != \
            goal_fingerprint(goal, simplify=False)
        assert solver_config_fingerprint(True) != \
            solver_config_fingerprint(False)

    def test_structural_fingerprint_varies_by_identity(self):
        base = structural_fingerprint("b", {"depth": 3}, "vc1")
        assert base == structural_fingerprint("b", {"depth": 3}, "vc1")
        assert base != structural_fingerprint("b", {"depth": 2}, "vc1")
        assert base != structural_fingerprint("b", {"depth": 3}, "vc2")
        assert base != structural_fingerprint("other", {"depth": 3}, "vc1")


# ---------------------------------------------------------------------------
# Proof cache
# ---------------------------------------------------------------------------


class TestProofCache:
    def _run_twice(self, tmp_path, goal_builder):
        cache = ProofCache(str(tmp_path))
        engine = ProofEngine()
        engine.add(smt_vc("g", "lemmas", goal_builder))
        cold = prove_all(engine, cache=cache)

        engine2 = ProofEngine()
        engine2.add(smt_vc("g", "lemmas", goal_builder))
        warm = prove_all(engine2, cache=cache)
        return cold, warm, cache

    def test_hit_on_identical_goal(self, tmp_path):
        cold, warm, cache = self._run_twice(tmp_path, _goal_x_eq_x)
        assert cold.cache_hits == 0 and cold.all_proved
        assert warm.cache_hits == 1 and warm.all_proved
        assert cache.stats.hits == 1

    def test_miss_after_goal_mutation(self, tmp_path):
        cache = ProofCache(str(tmp_path))
        engine = ProofEngine()
        engine.add(smt_vc("g", "lemmas", _goal_x_eq_x))
        prove_all(engine, cache=cache)

        def mutated():
            x = ast.bv_var("x", 8)
            return ast.eq(ast.bvor(x, ast.bv_const(1, 8)), x)

        engine2 = ProofEngine()
        engine2.add(smt_vc("g", "lemmas", mutated))
        warm = prove_all(engine2, cache=cache)
        assert warm.cache_hits == 0
        # ... and the mutated goal is genuinely refutable.
        assert warm.results[0].status is VCStatus.FAILED

    def test_miss_after_solver_config_change(self, tmp_path):
        cache = ProofCache(str(tmp_path))
        engine = ProofEngine()
        engine.add(smt_vc("g", "lemmas", _goal_x_eq_x, simplify=True))
        prove_all(engine, cache=cache)

        engine2 = ProofEngine()
        engine2.add(smt_vc("g", "lemmas", _goal_x_eq_x, simplify=False))
        warm = prove_all(engine2, cache=cache)
        assert warm.cache_hits == 0 and warm.all_proved

    def test_corrupted_cache_file_is_cold_miss(self, tmp_path):
        cache = ProofCache(str(tmp_path))
        engine = ProofEngine()
        engine.add(smt_vc("g", "lemmas", _goal_x_eq_x))
        prove_all(engine, cache=cache)

        entries = [os.path.join(root, name)
                   for root, _, files in os.walk(tmp_path)
                   for name in files
                   if name.endswith(".json") and name != "timings.json"]
        assert entries
        for path in entries:
            with open(path, "w") as fh:
                fh.write("{ this is not json")

        engine2 = ProofEngine()
        engine2.add(smt_vc("g", "lemmas", _goal_x_eq_x))
        warm = prove_all(engine2, cache=cache)
        assert warm.cache_hits == 0 and warm.all_proved
        assert cache.stats.invalid >= 1
        # The corrupted entry was replaced by a fresh, valid one.
        engine3 = ProofEngine()
        engine3.add(smt_vc("g", "lemmas", _goal_x_eq_x))
        assert prove_all(engine3, cache=cache).cache_hits == 1

    def test_wrong_schema_is_cold_miss(self, tmp_path):
        cache = ProofCache(str(tmp_path))
        fp = "ab" * 32
        path = cache._path(fp)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            json.dump({"status": "proved"}, fh)  # missing vc/format/seconds
        assert cache.get(fp) is None
        assert cache.stats.invalid == 1

    def test_timeout_results_are_not_cached(self, tmp_path):
        cache = ProofCache(str(tmp_path))
        engine = ProofEngine()
        engine.add(smt_vc("hard", "lemmas", _hard_goal))
        config = ProverConfig(conflict_budget=1, max_attempts=1,
                              hard_budget=True)
        report = prove_all(engine, cache=cache, config=config)
        assert report.results[0].status is VCStatus.TIMEOUT
        assert cache.stats.stores == 0

    def test_structural_results_cached_for_registered_builders(self, tmp_path):
        def build():
            engine = ProofEngine()
            engine.rebuild_spec = ("test-structural-pop", {})
            engine.add(forall_vc("evens", "demo", range(0, 10, 2),
                                 lambda x: x % 2 == 0))
            return engine

        register_builder("test-structural-pop", build)
        cache = ProofCache(str(tmp_path))
        cold = prove_all(build(), cache=cache)
        assert cold.all_proved and cold.cache_hits == 0
        warm = prove_all(build(), cache=cache)
        assert warm.all_proved and warm.cache_hits == 1

    def test_unregistered_structural_vcs_never_cached(self, tmp_path):
        cache = ProofCache(str(tmp_path))
        engine = ProofEngine()  # no rebuild_spec
        engine.add(forall_vc("evens", "demo", [2, 4], lambda x: True))
        prove_all(engine, cache=cache)
        engine2 = ProofEngine()
        engine2.add(forall_vc("evens", "demo", [2, 4], lambda x: True))
        assert prove_all(engine2, cache=cache).cache_hits == 0


# ---------------------------------------------------------------------------
# Timeouts and the retry ladder
# ---------------------------------------------------------------------------


class TestBudgets:
    def test_timeout_is_a_distinct_status(self):
        vc = smt_vc("hard", "lemmas", _hard_goal)
        result = vc.discharge(max_conflicts=1)
        assert result.status is VCStatus.TIMEOUT
        assert result.status is not VCStatus.FAILED
        assert result.counterexample is None
        assert "budget" in result.detail

    def test_timeout_surfaces_in_summary(self):
        from repro.verif.engine import ProofReport

        vc = smt_vc("hard", "lemmas", _hard_goal)
        report = ProofReport(results=[vc.discharge(max_conflicts=1)])
        assert len(report.timeouts) == 1
        assert any("timeout: 1" in line for line in report.summary_lines())

    def test_retry_ladder_eventually_proves(self):
        vc = smt_vc("hard", "lemmas", _hard_goal)
        config = ProverConfig(conflict_budget=1, budget_growth=4,
                              max_attempts=3)  # final attempt unbounded
        result, attempts = _discharge_with_ladder(vc, config.budgets())
        assert result.status is VCStatus.PROVED
        assert attempts > 1

    def test_hard_budget_reports_timeout(self):
        engine = ProofEngine()
        engine.add(smt_vc("hard", "lemmas", _hard_goal))
        config = ProverConfig(use_cache=False, conflict_budget=1,
                              max_attempts=2, hard_budget=True)
        report = prove_all(engine, config=config)
        assert report.results[0].status is VCStatus.TIMEOUT
        assert not report.all_proved

    def test_budget_ladder_shape(self):
        config = ProverConfig(conflict_budget=100, budget_growth=4,
                              max_attempts=3)
        assert config.budgets() == [100, 400, None]
        assert ProverConfig(conflict_budget=None).budgets() == [None]
        hard = ProverConfig(conflict_budget=100, budget_growth=10,
                            max_attempts=2, hard_budget=True)
        assert hard.budgets() == [100, 1000]


# ---------------------------------------------------------------------------
# The scheduler: events, ordering, determinism under parallelism
# ---------------------------------------------------------------------------


class TestScheduler:
    def test_event_stream_lifecycle(self, tmp_path):
        engine = ProofEngine()
        engine.add(smt_vc("g1", "lemmas", _goal_x_eq_x))
        engine.add(forall_vc("f1", "demo", [1, 2], lambda x: x > 0))
        cache = ProofCache(str(tmp_path))
        scheduler = ProverScheduler(engine, cache=cache)
        scheduler.run()
        counts = scheduler.events.counts()
        assert counts[ev.QUEUED] == 2
        assert counts[ev.STARTED] == 2
        assert counts[ev.FINISHED] == 2
        assert counts[ev.RUN_FINISHED] == 1

        # Warm run: the SMT VC becomes a cache-hit event instead.
        engine2 = ProofEngine()
        engine2.add(smt_vc("g1", "lemmas", _goal_x_eq_x))
        engine2.add(forall_vc("f1", "demo", [1, 2], lambda x: x > 0))
        scheduler2 = ProverScheduler(engine2, cache=cache)
        scheduler2.run()
        counts2 = scheduler2.events.counts()
        assert counts2[ev.CACHE_HIT] == 1
        assert counts2[ev.STARTED] == 1
        assert scheduler2.events.summary_lines()

    def test_longest_expected_first_uses_history(self, tmp_path):
        cache = ProofCache(str(tmp_path))
        cache.store_timings({"slow": 9.0, "fast": 0.001})
        engine = ProofEngine()
        engine.add(forall_vc("fast", "demo", [1], lambda x: True))
        engine.add(forall_vc("slow", "demo", [1], lambda x: True))
        scheduler = ProverScheduler(engine, cache=cache)
        scheduler.run()
        started = [e.vc for e in scheduler.events.of_kind(ev.STARTED)]
        assert started == ["slow", "fast"]

    def test_report_order_matches_engine_order(self, tmp_path):
        engine = _lemma_engine()
        expected = [vc.name for vc in engine.vcs()]
        report = prove_all(engine, jobs=2,
                           cache=ProofCache(str(tmp_path)))
        assert [r.name for r in report.results] == expected
        assert report.wall_seconds > 0

    def test_determinism_jobs4_vs_jobs1(self):
        config1 = ProverConfig(use_cache=False)
        serial = prove_all(_lemma_engine(), jobs=1, config=config1)
        config4 = ProverConfig(use_cache=False)
        parallel = prove_all(_lemma_engine(), jobs=4, config=config4)

        assert [r.key() for r in serial.results] == \
            [r.key() for r in parallel.results]
        assert serial.proved == parallel.proved
        assert len(serial.failed) == len(parallel.failed)
        # Deterministic solver counters agree between lanes too.
        assert [r.solver_stats for r in serial.results] == \
            [r.solver_stats for r in parallel.results]

    def test_parallel_matches_serial_engine_run(self):
        engine = _lemma_engine()
        serial_report = engine.run()
        parallel = prove_all(_lemma_engine(), jobs=4,
                             config=ProverConfig(use_cache=False))
        assert [r.key() for r in serial_report.results] == \
            [r.key() for r in parallel.results]

    def test_warm_cache_full_population_hits(self, tmp_path):
        cache = ProofCache(str(tmp_path))
        cold = prove_all(_lemma_engine(), jobs=2, cache=cache)
        assert cold.cache_hits == 0
        warm = prove_all(_lemma_engine(), jobs=2, cache=cache)
        assert warm.total == cold.total
        assert warm.cache_hits / warm.total >= 0.9
        assert [r.key() for r in warm.results] == \
            [r.key() for r in cold.results]

    def test_failed_vcs_keep_counterexamples_under_parallelism(self):
        def build():
            engine = ProofEngine()
            engine.rebuild_spec = ("test-failing-pop", {})
            engine.add(forall_vc("all_small", "demo", list(range(5)),
                                 lambda x: x < 3))
            x = ast.bv_var("x", 8)
            engine.add(smt_vc("x_is_zero", "lemmas",
                              lambda: ast.eq(x, ast.bv_const(0, 8))))
            return engine

        register_builder("test-failing-pop", build)
        report = prove_all(build(), jobs=2,
                           config=ProverConfig(use_cache=False))
        by_name = {r.name: r for r in report.results}
        assert by_name["all_small"].status is VCStatus.FAILED
        assert by_name["all_small"].counterexample == 3
        assert by_name["x_is_zero"].status is VCStatus.FAILED
        assert by_name["x_is_zero"].counterexample  # a model for x != 0

    def test_unreconstructible_population_falls_back_to_threads(self):
        engine = ProofEngine()  # no rebuild_spec: closures cannot pickle
        engine.add(forall_vc("a", "demo", [1, 2], lambda x: x > 0))
        engine.add(smt_vc("g", "lemmas", _goal_x_eq_x))
        scheduler = ProverScheduler(
            engine, config=ProverConfig(jobs=3, use_cache=False))
        report = scheduler.run()
        assert report.all_proved
        lanes = {e.worker for e in scheduler.events.of_kind(ev.STARTED)}
        assert lanes == {"thread"}

    def test_worker_error_is_reported_not_raised(self):
        def build():
            engine = ProofEngine()
            engine.rebuild_spec = ("test-error-pop", {})

            def boom():
                raise RuntimeError("kaput")

            from repro.verif.vc import VC
            engine.add(VC(name="bad", category="demo", check=boom))
            return engine

        register_builder("test-error-pop", build)
        report = prove_all(build(), jobs=2,
                           config=ProverConfig(use_cache=False))
        assert report.results[0].status is VCStatus.ERROR
        assert "kaput" in report.results[0].detail


# ---------------------------------------------------------------------------
# ProofReport.cdf downsampling (regression: `points` used to be ignored)
# ---------------------------------------------------------------------------


class TestReportCdf:
    def _report(self, n):
        from repro.verif.engine import ProofReport
        from repro.verif.vc import VCResult

        return ProofReport(results=[
            VCResult(name=f"vc{i}", status=VCStatus.PROVED,
                     seconds=float(i + 1), category="demo")
            for i in range(n)
        ])

    def test_downsamples_to_points(self):
        report = self._report(220)
        series = report.cdf(points=50)
        assert len(series) == 50
        # The final sample is always the slowest VC at fraction 1.0.
        assert series[-1] == (220.0, 1.0)
        # Fractions are non-decreasing.
        fractions = [f for _, f in series]
        assert fractions == sorted(fractions)

    def test_small_population_returned_whole(self):
        report = self._report(7)
        series = report.cdf(points=50)
        assert len(series) == 7
        assert series[-1] == (7.0, 1.0)

    def test_default_caps_at_50(self):
        assert len(self._report(220).cdf()) == 50

    def test_points_validated(self):
        with pytest.raises(ValueError):
            self._report(3).cdf(points=0)

    def test_empty_report(self):
        assert self._report(0).cdf() == []


# ---------------------------------------------------------------------------
# Family grouping / incremental assumption solving
# ---------------------------------------------------------------------------


def _family_goal(k, width=8):
    """One instantiation of a shared lemma template: (x | k) & k == k.
    Valid for every constant k; all instantiations share their AIG shape."""
    x = ast.bv_var("x", width)
    c = ast.bv_const(k, width)
    return ast.eq(ast.bvand(ast.bvor(x, c), c), c)


def _family_engine(constants=(0x0F, 0x3C, 0x55, 0xF0)) -> ProofEngine:
    engine = ProofEngine()
    for k in constants:
        engine.add(smt_vc(f"family_or_absorb_{k:#x}", "lemmas",
                          lambda k=k: _family_goal(k)))
    return engine


class TestFamilyGrouping:
    def test_same_shape_goals_share_a_fingerprint(self):
        from repro.prover.fingerprint import family_fingerprint

        fps = {family_fingerprint(_family_goal(k))
               for k in (0x0F, 0x3C, 0x55)}
        assert len(fps) == 1
        # a different template is a different family
        assert family_fingerprint(_goal_x_eq_x()) not in fps

    def test_family_discharge_matches_classic_verdicts(self):
        incremental = prove_all(
            _family_engine(),
            config=ProverConfig(use_cache=False, incremental=True))
        classic = prove_all(
            _family_engine(),
            config=ProverConfig(use_cache=False, incremental=False))
        assert incremental.all_proved
        assert [r.key() for r in incremental.results] == \
            [r.key() for r in classic.results]

    def test_lemma_population_identical_with_and_without_grouping(self):
        grouped = prove_all(
            _lemma_engine(),
            config=ProverConfig(use_cache=False, incremental=True))
        ungrouped = prove_all(
            _lemma_engine(),
            config=ProverConfig(use_cache=False, incremental=False))
        assert [r.key() for r in grouped.results] == \
            [r.key() for r in ungrouped.results]

    def test_family_reuse_counter_increments(self):
        from repro import obs

        counter = obs.counter("prover.family_reuse")
        before = counter.value
        report = prove_all(
            _family_engine(),
            config=ProverConfig(use_cache=False, incremental=True))
        assert report.all_proved
        # 4 members, 1 shared solver: 3 discharges reused a context
        assert counter.value - before == 3

    def test_failing_member_keeps_counterexample(self):
        """A family where one member is false: its model must survive the
        shared-solver path (reconstruction + concrete re-evaluation) while
        the true members still prove."""
        engine = _family_engine(constants=(0x0F, 0x3C))
        x = ast.bv_var("x", 8)
        bad = ast.eq(ast.bvand(ast.bvor(x, ast.bv_const(0x55, 8)),
                               ast.bv_const(0x55, 8)),
                     ast.bv_const(0x54, 8))  # never true
        engine.add(smt_vc("family_or_absorb_bad", "lemmas", lambda: bad))
        report = prove_all(
            engine, config=ProverConfig(use_cache=False, incremental=True))
        by_name = {r.name: r for r in report.results}
        assert by_name["family_or_absorb_0xf"].ok
        assert by_name["family_or_absorb_0x3c"].ok
        failed = by_name["family_or_absorb_bad"]
        assert failed.status is VCStatus.FAILED
        assert failed.counterexample is not None

    def test_jobs4_matches_jobs1_with_families(self):
        serial = prove_all(_family_engine(), jobs=1,
                           config=ProverConfig(use_cache=False))
        parallel = prove_all(_family_engine(), jobs=4,
                             config=ProverConfig(use_cache=False))
        assert [r.key() for r in serial.results] == \
            [r.key() for r in parallel.results]
        assert [r.solver_stats for r in serial.results] == \
            [r.solver_stats for r in parallel.results]

    def test_incremental_flag_changes_cache_key(self):
        goal = _goal_x_eq_x()
        assert goal_fingerprint(goal, incremental=True) != \
            goal_fingerprint(goal, incremental=False)
        assert goal_fingerprint(goal, preprocess=True) != \
            goal_fingerprint(goal, preprocess=False)

    def test_hard_family_sound_under_shared_solver(self):
        """A family needing real CDCL search: shared-solver verdicts must
        match single-shot verdicts member by member."""
        from repro.smt.solver import FamilySolver, prove

        def goal(k, width=4):
            x = ast.bv_var("x", width)
            c = ast.bv_const(k, width)
            s = ast.bvadd(x, c)
            lhs = ast.bvmul(s, s)
            two_c = ast.bv_const((2 * k) % (1 << width), width)
            rhs = ast.bvadd(ast.bvadd(ast.bvmul(x, x),
                                      ast.bvmul(two_c, x)),
                            ast.bvmul(c, c))
            return ast.eq(lhs, rhs)

        goals = [goal(k) for k in (1, 2, 3)]
        shared = FamilySolver(goals)
        for index, g in enumerate(goals):
            member = shared.prove_member(index)
            single = prove(g)
            assert member.sat == single.sat is False, index
