"""The per-node WAL: framing, recovery, compaction, and its crash
matrix on the verified filesystem."""

from repro.cluster.wal import (
    HEADER_BYTES,
    NodeWal,
    decode_records,
    encode_record,
)
from repro.faults.crash import run_crash_matrix
from repro.faults.plan import FaultPlan, FaultRule
from repro.hw.devices.disk import Disk, DiskCrash
from repro.nros.drivers.block import BlockDriver
from repro.nros.fs import fd as fdmod
from repro.nros.fs.fs import FileSystem


def _fresh_fs(num_sectors=128):
    disk = Disk(num_sectors)
    fs = FileSystem.mkfs(BlockDriver(disk), num_inodes=64)
    return disk, fs


# -- record framing ---------------------------------------------------------


def test_codec_roundtrip():
    stream = (encode_record("a", "v1", 1)
              + encode_record("b", None, 2)        # tombstone
              + encode_record(None, 2, 7))          # commit marker
    records, clean = decode_records(stream)
    assert clean
    assert records == [("a", "v1", 1), ("b", None, 2), (None, 2, 7)]


def test_torn_tail_is_ignored_not_fatal():
    stream = encode_record("a", "v1", 1) + encode_record("b", "v2", 2)
    torn = stream[:len(stream) - 5]                  # power died mid-append
    records, clean = decode_records(torn)
    assert not clean
    assert records == [("a", "v1", 1)]


def test_corrupt_payload_fails_checksum():
    stream = bytearray(encode_record("a", "v1", 1))
    stream[HEADER_BYTES + 2] ^= 0xFF                 # flip a payload byte
    records, clean = decode_records(bytes(stream))
    assert not clean
    assert records == []


def test_garbage_prefix_stops_decode():
    records, clean = decode_records(b"not a wal record at all")
    assert not clean and records == []


# -- NodeWal lifecycle ------------------------------------------------------


def test_fresh_volume_starts_generation_zero():
    _, fs = _fresh_fs()
    wal, recovery = NodeWal.open(fdmod.FdTable(fs))
    assert wal.gen == 0
    assert recovery.entries == {}
    assert recovery.cleaned_files == []
    assert wal.files() == ["/wal.0"]


def test_reopen_recovers_appends_and_rewrites_clean_generation():
    _, fs = _fresh_fs()
    wal, _ = NodeWal.open(fdmod.FdTable(fs))
    wal.append("k1", "a", 1)
    wal.append("k2", "b", 2)
    wal.append("k1", "c", 4)                         # newer version wins

    wal2, recovery = NodeWal.open(fdmod.FdTable(fs))
    assert recovery.entries == {"k1": ("c", 4), "k2": ("b", 2)}
    assert recovery.replayed_records == 3
    # recovery leaves exactly one clean generation behind
    assert wal2.gen > wal.gen
    assert wal2.files() == [f"/snap.{wal2.gen}", f"/wal.{wal2.gen}"]
    # ...which a further reopen replays identically (idempotent recovery)
    _, again = NodeWal.open(fdmod.FdTable(fs))
    assert again.entries == recovery.entries


def test_compaction_rotates_generation_and_prunes_old_files():
    _, fs = _fresh_fs()
    wal, _ = NodeWal.open(fdmod.FdTable(fs), compact_every=2)
    state = {}
    for i in range(2):
        state[f"k{i}"] = (f"v{i}", i + 1)
        wal.append(f"k{i}", f"v{i}", i + 1)
    assert wal.should_compact()
    wal.compact(dict(state))
    assert wal.gen == 1
    assert wal.compactions == 1
    assert wal.appended == 0
    assert wal.files() == ["/snap.1", "/wal.1"]
    # the snapshot alone reproduces the state
    _, recovery = NodeWal.open(fdmod.FdTable(fs))
    assert recovery.entries == state
    assert recovery.snapshot_gen == 1


def test_stray_snapshot_tmp_is_swept_on_open():
    _, fs = _fresh_fs()
    wal, _ = NodeWal.open(fdmod.FdTable(fs))
    wal.append("k", "v", 1)
    # a compaction that died before its rename leaves /snap.tmp behind
    inum = fs.create("/snap.tmp")
    fs.write_at(inum, 0, b"half-written snapshot garbage")
    wal2, recovery = NodeWal.open(fdmod.FdTable(fs))
    assert "/snap.tmp" in recovery.cleaned_files
    assert recovery.entries == {"k": ("v", 1)}
    assert wal2.files() == [f"/snap.{wal2.gen}", f"/wal.{wal2.gen}"]


def test_invalid_snapshot_falls_back_to_wal_replay():
    _, fs = _fresh_fs()
    wal, _ = NodeWal.open(fdmod.FdTable(fs), compact_every=2)
    wal.append("k0", "v0", 1)
    wal.append("k1", "v1", 2)
    wal.compact({"k0": ("v0", 1), "k1": ("v1", 2)})
    wal.append("k2", "v2", 3)
    # corrupt the committed snapshot: its commit marker no longer parses
    inum = fs.lookup(f"/snap.{wal.gen}")
    fs.write_at(inum, 0, b"X")
    _, recovery = NodeWal.open(fdmod.FdTable(fs))
    # snapshot rejected; the live WAL generation still yields k2
    assert recovery.snapshot_gen is None
    assert recovery.entries.get("k2") == ("v2", 3)


# -- the WAL's own crash matrix (unit level, no cluster) -------------------


def _wal_scenario(fs: FileSystem) -> None:
    """Ten appends over three keys with compaction every four — the
    write pattern whose every boundary the matrix crashes at."""
    fdtable = fdmod.FdTable(fs)
    wal, _ = NodeWal.open(fdtable, compact_every=4)
    state = {}
    for i in range(10):
        key = f"k{i % 3}"
        state[key] = (f"v{i}", i + 1)
        wal.append(key, f"v{i}", i + 1)
        if wal.should_compact():
            wal.compact(dict(state))


def test_wal_crash_matrix_is_fsck_recoverable_at_every_boundary():
    report = run_crash_matrix(_wal_scenario, name="cluster-wal",
                              num_sectors=128)
    assert report.crash_points > 0
    assert report.ok, report.violations


def test_every_crash_point_recovers_all_completed_appends():
    """The durability contract itself: an append that *returned* is on
    the platter, so recovery must surface that key at >= that version —
    no matter which write boundary power died at."""
    disk, fs = _fresh_fs()
    pristine = disk.snapshot()
    writes_before = disk.writes
    _wal_scenario(fs)
    total = disk.writes - writes_before

    for n in range(1, total + 1):
        plan = FaultPlan(seed=n, rules=[
            FaultRule(site="disk.write", kind="crash", at=n),
        ])
        crash_disk = Disk(128, fault_plan=plan)
        crash_disk.restore(pristine)
        crash_fs = FileSystem(BlockDriver(crash_disk))
        fdtable = fdmod.FdTable(crash_fs)
        completed: dict[str, int] = {}
        try:
            wal, _ = NodeWal.open(fdtable, compact_every=4)
            state = {}
            for i in range(10):
                key = f"k{i % 3}"
                state[key] = (f"v{i}", i + 1)
                wal.append(key, f"v{i}", i + 1)
                completed[key] = i + 1           # append returned: durable
                if wal.should_compact():
                    wal.compact(dict(state))
        except DiskCrash:
            pass

        survivor = Disk(128)
        survivor.restore(crash_disk.snapshot())
        _, recovery = NodeWal.open(
            fdmod.FdTable(FileSystem(BlockDriver(survivor))),
            compact_every=4)
        for key, version in completed.items():
            got = recovery.entries.get(key)
            assert got is not None and got[1] >= version, (
                f"crash at write {n}: completed append {key}@{version} "
                f"lost (recovered {got})")
