"""Tests for the NR step-protocol race detector: clean on the real
protocol, deterministic detection on the seeded lock-elision mutants,
and unit coverage of the lockset + vector-clock core."""

from repro.analysis.mutants import (
    MUTANTS,
    ReaderLockElisionNR,
    WriterLockElisionNR,
)
from repro.analysis.race import Access, RaceMonitor, detect_races
from repro.nr.datastructures import KvStore

SEEDS = (0, 1)


def _mutant_factory(cls):
    return lambda: cls(KvStore, num_nodes=2)


# -- the monitor core ---------------------------------------------------------------


def test_unordered_unguarded_conflict_is_a_race():
    mon = RaceMonitor()
    mon.step_begin(0)
    mon.data_write("x")
    mon.step_end("w")
    mon.step_begin(1)
    mon.data_read("x")
    mon.step_end("r")
    assert len(mon.races) == 1
    race = mon.races[0]
    assert race.location == "x"
    assert {race.first.kind, race.second.kind} == {"read", "write"}


def test_atomic_cell_release_acquire_orders_accesses():
    mon = RaceMonitor()
    mon.step_begin(0)
    mon.data_write("x")
    mon.atomic_write("cell")      # release: publish t0's clock
    mon.step_end("w")
    mon.step_begin(1)
    mon.atomic_read("cell")       # acquire: join t0's clock
    mon.data_read("x")
    mon.step_end("r")
    assert mon.races == []


def test_rwlock_release_acquire_orders_accesses():
    mon = RaceMonitor()
    mon.step_begin(0)
    mon.acquire("L", "write")
    mon.data_write("x")
    mon.release("L", "write")
    mon.step_end("w")
    mon.step_begin(1)
    mon.acquire("L", "read")
    mon.data_read("x")
    mon.release("L", "read")
    mon.step_end("r")
    assert mon.races == []


def test_lockset_guard_needs_common_lock_with_write_mode():
    def access(thread, kind, locks):
        return Access(thread=thread, kind=kind, clock={}, locks=locks,
                      label=None, seq=0)

    writer = access(0, "write", frozenset({("L", "write")}))
    reader = access(1, "read", frozenset({("L", "read")}))
    other = access(1, "read", frozenset({("M", "read")}))
    both_read = access(1, "read", frozenset({("L", "read")}))
    reader2 = access(0, "read", frozenset({("L", "read")}))
    assert RaceMonitor._guarded(writer, reader)
    assert not RaceMonitor._guarded(writer, other)
    assert not RaceMonitor._guarded(reader2, both_read)


def test_same_thread_accesses_never_race():
    mon = RaceMonitor()
    for label in ("a", "b"):
        mon.step_begin(0)
        mon.data_write("x")
        mon.step_end(label)
    assert mon.races == []


# -- the real protocol --------------------------------------------------------------


def test_real_nr_protocol_has_no_races():
    report = detect_races(SEEDS)
    assert report.clean, [r.render() for r in report.races]
    assert report.schedules == len(SEEDS)
    assert report.steps > 0
    assert report.accesses > 0


# -- the seeded mutants -------------------------------------------------------------


def test_reader_lock_elision_is_detected_at_fixed_seed():
    report = detect_races((0,),
                          nr_factory=_mutant_factory(ReaderLockElisionNR))
    assert len(report.races) >= 1
    race = report.races[0]
    assert race.location.endswith(".ds")
    kinds = {race.first.kind, race.second.kind}
    assert "write" in kinds
    # The unlocked access is the reader's READ step.
    unlocked = [a for a in (race.first, race.second) if not a.locks]
    assert unlocked and all(a.label == "read" for a in unlocked)


def test_writer_lock_elision_is_detected_at_fixed_seed():
    report = detect_races((0,),
                          nr_factory=_mutant_factory(WriterLockElisionNR))
    assert len(report.races) >= 1
    race = report.races[0]
    assert race.location.endswith(".ds")
    unlocked = [a for a in (race.first, race.second) if not a.locks]
    assert unlocked and all(a.label == "apply" for a in unlocked)


def test_detection_is_deterministic():
    runs = [detect_races((0,),
                         nr_factory=_mutant_factory(ReaderLockElisionNR))
            for _ in range(2)]
    rendered = [[race.render() for race in run.races] for run in runs]
    assert rendered[0] == rendered[1]
    assert runs[0].steps == runs[1].steps
    assert runs[0].accesses == runs[1].accesses


def test_every_registered_mutant_is_caught():
    for name, cls in MUTANTS.items():
        report = detect_races(SEEDS, nr_factory=_mutant_factory(cls))
        assert report.races, f"mutant {name!r} was not detected"
