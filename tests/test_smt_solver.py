"""End-to-end solver tests: validity, counterexamples, model soundness."""

import random

from repro.smt import ast, interp
from repro.smt.solver import Solver, prove, counterexample
from tests.test_smt_bitblast import random_term


class TestProve:
    def test_trivial_valid(self):
        x = ast.bv_var("x", 8)
        assert not prove(ast.eq(x, x)).sat  # valid => negation UNSAT

    def test_trivial_invalid(self):
        x = ast.bv_var("x", 8)
        result = prove(ast.eq(x, ast.bv_const(0, 8)))
        assert result.sat
        assert result.model["x"] != 0

    def test_add_commutes(self):
        x = ast.bv_var("x", 16)
        y = ast.bv_var("y", 16)
        assert counterexample(ast.eq(x + y, y + x)) is None

    def test_add_associates(self):
        x = ast.bv_var("x", 8)
        y = ast.bv_var("y", 8)
        z = ast.bv_var("z", 8)
        assert counterexample(ast.eq((x + y) + z, x + (y + z))) is None

    def test_sub_is_add_neg(self):
        x = ast.bv_var("x", 12)
        y = ast.bv_var("y", 12)
        assert counterexample(ast.eq(x - y, x + ast.bvneg(y))) is None

    def test_demorgan(self):
        x = ast.bv_var("x", 8)
        y = ast.bv_var("y", 8)
        goal = ast.eq(ast.bvnot(x & y), ast.bvnot(x) | ast.bvnot(y))
        assert counterexample(goal) is None

    def test_ult_total_order(self):
        x = ast.bv_var("x", 8)
        y = ast.bv_var("y", 8)
        goal = ast.or_(ast.ult(x, y), ast.ult(y, x), ast.eq(x, y))
        assert counterexample(goal) is None

    def test_wrong_lemma_gives_countermodel(self):
        x = ast.bv_var("x", 8)
        y = ast.bv_var("y", 8)
        # x - y == y - x is false in general
        goal = ast.eq(x - y, y - x)
        model = counterexample(goal)
        assert model is not None
        assert interp.evaluate(goal, model) is False

    def test_overflow_lemma(self):
        """x < x + 1 fails exactly at the max value — solver finds it."""
        x = ast.bv_var("x", 8)
        goal = ast.ult(x, x + ast.bv_const(1, 8))
        model = counterexample(goal)
        assert model == {"x": 0xFF}

    def test_guarded_overflow_lemma_valid(self):
        x = ast.bv_var("x", 8)
        guard = ast.ult(x, ast.bv_const(0xFF, 8))
        goal = ast.implies(guard, ast.ult(x, x + ast.bv_const(1, 8)))
        assert counterexample(goal) is None

    def test_alignment_lemma(self):
        """aligned(va, 4096) implies low 12 bits are zero."""
        va = ast.bv_var("va", 64)
        aligned = ast.eq(
            va & ast.bv_const(0xFFF, 64), ast.bv_const(0, 64)
        )
        low_zero = ast.eq(ast.extract(va, 11, 0), ast.bv_const(0, 12))
        assert counterexample(ast.implies(aligned, low_zero)) is None

    def test_page_offset_fits(self):
        """aligned base + offset < 4096 stays within the page (no carry
        into the frame bits)."""
        base = ast.bv_var("base", 64)
        off = ast.bv_var("off", 64)
        four_k = ast.bv_const(0x1000, 64)
        aligned = ast.eq(base & ast.bv_const(0xFFF, 64), ast.bv_const(0, 64))
        in_page = ast.ult(off, four_k)
        same_frame = ast.eq(
            (base + off) & ast.bv_const(0xFFFF_FFFF_FFFF_F000, 64),
            base & ast.bv_const(0xFFFF_FFFF_FFFF_F000, 64),
        )
        goal = ast.implies(ast.and_(aligned, in_page), same_frame)
        assert counterexample(goal) is None


class TestSolverApi:
    def test_multiple_assertions_conjunction(self):
        x = ast.bv_var("x", 8)
        s = Solver()
        s.add(ast.ult(ast.bv_const(10, 8), x))
        s.add(ast.ult(x, ast.bv_const(12, 8)))
        result = s.check()
        assert result.sat
        assert result.model["x"] == 11

    def test_unsat_conjunction(self):
        x = ast.bv_var("x", 8)
        s = Solver()
        s.add(ast.ult(x, ast.bv_const(5, 8)))
        s.add(ast.ult(ast.bv_const(10, 8), x))
        assert not s.check().sat

    def test_non_bool_assertion_rejected(self):
        s = Solver()
        try:
            s.add(ast.bv_var("x", 8))
        except TypeError:
            return
        raise AssertionError("expected TypeError")

    def test_empty_check_sat(self):
        assert Solver().check().sat

    def test_stats_structural(self):
        x = ast.bv_var("x", 8)
        result = prove(ast.eq(x, x))
        assert result.stats.decided_structurally

    def test_stats_cnf_counts(self):
        x = ast.bv_var("x", 8)
        y = ast.bv_var("y", 8)
        s = Solver()
        s.add(ast.eq(x * y, ast.bv_const(143, 8)))
        result = s.check()
        assert result.sat
        assert (result.model["x"] * result.model["y"]) & 0xFF == 143
        assert result.stats.cnf_vars > 0
        assert result.stats.cnf_clauses > 0

    def test_no_simplify_mode_still_sound(self):
        x = ast.bv_var("x", 16)
        y = ast.bv_var("y", 16)
        goal = ast.eq(x + y, y + x)
        assert not prove(goal, simplify=False).sat


class TestRandomEquivalence:
    """Random miters: solver verdict must agree with brute-force sampling."""

    def test_random_miters(self):
        from tests.test_smt_bitblast import LINEAR_OPS

        rng = random.Random(77)
        for _ in range(20):
            a = random_term(rng, 3, width=6, ops=LINEAR_OPS)
            b = random_term(rng, 3, width=6, ops=LINEAR_OPS)
            goal = ast.eq(a, b)
            # Brute-force ground truth over all 2^18 assignments is too
            # slow; use the solver and then *verify* its answer.
            result = prove(goal)
            if result.sat:
                assert interp.evaluate(goal, result.model) is False
            else:
                for _ in range(64):
                    env = {n: rng.randrange(64) for n in "abc"}
                    assert interp.evaluate(goal, env) is True
