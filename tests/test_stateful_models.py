"""Hypothesis stateful (model-based) testing.

Two rule-based state machines drive long random operation sequences and
compare the real implementations against functional models after every
step — the page table against the abstract map (a randomized extension of
the refinement proof) and the filesystem against an in-memory dict model.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.pt.defs import Flags, PageSize
from repro.core.pt.impl import (
    AlreadyMapped,
    NotMapped,
    PageTable,
    SimpleFrameAllocator,
)
from repro.core.refine.interp import interpret
from repro.core.spec.highlevel import AbstractState, map_enabled, unmap_enabled
from repro.hw.devices.disk import Disk
from repro.hw.mem import PhysicalMemory
from repro.nros.fs.blockdev import BlockDevice
from repro.nros.fs.fs import Exists, FileSystem, FsError, NotFound

MB = 1024 * 1024

VADDRS = [0x1000, 0x2000, 0x40_0000, 0x60_0000, 1 << 30, 1 << 39]
FRAMES = [0x10_0000, 0x20_0000, 0x40_0000, 0x4000_0000]
SIZES = [PageSize.SIZE_4K, PageSize.SIZE_2M, PageSize.SIZE_1G]


class PageTableModelMachine(RuleBasedStateMachine):
    """The page table refines the abstract map under random op streams."""

    def __init__(self):
        super().__init__()
        self.memory = PhysicalMemory(16 * MB)
        self.allocator = SimpleFrameAllocator(self.memory, start=8 * MB)
        self.pt = PageTable(self.memory, self.allocator)
        self.spec = AbstractState()

    @rule(
        vaddr=st.sampled_from(VADDRS),
        frame=st.sampled_from(FRAMES),
        size=st.sampled_from(SIZES),
        writable=st.booleans(),
    )
    def map_page(self, vaddr, frame, size, writable):
        vaddr -= vaddr % int(size)
        frame -= frame % int(size)
        flags = Flags(writable=writable, user=True)
        args = (vaddr, frame, size, flags)
        enabled = map_enabled(self.spec, args)
        try:
            self.pt.map_frame(vaddr, frame, size, flags)
            assert enabled, f"impl mapped where spec disabled: {args}"
            self.spec = self.spec.map_page(*args)
        except AlreadyMapped:
            assert not enabled, f"impl rejected where spec enabled: {args}"

    @rule(vaddr=st.sampled_from(VADDRS), offset=st.sampled_from([0, 8, 0x800]))
    def unmap_page(self, vaddr, offset):
        probe = vaddr + offset
        enabled = unmap_enabled(self.spec, (probe,))
        try:
            removed = self.pt.unmap(probe)
            assert enabled, f"impl unmapped where spec disabled: {probe:#x}"
            base, pte = self.spec.lookup(probe)
            assert (removed.vaddr, removed.paddr) == (base, pte.frame)
            self.spec = self.spec.unmap_page(probe)
        except NotMapped:
            assert not enabled

    @rule(vaddr=st.sampled_from(VADDRS), offset=st.sampled_from([0, 16]))
    def resolve_agrees(self, vaddr, offset):
        probe = vaddr + offset
        resolved = self.pt.resolve(probe)
        hit = self.spec.lookup(probe)
        if hit is None:
            assert resolved is None
        else:
            base, pte = hit
            assert resolved is not None
            assert (resolved.vaddr, resolved.paddr, resolved.size) == (
                base, pte.frame, pte.size)

    @invariant()
    def interpretation_matches_spec(self):
        assert interpret(self.memory, self.pt.root_paddr).mappings == \
            self.spec.mappings

    @invariant()
    def allocator_balanced(self):
        # table frames allocated == frames the tree actually uses
        assert self.allocator.allocated == len(self.pt.table_frames())


TestPageTableModel = PageTableModelMachine.TestCase
TestPageTableModel.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)


NAMES = ["a", "b", "c", "dir1/x", "dir1/y", "dir2/z"]


class FsModelMachine(RuleBasedStateMachine):
    """The filesystem agrees with a dict model under random namespaces
    and I/O."""

    def __init__(self):
        super().__init__()
        disk = Disk(512)
        self.fs = FileSystem.mkfs(BlockDevice(disk))
        self.fs.mkdir("/dir1")
        self.fs.mkdir("/dir2")
        self.model: dict[str, bytes] = {}

    def _path(self, name):
        return "/" + name

    @rule(name=st.sampled_from(NAMES))
    def create(self, name):
        try:
            self.fs.create(self._path(name))
            assert name not in self.model
            self.model[name] = b""
        except Exists:
            assert name in self.model

    @rule(name=st.sampled_from(NAMES),
          offset=st.integers(0, 5000),
          data=st.binary(min_size=1, max_size=6000))
    def write(self, name, offset, data):
        if name not in self.model:
            return
        inum = self.fs.lookup(self._path(name))
        self.fs.write_at(inum, offset, data)
        current = self.model[name]
        if offset > len(current):
            current = current + b"\x00" * (offset - len(current))
        self.model[name] = current[:offset] + data + \
            current[offset + len(data):]

    @rule(name=st.sampled_from(NAMES))
    def read_full(self, name):
        if name not in self.model:
            try:
                self.fs.lookup(self._path(name))
                raise AssertionError(f"{name} exists in fs but not model")
            except FsError:
                return
        inum = self.fs.lookup(self._path(name))
        data = self.fs.read_at(inum, 0, 100_000)
        assert data == self.model[name], name

    @rule(name=st.sampled_from(NAMES))
    def unlink(self, name):
        try:
            self.fs.unlink(self._path(name))
            assert name in self.model
            del self.model[name]
        except NotFound:
            assert name not in self.model

    @rule(name=st.sampled_from(NAMES), size=st.integers(0, 3000))
    def truncate(self, name, size):
        if name not in self.model:
            return
        inum = self.fs.lookup(self._path(name))
        current = self.model[name]
        if size > len(current):
            return  # truncate cannot extend
        self.fs.truncate(inum, size)
        self.model[name] = current[:size]

    @invariant()
    def listings_agree(self):
        expected_root = sorted(
            {"dir1", "dir2"} | {n for n in self.model if "/" not in n}
        )
        assert self.fs.readdir("/") == expected_root
        for directory in ("dir1", "dir2"):
            expected = sorted(
                n.split("/", 1)[1] for n in self.model
                if n.startswith(directory + "/")
            )
            assert self.fs.readdir("/" + directory) == expected

    @invariant()
    def sizes_agree(self):
        for name, data in self.model.items():
            stat = self.fs.stat(self._path(name))
            assert stat.size == len(data), name

    @invariant()
    def volume_fsck_clean(self):
        from repro.nros.fs.fsck import fsck

        assert fsck(self.fs) == []


TestFsModel = FsModelMachine.TestCase
TestFsModel.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
