"""Tests for the rely-guarantee interference models (repro.verif.rgspec)
and their stability VC family (repro.verif.rgproof)."""

from repro.verif import rgspec as rs
from repro.verif.explore import check_inductive, reachable_states
from repro.verif.rgproof import MAX_STATES, rg_vcs
from repro.verif.statemachine import SpecStateMachine


def _explored(builder):
    machine = builder()
    result = reachable_states(machine, max_states=MAX_STATES)
    assert not result.truncated, "model stopped being finite"
    assert result.ok, result.violation
    return machine, result


def test_pmem_model_is_finite_and_invariant():
    _machine, result = _explored(rs.pmem_machine)
    # 8 frames, orders 0..3: the reachable buddy-decomposition space.
    assert len(result.states) == 677


def test_vspace_model_is_finite_and_invariant():
    _machine, result = _explored(rs.vspace_machine)
    assert len(result.states) == 201


def test_every_invariant_is_stable_under_every_action():
    """The tentpole obligation, checked directly: each invariant is
    inductive under a sub-machine containing one interfering action."""
    for model, builder, invariants in rs.MODELS:
        machine, result = _explored(builder)
        for transition in machine.transitions:
            sub = SpecStateMachine(
                name=f"{machine.name}-{transition.name}",
                init_states=machine.init_states,
                transitions=[transition],
                invariants=machine.invariants,
            )
            for invariant in invariants:
                counterexample = check_inductive(sub, result.states,
                                                 invariant)
                assert counterexample is None, (
                    model, invariant, transition.name, counterexample)


def test_pmem_free_coalesces_eagerly():
    state = rs.pmem_init()
    state = rs._pmem_alloc(state, (0,))      # split down to order 0
    assert any(state.free[k] for k in range(rs.PMEM_MAX_ORDER))
    state = rs._pmem_free(state, (0,))       # merges all the way back
    assert state == rs.pmem_init()


def test_vspace_unmap_is_atomic_wrt_tlbs():
    state = rs.vs_init()
    state = rs._vs_map(state, (0, 0, 1))
    state = rs._vs_sync(state, (0,))
    state = rs._vs_fill(state, (0, 0))
    assert state.tlbs[0]
    state = rs._vs_unmap(state, (1, 0))
    assert all(tlb == () for tlb in state.tlbs)
    assert rs.vs_final(state) == ()


def test_vspace_canonicalization_bounds_the_log():
    state = rs.vs_init()
    for index in range(4):                   # map/unmap forever...
        state = rs._vs_map(state, (0, 0, index % 2))
        state = rs._vs_unmap(state, (0, 0))
    assert len(state.log) <= rs.VS_MAX_LAG   # ...log stays bounded
    assert min(state.applied) == 0


def test_rg_vc_family_shape():
    vcs = rg_vcs()
    names = [vc.name for vc in vcs]
    assert len(names) == len(set(names))
    assert all(vc.category == "rg" for vc in vcs)
    # one stability VC per (invariant x action) pair, per model
    for model, builder, invariants in rs.MODELS:
        actions = [t.name for t in builder().transitions]
        for invariant in invariants:
            for action in actions:
                expected = (f"rg-stable-"
                            f"{invariant.replace('_', '-')}"
                            f"-under-{action}")
                assert expected in names
    for required in ("rg-spec-explored-pmem", "rg-spec-explored-vspace",
                     "rg-spec-detects-violations-pmem",
                     "rg-spec-detects-violations-vspace",
                     "rg-impl-pmem-trace", "rg-impl-vspace-shootdown",
                     "rg-static-interference-free",
                     "rg-lockorder-clean"):
        assert required in names


def test_rg_vcs_all_discharge():
    for vc in rg_vcs():
        assert vc.check() is None, (vc.name, vc.check())


def test_vacuity_states_do_violate():
    from repro.verif.rgproof import (_broken_pmem_states,
                                     _broken_vspace_states)

    for name, state in _broken_pmem_states().items():
        assert not rs.PMEM_INVARIANTS[name](state), name
    for name, state in _broken_vspace_states().items():
        assert not rs.VSPACE_INVARIANTS[name](state), name


def test_prove_layer_includes_rg():
    from repro.core.refine.proof import build_proof

    engine = build_proof(include_lemmas=False, include_structural=False,
                         include_nr=False, include_contract=False,
                         include_rg=True)
    assert engine.vc_count == len(rg_vcs())
    assert engine.rebuild_spec[1]["include_rg"] is True
