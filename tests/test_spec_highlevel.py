"""Tests for the high-level abstract specification and FrozenMap."""

import pytest

from repro.core.pt.defs import Flags, PageSize
from repro.core.spec.highlevel import (
    AbstractPte,
    AbstractState,
    highlevel_machine,
    map_enabled,
    unmap_enabled,
    write_enabled,
)
from repro.immutable import EMPTY_MAP, FrozenMap
from repro.verif.explore import reachable_states


class TestFrozenMap:
    def test_set_is_persistent(self):
        a = FrozenMap()
        b = a.set("x", 1)
        assert "x" not in a
        assert b["x"] == 1

    def test_remove(self):
        m = FrozenMap({"x": 1, "y": 2}).remove("x")
        assert "x" not in m and m["y"] == 2
        with pytest.raises(KeyError):
            m.remove("zz")

    def test_equality_and_hash(self):
        assert FrozenMap({"a": 1}) == FrozenMap({"a": 1})
        assert hash(FrozenMap({"a": 1})) == hash(FrozenMap({"a": 1}))
        assert FrozenMap({"a": 1}) != FrozenMap({"a": 2})

    def test_usable_in_sets(self):
        s = {FrozenMap({"a": 1}), FrozenMap({"a": 1}), FrozenMap()}
        assert len(s) == 2

    def test_merge_and_iteration(self):
        m = FrozenMap({"a": 1}).merge({"b": 2})
        assert sorted(m.keys()) == ["a", "b"]
        assert len(m) == 2
        assert EMPTY_MAP.get("nope") is None


class TestAbstractState:
    def setup_method(self):
        self.state = AbstractState().map_page(
            0x1000, 0x40_0000, PageSize.SIZE_4K, Flags.user_rw()
        )

    def test_lookup_and_translate(self):
        base, pte = self.state.lookup(0x1FF8)
        assert base == 0x1000 and pte.frame == 0x40_0000
        assert self.state.translate(0x1008) == 0x40_0008
        assert self.state.translate(0x3000) is None

    def test_overlaps(self):
        assert self.state.overlaps(0x1000, PageSize.SIZE_4K)
        assert self.state.overlaps(0, PageSize.SIZE_2M)  # covers 0x1000
        assert not self.state.overlaps(0x2000, PageSize.SIZE_4K)

    def test_unmap(self):
        cleared = self.state.unmap_page(0x1FF0)  # interior address
        assert cleared.lookup(0x1000) is None

    def test_read_write_word(self):
        written = self.state.write_word(0x1010, 0xABCD)
        assert written.read_word(0x1010) == 0xABCD
        assert self.state.read_word(0x1010) == 0  # original unchanged

    def test_aliasing_through_shared_frame(self):
        aliased = self.state.map_page(
            0x7000, 0x40_0000, PageSize.SIZE_4K, Flags.user_rw()
        )
        written = aliased.write_word(0x1010, 7)
        assert written.read_word(0x7010) == 7  # same frame, other vaddr

    def test_write_unmapped_raises(self):
        with pytest.raises(ValueError):
            self.state.write_word(0x9000, 1)
        with pytest.raises(ValueError):
            self.state.read_word(0x9000)

    def test_huge_page_lookup(self):
        s = AbstractState().map_page(
            0x20_0000, 0x40_0000, PageSize.SIZE_2M, Flags.kernel_rw()
        )
        assert s.translate(0x20_0000 + 0x12340) == 0x40_0000 + 0x12340


class TestEnablingConditions:
    def test_map_enabled(self):
        s = AbstractState()
        assert map_enabled(s, (0x1000, 0x2000, PageSize.SIZE_4K, Flags()))
        assert not map_enabled(s, (0x1001, 0x2000, PageSize.SIZE_4K, Flags()))
        assert not map_enabled(s, (0x1000, 0x2001, PageSize.SIZE_4K, Flags()))
        assert not map_enabled(s, (1 << 48, 0x2000, PageSize.SIZE_4K, Flags()))
        mapped = s.map_page(0x1000, 0x2000, PageSize.SIZE_4K, Flags())
        assert not map_enabled(mapped, (0x1000, 0x3000, PageSize.SIZE_4K, Flags()))

    def test_unmap_enabled(self):
        s = AbstractState().map_page(0x1000, 0x2000, PageSize.SIZE_4K, Flags())
        assert unmap_enabled(s, (0x1000,))
        assert unmap_enabled(s, (0x1ff8,))
        assert not unmap_enabled(s, (0x3000,))

    def test_write_enabled_needs_writable(self):
        ro = AbstractState().map_page(
            0x1000, 0x2000, PageSize.SIZE_4K, Flags(writable=False)
        )
        assert not write_enabled(ro, (0x1000, 1))
        rw = AbstractState().map_page(
            0x1000, 0x2000, PageSize.SIZE_4K, Flags(writable=True)
        )
        assert write_enabled(rw, (0x1000, 1))


class TestMachineExploration:
    def test_invariants_hold_over_reachable_space(self):
        machine = highlevel_machine(
            vaddrs=(0x1000, 0x2000),
            frames=(0x10_0000, 0x20_0000),
        )
        result = reachable_states(machine, max_states=500)
        assert result.ok
        assert len(result.states) > 4

    def test_mixed_sizes_no_overlap_invariant(self):
        machine = highlevel_machine(
            vaddrs=(0x0, 0x20_0000),
            frames=(0x0, 0x20_0000),
            sizes=(PageSize.SIZE_4K, PageSize.SIZE_2M),
        )
        result = reachable_states(machine, max_states=800)
        assert result.ok
        # overlap prevention: no state maps both 0x0 (2M) and 0x1000-page
        for state in result.states:
            spans = [
                (b, b + int(p.size)) for b, p in state.mappings.items()
            ]
            spans.sort()
            for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
                assert b_start >= a_end
