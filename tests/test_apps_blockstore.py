"""Storage-node tests, including the model-based 'lightweight formal
methods' check the paper's motivating example calls for."""

import random
import zlib

import pytest

from repro.apps.blockstore import (
    BlockClient,
    BlockStoreError,
    BlockStoreModel,
    storage_node,
)
from repro.apps.checksum import crc32
from repro.nros.cluster import Cluster
from repro.nros.kernel import Kernel
from repro.nros.net.ip import ip_addr

SERVER_IP = ip_addr("10.1.0.1")
CLIENT_IP = ip_addr("10.1.0.2")
PORT = 9400


class TestCrc32:
    def test_known_vectors(self):
        assert crc32(b"") == 0
        assert crc32(b"123456789") == 0xCBF43926  # the classic check value

    def test_matches_zlib(self):
        rng = random.Random(3)
        for _ in range(20):
            data = bytes(rng.randrange(256) for _ in range(rng.randrange(200)))
            assert crc32(data) == zlib.crc32(data)

    def test_incremental(self):
        whole = crc32(b"hello world")
        # incremental use: crc of concatenation via intermediate state is
        # not simple chaining for CRC-32 final xor; verify one-shot only
        assert whole == zlib.crc32(b"hello world")


def run_blockstore(client_script, drop_rate=0.0, seed=0, num_connections=1):
    """Run `client_script(client)` (a generator factory) against a server."""
    cluster = Cluster()
    server = cluster.add(Kernel(ip=SERVER_IP, hostname="store",
                                disk_sectors=2048))
    clientk = cluster.add(Kernel(ip=CLIENT_IP, hostname="client"))
    cluster.connect(server, clientk, drop_rate=drop_rate, seed=seed)
    server.register_program("storage_node", storage_node)
    clientk.register_program("client", client_script)
    server.spawn("storage_node", (PORT, num_connections))
    clientk.spawn("client")
    cluster.run()
    return server, clientk


class TestBlockStore:
    def test_put_get_roundtrip(self):
        results = {}

        def client():
            c = BlockClient(SERVER_IP, PORT)
            yield from c.connect()
            yield from c.put("blob1", b"block store payload")
            results["data"] = yield from c.get("blob1")
            results["missing"] = yield from c.get("nope")
            yield from c.close()

        run_blockstore(client)
        assert results["data"] == b"block store payload"
        assert results["missing"] is None

    def test_delete_and_list(self):
        results = {}

        def client():
            c = BlockClient(SERVER_IP, PORT)
            yield from c.connect()
            yield from c.put("a", b"1")
            yield from c.put("b", b"2")
            results["listing"] = yield from c.list_keys()
            results["deleted"] = yield from c.delete("a")
            results["deleted_again"] = yield from c.delete("a")
            results["after"] = yield from c.list_keys()
            yield from c.close()

        run_blockstore(client)
        assert sorted(results["listing"]) == ["a", "b"]
        assert results["deleted"] is True
        assert results["deleted_again"] is False
        assert results["after"] == ("b",)

    def test_overwrite(self):
        results = {}

        def client():
            c = BlockClient(SERVER_IP, PORT)
            yield from c.connect()
            yield from c.put("k", b"old")
            yield from c.put("k", b"new contents")
            results["data"] = yield from c.get("k")
            yield from c.close()

        run_blockstore(client)
        assert results["data"] == b"new contents"

    def test_large_block_over_lossy_link(self):
        payload = bytes(range(256)) * 64  # 16 KiB
        results = {}

        def client():
            c = BlockClient(SERVER_IP, PORT)
            yield from c.connect()
            yield from c.put("big", payload)
            results["data"] = yield from c.get("big")
            yield from c.close()

        run_blockstore(client, drop_rate=0.15, seed=11)
        assert results["data"] == payload

    def test_corrupted_block_detected(self):
        """Flip bits in the stored file behind the server's back: the node
        must refuse to serve the corrupted block."""
        results = {}
        cluster = Cluster()
        server = cluster.add(Kernel(ip=SERVER_IP, disk_sectors=2048))
        clientk = cluster.add(Kernel(ip=CLIENT_IP))
        cluster.connect(server, clientk)
        server.register_program("storage_node", storage_node)

        def client_put():
            c = BlockClient(SERVER_IP, PORT)
            yield from c.connect()
            yield from c.put("fragile", b"precious data")
            yield from c.close()

        clientk.register_program("client_put", client_put)
        server.spawn("storage_node", (PORT, 1))
        clientk.spawn("client_put")
        cluster.run()

        # corrupt the on-disk block (bit flip in the payload area)
        inum = server.fs.lookup("/blocks/fragile")
        stored = server.fs.read_at(inum, 0, 10_000)
        corrupted = bytearray(stored)
        corrupted[-3] ^= 0x40
        server.fs.write_at(inum, 0, bytes(corrupted))

        def client_get():
            c = BlockClient(SERVER_IP, PORT + 1)
            yield from c.connect()
            try:
                yield from c.get("fragile")
                results["outcome"] = "served"
            except BlockStoreError as exc:
                results["outcome"] = str(exc)
            yield from c.close()

        clientk.register_program("client_get", client_get)
        server.spawn("storage_node", (PORT + 1, 1))  # fresh listener
        clientk.spawn("client_get")
        cluster.run()
        assert "corrupt" in results["outcome"]

    def test_model_based_random_ops(self):
        """The S3-style lightweight-formal-methods check: random operation
        sequences agree with the functional model."""
        rng = random.Random(1337)
        model = BlockStoreModel()
        ops = []
        keys = ["k0", "k1", "k2", "k3"]
        for _ in range(30):
            verb = rng.choice(["put", "get", "delete", "list"])
            key = rng.choice(keys)
            data = bytes(rng.randrange(256) for _ in range(rng.randrange(64)))
            ops.append((verb, key, data))

        observations = []

        def client():
            c = BlockClient(SERVER_IP, PORT)
            yield from c.connect()
            for verb, key, data in ops:
                if verb == "put":
                    yield from c.put(key, data)
                    observations.append(("put", None))
                elif verb == "get":
                    got = yield from c.get(key)
                    observations.append(("get", got))
                elif verb == "delete":
                    existed = yield from c.delete(key)
                    observations.append(("delete", existed))
                else:
                    listing = yield from c.list_keys()
                    observations.append(("list", tuple(sorted(listing))))
            yield from c.close()

        run_blockstore(client)

        # replay against the model
        index = 0
        for verb, key, data in ops:
            kind, observed = observations[index]
            index += 1
            if verb == "put":
                model.put(key, data)
            elif verb == "get":
                assert observed == model.get(key), (verb, key)
            elif verb == "delete":
                assert observed == model.delete(key), (verb, key)
            else:
                assert observed == model.list_keys()


class TestReplicatedKv:
    def test_basic_ops(self):
        from repro.apps.kvstore import ReplicatedKv

        kv = ReplicatedKv(num_nodes=2)
        assert kv.put("k", 1) is None
        assert kv.get("k", node=1) == 1  # visible on the other replica
        assert kv.delete("k") == 1
        assert kv.get("k") is None
        assert kv.stats.puts == 1

    def test_snapshot_consistent(self):
        from repro.apps.kvstore import ReplicatedKv

        kv = ReplicatedKv(num_nodes=3)
        for i in range(10):
            kv.put(f"key{i}", i, node=i % 3)
        snap = kv.snapshot()
        assert snap == {f"key{i}": i for i in range(10)}

    def test_concurrent_workload_linearizable(self):
        from repro.apps.kvstore import run_concurrent_workload

        for seed in (0, 1, 2):
            _, history, result = run_concurrent_workload(seed=seed)
            assert len(history) == 24
            assert result.ok, result.detail
