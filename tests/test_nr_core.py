"""Tests for the node-replication core: log, rwlock, protocol, GC."""

import pytest

from repro.nr.core import NodeReplicated
from repro.nr.datastructures import Counter, KvStore
from repro.nr.log import Log, LogEntry
from repro.nr.rwlock import RwLock


class TestLog:
    def test_append_and_read(self):
        log = Log()
        start = log.append_batch([LogEntry("a", 0, 1), LogEntry("b", 0, 2)])
        assert start == 0
        assert log.tail == 2
        assert log.entry(0).op == "a"
        assert [e.op for e in log.slice_from(0)] == ["a", "b"]

    def test_gc(self):
        log = Log()
        log.append_batch([LogEntry(i, 0, 0) for i in range(10)])
        assert log.gc(4) == 4
        assert log.base == 4
        assert log.tail == 10
        assert log.entry(4).op == 4
        with pytest.raises(IndexError):
            log.entry(3)
        with pytest.raises(IndexError):
            log.slice_from(0)
        assert log.gc(4) == 0

    def test_gc_beyond_tail_rejected(self):
        log = Log()
        with pytest.raises(ValueError):
            log.gc(1)

    def test_append_after_gc(self):
        log = Log()
        log.append_batch([LogEntry(i, 0, 0) for i in range(4)])
        log.gc(4)
        start = log.append_batch([LogEntry("x", 1, 0)])
        assert start == 4
        assert log.entry(4).op == "x"


class TestRwLock:
    def test_readers_share(self):
        lock = RwLock()
        assert lock.try_acquire_read()
        assert lock.try_acquire_read()
        assert lock.readers == 2
        lock.release_read()
        lock.release_read()

    def test_writer_excludes(self):
        lock = RwLock()
        assert lock.try_acquire_write()
        assert not lock.try_acquire_read()
        assert not lock.try_acquire_write()
        lock.release_write()
        assert lock.try_acquire_read()

    def test_writer_waits_for_readers(self):
        lock = RwLock()
        assert lock.try_acquire_read()
        assert not lock.try_acquire_write()
        # writer now waiting: new readers barred (no reader starvation
        # of the combiner)
        assert not lock.try_acquire_read()
        lock.release_read()
        assert lock.try_acquire_write()

    def test_release_errors(self):
        lock = RwLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


class TestFunctionalExecution:
    def test_counter_sequential(self):
        nr = NodeReplicated(Counter, num_nodes=1)
        assert nr.execute(("add", 5)) == 5
        assert nr.execute(("add", 3)) == 8
        assert nr.execute_ro("get") == 8

    def test_multi_replica_reads_see_writes(self):
        nr = NodeReplicated(Counter, num_nodes=3)
        nr.execute(("add", 7), node=0)
        # a read on another replica must catch up with the log
        assert nr.execute_ro("get", node=2) == 7
        nr.execute(("add", 1), node=1)
        assert nr.execute_ro("get", node=0) == 8

    def test_results_routed_to_right_thread(self):
        nr = NodeReplicated(Counter, num_nodes=1)
        r1 = nr.execute(("add", 1), thread=1)
        r2 = nr.execute(("add", 1), thread=2)
        assert (r1, r2) == (1, 2)

    def test_kv_across_replicas(self):
        nr = NodeReplicated(KvStore, num_nodes=2)
        assert nr.execute(("put", "k", 1), node=0) is None
        assert nr.execute(("put", "k", 2), node=1) == 1
        assert nr.execute_ro(("get", "k"), node=0) == 2

    def test_invalid_num_nodes(self):
        with pytest.raises(ValueError):
            NodeReplicated(Counter, num_nodes=0)

    def test_sync_all_converges(self):
        nr = NodeReplicated(Counter, num_nodes=3)
        for i in range(5):
            nr.execute(("add", 1), node=i % 3)
        nr.sync_all()
        assert all(r.ds.value == 5 for r in nr.replicas)
        assert all(r.ltail == nr.log.tail for r in nr.replicas)

    def test_gc_after_sync(self):
        nr = NodeReplicated(Counter, num_nodes=2)
        for _ in range(4):
            nr.execute(("add", 1), node=0)
        # replica 1 lags: completed tail prevents GC
        assert nr.completed_tail() == 0
        assert nr.gc_log() == 0
        nr.sync_all()
        assert nr.gc_log() == 4
        # correctness preserved after GC
        nr.execute(("add", 1), node=1)
        assert nr.execute_ro("get", node=0) == 5

    def test_combiner_left_clean(self):
        nr = NodeReplicated(Counter, num_nodes=1)
        nr.execute(("add", 1))
        replica = nr.replicas[0]
        assert replica.combiner is None
        assert not replica.slots
        assert not replica.results
        assert not replica.lock.writer
        assert replica.lock.readers == 0
