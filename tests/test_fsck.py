"""fsck tests: clean volumes pass; seeded corruptions are each detected."""

import random
import struct

import pytest

from repro.hw.devices.disk import Disk
from repro.nros.fs.blockdev import BLOCK_SIZE, BlockDevice
from repro.nros.fs.fs import FileSystem
from repro.nros.fs.fsck import fsck
from repro.nros.fs.inode import Inode, TYPE_FILE


def fresh_fs(sectors=512):
    disk = Disk(sectors)
    return FileSystem.mkfs(BlockDevice(disk)), disk


class TestCleanVolumes:
    def test_empty_volume_clean(self):
        fs, _ = fresh_fs()
        assert fsck(fs) == []

    def test_after_basic_ops(self):
        fs, _ = fresh_fs()
        fs.mkdir("/d")
        fs.create("/d/f")
        fs.write_at(fs.lookup("/d/f"), 0, b"x" * 10_000)
        fs.create("/g")
        fs.link("/g", "/g2")
        assert fsck(fs) == []

    def test_after_deletes_and_truncates(self):
        fs, _ = fresh_fs()
        for i in range(8):
            fs.create(f"/f{i}")
            fs.write_at(fs.lookup(f"/f{i}"), 0, bytes([i]) * 5000)
        for i in range(0, 8, 2):
            fs.unlink(f"/f{i}")
        fs.truncate(fs.lookup("/f1"), 100)
        assert fsck(fs) == []

    def test_after_indirect_blocks(self):
        fs, _ = fresh_fs()
        inum = fs.create("/big")
        fs.write_at(inum, 12 * BLOCK_SIZE, b"deep")
        assert fsck(fs) == []

    def test_after_random_workload(self):
        rng = random.Random(5)
        fs, _ = fresh_fs()
        names = [f"/n{i}" for i in range(6)]
        for _ in range(120):
            name = rng.choice(names)
            action = rng.choice(["create", "write", "unlink", "truncate",
                                 "link", "rename"])
            try:
                if action == "create":
                    fs.create(name)
                elif action == "write":
                    fs.write_at(fs.lookup(name), rng.randrange(0, 8000),
                                bytes(rng.randrange(1, 500)))
                elif action == "unlink":
                    fs.unlink(name)
                elif action == "truncate":
                    inum = fs.lookup(name)
                    size = fs.stat_inum(inum).size
                    fs.truncate(inum, rng.randrange(0, size + 1))
                elif action == "link":
                    fs.link(name, name + "L")
                else:
                    fs.rename(name, name + "R")
                    fs.rename(name + "R", name)
            except Exception:
                continue
            assert fsck(fs) == [], action

    def test_after_remount(self):
        fs, disk = fresh_fs()
        fs.mkdir("/d")
        fs.create("/d/f")
        fs.write_at(fs.lookup("/d/f"), 0, b"data")
        fs2 = FileSystem(BlockDevice(disk))
        assert fsck(fs2) == []


class TestCorruptionDetected:
    def test_leaked_block(self):
        fs, _ = fresh_fs()
        fs.bitmap.set(fs.bitmap.covered_blocks - 1)  # mark, never reference
        issues = fsck(fs)
        assert any("leaked" in i for i in issues)

    def test_unallocated_referenced_block(self):
        fs, _ = fresh_fs()
        inum = fs.create("/f")
        fs.write_at(inum, 0, b"data")
        inode = fs._read_inode(inum)
        fs.bitmap.clear(inode.direct[0])  # bitmap says free, inode points
        issues = fsck(fs)
        assert any("not marked allocated" in i for i in issues)

    def test_double_referenced_block(self):
        fs, _ = fresh_fs()
        a = fs.create("/a")
        b = fs.create("/b")
        fs.write_at(a, 0, b"one")
        fs.write_at(b, 0, b"two")
        inode_a = fs._read_inode(a)
        inode_b = fs._read_inode(b)
        inode_b.direct[0] = inode_a.direct[0]
        fs._write_inode(b, inode_b)
        issues = fsck(fs)
        assert any("referenced by both" in i for i in issues)

    def test_wrong_nlink(self):
        fs, _ = fresh_fs()
        inum = fs.create("/f")
        inode = fs._read_inode(inum)
        inode.nlink = 7
        fs._write_inode(inum, inode)
        issues = fsck(fs)
        assert any("nlink 7" in i for i in issues)

    def test_orphan_inode(self):
        fs, _ = fresh_fs()
        # allocate an inode with no directory entry
        fs._write_inode(5, Inode(itype=TYPE_FILE, nlink=1, size=0))
        issues = fsck(fs)
        assert any("orphan inode 5" in i for i in issues)

    def test_entry_to_free_inode(self):
        fs, _ = fresh_fs()
        inum = fs.create("/ghost")
        fs._write_inode(inum, Inode())  # free it behind the directory
        issues = fsck(fs)
        assert any("free inode" in i for i in issues)

    def test_block_beyond_size(self):
        fs, _ = fresh_fs()
        inum = fs.create("/f")
        fs.write_at(inum, 0, b"x" * (2 * BLOCK_SIZE))
        inode = fs._read_inode(inum)
        inode.size = 10  # shrink size without releasing blocks
        fs._write_inode(inum, inode)
        issues = fsck(fs)
        assert any("beyond size" in i for i in issues)

    def test_corrupt_directory_data(self):
        fs, _ = fresh_fs()
        fs.mkdir("/d")
        fs.create("/d/f")
        inum = fs.lookup("/d")
        inode = fs._read_inode(inum)
        raw = bytearray(fs.dev.read(inode.direct[0]))
        raw[0] = 0xFF  # clobber the first entry header
        struct.pack_into("<H", raw, 4, 0)  # zero name length
        fs.dev.write(inode.direct[0], bytes(raw))
        issues = fsck(fs)
        assert issues  # corrupt directory reported (plus knock-on issues)
        assert any("corrupt" in i or "free inode" in i for i in issues)
