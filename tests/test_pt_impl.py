"""Page-table implementation tests: map/unmap/resolve, GC, rollback."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pt import defs
from repro.core.pt.defs import Flags, PageSize
from repro.core.pt.impl import (
    AlreadyMapped,
    BadRequest,
    NotMapped,
    OutOfFrames,
    PageTable,
    SimpleFrameAllocator,
)
from repro.hw.mem import PhysicalMemory

MB = 1024 * 1024


def make_pt(mem_size=8 * MB):
    mem = PhysicalMemory(mem_size)
    alloc = SimpleFrameAllocator(mem)
    return PageTable(mem, alloc), alloc


class TestMapResolve:
    def test_map_then_resolve_4k(self):
        pt, _ = make_pt()
        pt.map_frame(0x40_0000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        m = pt.resolve(0x40_0000)
        assert m is not None
        assert m.paddr == 0x10_0000
        assert m.size is PageSize.SIZE_4K
        assert m.flags.writable and m.flags.user

    def test_resolve_interior_address(self):
        pt, _ = make_pt()
        pt.map_frame(0x40_0000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        m = pt.resolve(0x40_0FF8)
        assert m is not None and m.vaddr == 0x40_0000

    def test_resolve_unmapped(self):
        pt, _ = make_pt()
        assert pt.resolve(0x1234_5000) is None

    def test_map_2m(self):
        pt, _ = make_pt()
        pt.map_frame(0x20_0000, 0x40_0000, PageSize.SIZE_2M, Flags.kernel_rw())
        m = pt.resolve(0x20_0000 + 0x12345 // 8 * 8)
        assert m is not None
        assert m.size is PageSize.SIZE_2M
        assert m.paddr == 0x40_0000

    def test_map_1g(self):
        pt, _ = make_pt(16 * MB)
        one_g = 1 << 30
        pt.map_frame(one_g, 0, PageSize.SIZE_1G, Flags.user_rx())
        m = pt.resolve(one_g + 12345 * 8)
        assert m is not None
        assert m.size is PageSize.SIZE_1G

    def test_map_misaligned_vaddr(self):
        pt, _ = make_pt()
        with pytest.raises(BadRequest):
            pt.map_frame(0x1234, 0x10_0000, PageSize.SIZE_4K, Flags())

    def test_map_misaligned_frame(self):
        pt, _ = make_pt()
        with pytest.raises(BadRequest):
            pt.map_frame(0x1000, 0x10_0800, PageSize.SIZE_4K, Flags())

    def test_map_non_canonical(self):
        pt, _ = make_pt()
        with pytest.raises(BadRequest):
            pt.map_frame(1 << 48, 0x10_0000, PageSize.SIZE_4K, Flags())

    def test_double_map_rejected(self):
        pt, _ = make_pt()
        pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags())
        with pytest.raises(AlreadyMapped):
            pt.map_frame(0x1000, 0x20_0000, PageSize.SIZE_4K, Flags())

    def test_small_under_huge_rejected(self):
        pt, _ = make_pt()
        pt.map_frame(0x20_0000, 0x40_0000, PageSize.SIZE_2M, Flags())
        with pytest.raises(AlreadyMapped):
            pt.map_frame(0x20_1000, 0x10_0000, PageSize.SIZE_4K, Flags())

    def test_huge_over_small_rejected(self):
        pt, _ = make_pt()
        pt.map_frame(0x20_1000, 0x10_0000, PageSize.SIZE_4K, Flags())
        with pytest.raises(AlreadyMapped):
            pt.map_frame(0x20_0000, 0x40_0000, PageSize.SIZE_2M, Flags())

    def test_adjacent_pages_ok(self):
        pt, _ = make_pt()
        pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags())
        pt.map_frame(0x2000, 0x10_1000, PageSize.SIZE_4K, Flags())
        assert pt.resolve(0x1000).paddr == 0x10_0000
        assert pt.resolve(0x2000).paddr == 0x10_1000


class TestUnmap:
    def test_unmap_returns_mapping(self):
        pt, _ = make_pt()
        pt.map_frame(0x3000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        removed = pt.unmap(0x3000)
        assert removed.paddr == 0x10_0000
        assert pt.resolve(0x3000) is None

    def test_unmap_by_interior_address(self):
        pt, _ = make_pt()
        pt.map_frame(0x20_0000, 0x40_0000, PageSize.SIZE_2M, Flags())
        removed = pt.unmap(0x20_0000 + 0x1000)
        assert removed.vaddr == 0x20_0000
        assert removed.size is PageSize.SIZE_2M

    def test_unmap_unmapped_raises(self):
        pt, _ = make_pt()
        with pytest.raises(NotMapped):
            pt.unmap(0x5000)

    def test_unmap_frees_intermediate_tables(self):
        pt, alloc = make_pt()
        baseline = alloc.allocated
        pt.map_frame(0x4000_0000_0, 0x10_0000, PageSize.SIZE_4K, Flags())
        assert alloc.allocated == baseline + 3  # PDPT, PD, PT created
        pt.unmap(0x4000_0000_0)
        assert alloc.allocated == baseline

    def test_partial_gc_keeps_shared_tables(self):
        pt, alloc = make_pt()
        pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags())
        pt.map_frame(0x2000, 0x10_1000, PageSize.SIZE_4K, Flags())
        used = alloc.allocated
        pt.unmap(0x1000)
        # shared PDPT/PD/PT still needed by 0x2000
        assert alloc.allocated == used
        assert pt.resolve(0x2000) is not None

    def test_remap_after_unmap(self):
        pt, _ = make_pt()
        pt.map_frame(0x3000, 0x10_0000, PageSize.SIZE_4K, Flags())
        pt.unmap(0x3000)
        pt.map_frame(0x3000, 0x20_0000, PageSize.SIZE_4K, Flags())
        assert pt.resolve(0x3000).paddr == 0x20_0000


class TestRollbackAndDestroy:
    def test_failed_map_leaves_tree_unchanged(self):
        pt, alloc = make_pt()
        pt.map_frame(0x20_0000, 0x40_0000, PageSize.SIZE_2M, Flags())
        used = alloc.allocated
        mappings_before = pt.mappings()
        with pytest.raises(AlreadyMapped):
            # new PDPT path gets created then must be rolled back:
            # target address shares PML4 slot but needs new tables, and
            # conflicts at the PD level via the huge page
            pt.map_frame(0x20_1000, 0x10_0000, PageSize.SIZE_4K, Flags())
        assert alloc.allocated == used
        assert pt.mappings() == mappings_before

    def test_oom_rolls_back(self):
        mem = PhysicalMemory(5 * defs.PAGE_SIZE)
        alloc = SimpleFrameAllocator(mem)
        pt = PageTable(mem, alloc)  # uses frame 0
        # Only 4 frames left; a fresh 4K map needs 3 tables. Exhaust with
        # one mapping, then fail on the second.
        pt.map_frame(0x0, 0x1000, PageSize.SIZE_4K, Flags())
        used = alloc.allocated
        with pytest.raises(OutOfFrames):
            pt.map_frame(1 << 39, 0x1000, PageSize.SIZE_4K, Flags())
        assert alloc.allocated == used

    def test_destroy_frees_everything(self):
        pt, alloc = make_pt()
        pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags())
        pt.map_frame(1 << 39, 0x20_0000, PageSize.SIZE_4K, Flags())
        pt.destroy()
        assert alloc.allocated == 0

    def test_table_frames_distinct(self):
        pt, _ = make_pt()
        pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags())
        frames = pt.table_frames()
        assert len(frames) == len(set(frames)) == 4


class TestMappingsEnumeration:
    def test_mappings_lists_all(self):
        pt, _ = make_pt()
        pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        pt.map_frame(0x20_0000, 0x40_0000, PageSize.SIZE_2M, Flags.kernel_rw())
        mappings = {m.vaddr: m for m in pt.mappings()}
        assert set(mappings) == {0x1000, 0x20_0000}
        assert mappings[0x20_0000].size is PageSize.SIZE_2M

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=8, unique=True))
    def test_mappings_match_resolve(self, page_indices):
        pt, _ = make_pt()
        for i in page_indices:
            pt.map_frame(i * 0x1000, (i + 256) * 0x1000, PageSize.SIZE_4K,
                         Flags.user_rw())
        enumerated = {m.vaddr for m in pt.mappings()}
        assert enumerated == {i * 0x1000 for i in page_indices}
        for i in page_indices:
            assert pt.resolve(i * 0x1000).paddr == (i + 256) * 0x1000


class TestBatchOps:
    def test_map_batch_crosses_2m_boundary(self):
        """The leaf-table cache is keyed by 2MB region; a batch spanning
        the boundary must land each page in the right leaf table."""
        pt, _ = make_pt(16 * MB)
        base = 0x20_0000 - 2 * 0x1000  # two pages below the 2MB line
        entries = [(base + i * 0x1000, 0x10_0000 + i * 0x1000,
                    PageSize.SIZE_4K, Flags.user_rw()) for i in range(4)]
        assert pt.map_batch(entries) == 4
        for vaddr, frame, _size, _flags in entries:
            m = pt.resolve(vaddr)
            assert m is not None and m.paddr == frame
        removed = pt.unmap_batch([vaddr for vaddr, *_ in entries])
        assert [m.vaddr for m in removed] == [vaddr for vaddr, *_ in entries]
        for vaddr, *_ in entries:
            assert pt.resolve(vaddr) is None

    def test_map_batch_unwinds_on_conflict(self):
        pt, _ = make_pt()
        pt.map_frame(0x40_3000, 0x20_0000, PageSize.SIZE_4K, Flags.user_rw())
        entries = [
            (0x40_0000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw()),
            (0x40_1000, 0x10_1000, PageSize.SIZE_4K, Flags.user_rw()),
            (0x40_3000, 0x10_2000, PageSize.SIZE_4K, Flags.user_rw()),
        ]
        with pytest.raises(AlreadyMapped):
            pt.map_batch(entries)
        # the first two entries were unwound; the pre-existing mapping
        # is untouched
        assert pt.resolve(0x40_0000) is None
        assert pt.resolve(0x40_1000) is None
        assert pt.resolve(0x40_3000).paddr == 0x20_0000

    def test_map_batch_cached_leaf_keeps_obligations(self):
        """The fast path (leaf table already walked) must enforce the
        same alignment checks the full descent does."""
        pt, _ = make_pt()
        entries = [
            (0x40_0000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw()),
            (0x40_1800, 0x10_1000, PageSize.SIZE_4K, Flags.user_rw()),
        ]
        with pytest.raises(BadRequest):
            pt.map_batch(entries)
        assert pt.resolve(0x40_0000) is None

    def test_unmap_batch_aliased_pages_are_atomic(self):
        """Two batch entries resolving to the same leaf slot (an interior
        alias) must fail the whole batch before anything is cleared."""
        pt, _ = make_pt()
        pt.map_frame(0x40_0000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        pt.map_frame(0x40_1000, 0x10_1000, PageSize.SIZE_4K, Flags.user_rw())
        with pytest.raises(NotMapped):
            pt.unmap_batch([0x40_0000, 0x40_1000, 0x40_0008])
        assert pt.resolve(0x40_0000) is not None
        assert pt.resolve(0x40_1000) is not None


class TestAllocator:
    def test_alloc_free_cycle(self):
        mem = PhysicalMemory(4 * defs.PAGE_SIZE)
        alloc = SimpleFrameAllocator(mem)
        a = alloc.alloc_frame()
        b = alloc.alloc_frame()
        assert a != b
        alloc.free_frame(a)
        assert alloc.alloc_frame() == a  # reused

    def test_exhaustion(self):
        mem = PhysicalMemory(2 * defs.PAGE_SIZE)
        alloc = SimpleFrameAllocator(mem)
        alloc.alloc_frame()
        alloc.alloc_frame()
        with pytest.raises(OutOfFrames):
            alloc.alloc_frame()

    def test_free_misaligned(self):
        mem = PhysicalMemory(2 * defs.PAGE_SIZE)
        alloc = SimpleFrameAllocator(mem)
        with pytest.raises(ValueError):
            alloc.free_frame(123)
