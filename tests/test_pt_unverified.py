"""Differential testing: unverified vs verified page tables.

The unverified baseline must behave identically (same successes, failures,
and resolved mappings) up to its documented difference: it never frees
empty intermediate tables."""

import random

import pytest

from repro.core.pt.defs import Flags, PageSize
from repro.core.pt.impl import (
    AlreadyMapped,
    BadRequest,
    NotMapped,
    PageTable,
    PtError,
    SimpleFrameAllocator,
)
from repro.hw.mem import PhysicalMemory
from repro.hw.mmu import Mmu
from repro.nros.pt_unverified import UnverifiedPageTable

MB = 1024 * 1024


def make_both():
    mem_v = PhysicalMemory(16 * MB)
    mem_u = PhysicalMemory(16 * MB)
    verified = PageTable(mem_v, SimpleFrameAllocator(mem_v, start=8 * MB))
    unverified = UnverifiedPageTable(
        mem_u, SimpleFrameAllocator(mem_u, start=8 * MB)
    )
    return verified, unverified, mem_v, mem_u


class TestBasics:
    def test_map_resolve(self):
        pt = make_both()[1]
        pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        m = pt.resolve(0x1000)
        assert m.paddr == 0x10_0000
        assert m.flags.user and m.flags.writable

    def test_errors(self):
        pt = make_both()[1]
        with pytest.raises(BadRequest):
            pt.map_frame(0x123, 0x10_0000, PageSize.SIZE_4K, Flags())
        with pytest.raises(NotMapped):
            pt.unmap(0x9000)
        pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags())
        with pytest.raises(AlreadyMapped):
            pt.map_frame(0x1000, 0x20_0000, PageSize.SIZE_4K, Flags())

    def test_huge_pages(self):
        pt = make_both()[1]
        pt.map_frame(0x20_0000, 0x40_0000, PageSize.SIZE_2M, Flags.kernel_rw())
        m = pt.resolve(0x20_0000 + 0x1234 // 8 * 8)
        assert m.size is PageSize.SIZE_2M

    def test_mmu_walks_unverified_tree(self):
        """The hardware walker must agree with the unverified impl too —
        both encode the same architectural bits."""
        pt = make_both()[1]
        pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        mmu = Mmu(pt.memory)
        t = mmu.walk(pt.root_paddr, 0x1008)
        assert t.paddr == 0x10_0008


class TestDifferential:
    OPS = None

    def _ops(self, rng):
        vaddrs = [0x1000, 0x2000, 0x40_0000, 1 << 30, 1 << 39]
        frames = [0x10_0000, 0x20_0000, 0x40_0000, 0x4000_0000]
        sizes = [PageSize.SIZE_4K, PageSize.SIZE_2M, PageSize.SIZE_1G]
        ops = []
        for _ in range(60):
            if rng.random() < 0.6:
                size = rng.choice(sizes)
                va = rng.choice(vaddrs)
                fr = rng.choice(frames)
                ops.append(("map", va - va % int(size), fr - fr % int(size),
                            size))
            else:
                ops.append(("unmap", rng.choice(vaddrs)))
        return ops

    def test_behavioural_equivalence(self):
        rng = random.Random(42)
        for trial in range(8):
            verified, unverified, _, _ = make_both()
            for op in self._ops(rng):
                outcomes = []
                for pt in (verified, unverified):
                    try:
                        if op[0] == "map":
                            _, va, fr, size = op
                            pt.map_frame(va, fr, size, Flags.user_rw())
                            outcomes.append(("ok", None))
                        else:
                            removed = pt.unmap(op[1])
                            outcomes.append(
                                ("ok", (removed.vaddr, removed.paddr,
                                        removed.size))
                            )
                    except PtError as exc:
                        outcomes.append(("err", type(exc).__name__))
                assert outcomes[0] == outcomes[1], (trial, op)
                # resolve agreement on all vocabulary addresses
                for va in (0x1000, 0x2000, 0x40_0000, 1 << 30, 1 << 39):
                    a = verified.resolve(va)
                    b = unverified.resolve(va)
                    if a is None:
                        assert b is None
                    else:
                        assert b is not None
                        assert (a.vaddr, a.paddr, a.size) == (
                            b.vaddr, b.paddr, b.size)

    def test_gc_difference_documented(self):
        """The one intended divergence: the unverified impl leaks empty
        intermediate tables; the verified impl frees them."""
        mem_v = PhysicalMemory(16 * MB)
        alloc_v = SimpleFrameAllocator(mem_v, start=8 * MB)
        verified = PageTable(mem_v, alloc_v)

        mem_u = PhysicalMemory(16 * MB)
        alloc_u = SimpleFrameAllocator(mem_u, start=8 * MB)
        unverified = UnverifiedPageTable(mem_u, alloc_u)

        verified.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags())
        unverified.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags())
        v_used = alloc_v.allocated
        u_used = alloc_u.allocated
        assert v_used == u_used
        verified.unmap(0x1000)
        unverified.unmap(0x1000)
        assert alloc_v.allocated == v_used - 3   # PDPT+PD+PT freed
        assert alloc_u.allocated == u_used       # tables retained
