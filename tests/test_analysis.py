"""Tests for the repro.analysis static-analysis passes: the layer map,
the layering/erasure checker, the purity lint, the suppression syntax,
and the seeded violation fixture the checker must flag."""

import pathlib
import subprocess
import sys

from repro.analysis.cli import PASSES, RULES, repo_root, run_analysis
from repro.analysis.findings import Finding, allowed_rules, apply_suppressions
from repro.analysis.imports import discover_sources
from repro.analysis.layers import (
    LAYER_MAP,
    classify_layer,
    loc_classification,
    loc_kind,
)
from repro.analysis.purity import check_purity
from repro.metrics import loc

FIXTURE = pathlib.Path(__file__).resolve().parent / "fixtures" / "layering_bad"


# -- the layer map ------------------------------------------------------------------


def test_every_file_under_src_repro_is_classified():
    """Satellite guarantee: no file can silently fall outside the
    spec/proof/exec/other boundary (and hence out of the ratio)."""
    sources = discover_sources(repo_root())
    assert sources, "discover_sources found nothing under src/repro"
    unmapped = [path for path in sources if classify_layer(path) is None]
    assert unmapped == []


def test_prefix_match_respects_path_components():
    layer_map = [("foo/bar", "spec"), ("foo", "exec")]
    assert classify_layer("foo/bar/mod.py", layer_map) == "spec"
    assert classify_layer("foo/barbaz.py", layer_map) == "exec"
    assert classify_layer("foo/bar", layer_map) == "spec"


def test_layer_map_pins_the_interesting_boundaries():
    assert classify_layer("src/repro/core/spec/highlevel.py") == "spec"
    assert classify_layer("src/repro/core/pt/impl.py") == "exec"
    assert classify_layer("src/repro/nr/core.py") == "exec"
    assert classify_layer("src/repro/nr/linearizability.py") == "proof"
    assert classify_layer("src/repro/nros/kernel.py") == "exec"
    assert classify_layer("src/repro/nros/sched/smp.py") == "exec"
    assert classify_layer("src/repro/verif/contracts.py") == "proof"
    assert classify_layer("src/repro/verif/schedspec.py") == "spec"
    assert classify_layer("src/repro/verif/schedproof.py") == "proof"
    assert classify_layer("src/repro/analysis/sched_race.py") == "other"
    assert classify_layer("src/repro/immutable.py") == "other"


def test_loc_classification_is_derived_from_layer_map():
    assert loc.CLASSIFICATION == loc_classification()
    assert len(loc.CLASSIFICATION) == len(LAYER_MAP)
    # The per-entry overrides the ratio depends on:
    assert loc_kind("src/repro/verif/linear.py") == "proof"
    assert loc_kind("src/repro/prover/scheduler.py") == "other"
    assert loc_kind("src/repro/core/pt/defs.py") == "code"
    assert loc_kind("src/repro/immutable.py") == "code"


# -- suppressions -------------------------------------------------------------------


def test_allow_comment_applies_to_own_and_next_line():
    source = (
        "x = 1  # repro: allow(rule-a)\n"
        "# repro: allow(rule-b, rule-c)\n"
        "y = 2\n"
    )
    allowed = allowed_rules(source)
    assert allowed[1] == {"rule-a"}
    assert allowed[2] == {"rule-b", "rule-c"}
    assert allowed[3] == {"rule-b", "rule-c"}


def test_apply_suppressions_marks_matching_rule_only():
    source = "bad_line()  # repro: allow(rule-a)\n"
    findings = [
        Finding(rule="rule-a", path="m.py", line=1, message="x"),
        Finding(rule="rule-b", path="m.py", line=1, message="x"),
    ]
    apply_suppressions(findings, {"m.py": source})
    assert findings[0].suppressed
    assert not findings[1].suppressed


# -- the purity lint ----------------------------------------------------------------


def _purity(source):
    findings, _ = check_purity({"m.py": source}, layer_map=[("m.py", "spec")])
    return findings


def test_purity_flags_discarded_mutator_call():
    findings = _purity("def pred(state):\n    state.items.append(1)\n")
    assert [f.rule for f in findings] == ["purity.mutation"]


def test_purity_allows_persistent_container_calls():
    # FrozenMap.remove returns the new map; a consumed result is not a
    # mutation (list.remove and friends return None).
    findings = _purity("def pred(state):\n"
                       "    return state.files.remove(3)\n")
    assert findings == []


def test_purity_allows_local_mutation():
    findings = _purity("def pred(state):\n"
                       "    acc = []\n"
                       "    acc.append(state)\n"
                       "    return acc\n")
    assert findings == []


def test_purity_flags_wall_clock_and_unseeded_random():
    findings = _purity("import time, random\n"
                       "def pred(state):\n"
                       "    return time.time() + random.random()\n")
    assert sorted(f.rule for f in findings) == [
        "purity.nondeterminism", "purity.nondeterminism"]


def test_purity_allows_seeded_random():
    findings = _purity("import random\n"
                       "def pred(state):\n"
                       "    return random.Random(7).random()\n")
    assert [f.rule for f in findings if f.rule != "purity.nondeterminism"] \
        == [f.rule for f in findings]
    # random.Random(7) is seeded; the .random() call on the instance has
    # a local root, so nothing fires at all.
    assert findings == []


# -- the clean tree and the fixture -------------------------------------------------


def test_clean_tree_passes_layering_and_purity():
    report = run_analysis(skip={"race"})
    assert report.clean, [f.render() for f in report.active]
    # The sanctioned ghost imports are reported, as suppressed findings.
    assert {f.rule for f in report.suppressed} == {"ghost-import"}


def test_fixture_fires_every_static_rule():
    report = run_analysis(root=FIXTURE, skip={"race"})
    assert not report.clean
    fired = {f.rule for f in report.active}
    assert fired == {
        "layering.spec-imports-exec",
        "layering.exec-imports-proof",
        "ghost-import",
        "erasure.exec-reaches-proof",
        "layers.unmapped",
        "purity.mutation",
        "purity.nondeterminism",
        "console.bare-print",
    }
    assert fired <= set(RULES)
    # tooling.py carries one sanctioned print; suppression is honoured
    # without hiding the finding.
    assert [f.rule for f in report.suppressed] == ["console.bare-print"]


def test_fixture_transitive_chain_names_the_leak():
    report = run_analysis(root=FIXTURE, skip={"race"})
    chains = [f for f in report.active
              if f.rule == "erasure.exec-reaches-proof"]
    assert len(chains) == 1
    assert "runtime.py -> helper.py -> proof_lemmas.py" in chains[0].message


def test_cli_exits_nonzero_on_fixture():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "analyze",
         "--root", str(FIXTURE), "--skip", "race"],
        capture_output=True, text=True, cwd=repo_root(),
        env={"PYTHONPATH": str(repo_root() / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "layering.spec-imports-exec" in proc.stdout + proc.stderr


def test_cli_list_rules_covers_passes():
    assert set(PASSES) == {"layering", "purity", "race"}
    for rule, text in RULES.items():
        assert rule and text
