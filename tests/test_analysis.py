"""Tests for the repro.analysis static-analysis passes: the layer map,
the layering/erasure checker, the purity lint, the suppression syntax,
and the seeded violation fixture the checker must flag."""

import pathlib
import subprocess
import sys

from repro.analysis.cli import PASSES, RULES, repo_root, run_analysis
from repro.analysis.findings import (Finding, allowed_rules,
                                     apply_suppressions, dead_suppressions)
from repro.analysis.imports import discover_sources
from repro.analysis.layers import (
    LAYER_MAP,
    classify_layer,
    loc_classification,
    loc_kind,
)
from repro.analysis.purity import check_purity
from repro.metrics import loc

FIXTURE = pathlib.Path(__file__).resolve().parent / "fixtures" / "layering_bad"


# -- the layer map ------------------------------------------------------------------


def test_every_file_under_src_repro_is_classified():
    """Satellite guarantee: no file can silently fall outside the
    spec/proof/exec/other boundary (and hence out of the ratio)."""
    sources = discover_sources(repo_root())
    assert sources, "discover_sources found nothing under src/repro"
    unmapped = sorted(path for path in sources
                      if classify_layer(path) is None)
    assert not unmapped, (
        f"{len(unmapped)} file(s) under src/repro missing from "
        f"repro.analysis.layers.LAYER_MAP — add an entry (or a "
        f"directory prefix) for each of: " + ", ".join(unmapped))


def test_prefix_match_respects_path_components():
    layer_map = [("foo/bar", "spec"), ("foo", "exec")]
    assert classify_layer("foo/bar/mod.py", layer_map) == "spec"
    assert classify_layer("foo/barbaz.py", layer_map) == "exec"
    assert classify_layer("foo/bar", layer_map) == "spec"


def test_layer_map_pins_the_interesting_boundaries():
    assert classify_layer("src/repro/core/spec/highlevel.py") == "spec"
    assert classify_layer("src/repro/core/pt/impl.py") == "exec"
    assert classify_layer("src/repro/nr/core.py") == "exec"
    assert classify_layer("src/repro/nr/linearizability.py") == "proof"
    assert classify_layer("src/repro/nros/kernel.py") == "exec"
    assert classify_layer("src/repro/nros/sched/smp.py") == "exec"
    assert classify_layer("src/repro/verif/contracts.py") == "proof"
    assert classify_layer("src/repro/verif/schedspec.py") == "spec"
    assert classify_layer("src/repro/verif/schedproof.py") == "proof"
    assert classify_layer("src/repro/verif/rgspec.py") == "spec"
    assert classify_layer("src/repro/verif/rgproof.py") == "proof"
    assert classify_layer("src/repro/analysis/sched_race.py") == "other"
    assert classify_layer("src/repro/analysis/rg.py") == "other"
    assert classify_layer("src/repro/analysis/lockorder.py") == "other"
    assert classify_layer("src/repro/immutable.py") == "other"


def test_loc_classification_is_derived_from_layer_map():
    assert loc.CLASSIFICATION == loc_classification()
    assert len(loc.CLASSIFICATION) == len(LAYER_MAP)
    # The per-entry overrides the ratio depends on:
    assert loc_kind("src/repro/verif/linear.py") == "proof"
    assert loc_kind("src/repro/prover/scheduler.py") == "other"
    assert loc_kind("src/repro/core/pt/defs.py") == "code"
    assert loc_kind("src/repro/immutable.py") == "code"


# -- suppressions -------------------------------------------------------------------


def test_allow_comment_applies_to_own_and_next_line():
    source = (
        "x = 1  # repro: allow(rule-a)\n"
        "# repro: allow(rule-b, rule-c)\n"
        "y = 2\n"
    )
    allowed = allowed_rules(source)
    assert allowed[1] == {"rule-a"}
    assert allowed[2] == {"rule-b", "rule-c"}
    assert allowed[3] == {"rule-b", "rule-c"}


def test_apply_suppressions_marks_matching_rule_only():
    source = "bad_line()  # repro: allow(rule-a)\n"
    findings = [
        Finding(rule="rule-a", path="m.py", line=1, message="x"),
        Finding(rule="rule-b", path="m.py", line=1, message="x"),
    ]
    apply_suppressions(findings, {"m.py": source})
    assert findings[0].suppressed
    assert not findings[1].suppressed


# -- the purity lint ----------------------------------------------------------------


def _purity(source):
    findings, _ = check_purity({"m.py": source}, layer_map=[("m.py", "spec")])
    return findings


def test_purity_flags_discarded_mutator_call():
    findings = _purity("def pred(state):\n    state.items.append(1)\n")
    assert [f.rule for f in findings] == ["purity.mutation"]


def test_purity_allows_persistent_container_calls():
    # FrozenMap.remove returns the new map; a consumed result is not a
    # mutation (list.remove and friends return None).
    findings = _purity("def pred(state):\n"
                       "    return state.files.remove(3)\n")
    assert findings == []


def test_purity_allows_local_mutation():
    findings = _purity("def pred(state):\n"
                       "    acc = []\n"
                       "    acc.append(state)\n"
                       "    return acc\n")
    assert findings == []


def test_purity_flags_wall_clock_and_unseeded_random():
    findings = _purity("import time, random\n"
                       "def pred(state):\n"
                       "    return time.time() + random.random()\n")
    assert sorted(f.rule for f in findings) == [
        "purity.nondeterminism", "purity.nondeterminism"]


def test_purity_allows_seeded_random():
    findings = _purity("import random\n"
                       "def pred(state):\n"
                       "    return random.Random(7).random()\n")
    assert [f.rule for f in findings if f.rule != "purity.nondeterminism"] \
        == [f.rule for f in findings]
    # random.Random(7) is seeded; the .random() call on the instance has
    # a local root, so nothing fires at all.
    assert findings == []


# -- the clean tree and the fixture -------------------------------------------------


def test_clean_tree_passes_layering_and_purity():
    report = run_analysis(skip={"race"})
    assert report.clean, [f.render() for f in report.active]
    # The sanctioned ghost imports are reported, as suppressed findings.
    assert {f.rule for f in report.suppressed} == {"ghost-import"}


def test_fixture_fires_every_static_rule():
    report = run_analysis(root=FIXTURE, skip={"race"})
    assert not report.clean
    fired = {f.rule for f in report.active}
    assert fired == {
        "layering.spec-imports-exec",
        "layering.exec-imports-proof",
        "ghost-import",
        "erasure.exec-reaches-proof",
        "layers.unmapped",
        "purity.mutation",
        "purity.nondeterminism",
        "console.bare-print",
        "suppression.dead",
    }
    assert fired <= set(RULES)
    # tooling.py carries one sanctioned print; suppression is honoured
    # without hiding the finding.
    assert [f.rule for f in report.suppressed] == ["console.bare-print"]


def test_fixture_transitive_chain_names_the_leak():
    report = run_analysis(root=FIXTURE, skip={"race"})
    chains = [f for f in report.active
              if f.rule == "erasure.exec-reaches-proof"]
    assert len(chains) == 1
    assert "runtime.py -> helper.py -> proof_lemmas.py" in chains[0].message


# -- the dead-suppression lint ------------------------------------------------------


def test_dead_suppression_flags_stale_allow_only():
    source = (
        "live()  # repro: allow(rule-a)\n"
        "clean()  # repro: allow(rule-b)\n"
    )
    findings = [Finding(rule="rule-a", path="m.py", line=1, message="x")]
    apply_suppressions(findings, {"m.py": source})
    dead = dead_suppressions(findings, {"m.py": source})
    assert [(f.rule, f.line) for f in dead] == [("suppression.dead", 2)]
    assert "allow(rule-b)" in dead[0].message


def test_dead_suppression_covers_next_line_of_standalone_comment():
    source = "# repro: allow(rule-a)\nbad()\n"
    findings = [Finding(rule="rule-a", path="m.py", line=2, message="x")]
    apply_suppressions(findings, {"m.py": source})
    assert dead_suppressions(findings, {"m.py": source}) == []


def test_dead_suppression_ignores_docstring_mentions():
    source = '"""Docs talking about # repro: allow(rule-a) syntax."""\n'
    assert dead_suppressions([], {"m.py": source}) == []


def test_fixture_dead_suppression_is_located():
    report = run_analysis(root=FIXTURE, skip={"race"})
    dead = [f for f in report.active if f.rule == "suppression.dead"]
    assert len(dead) == 1
    assert dead[0].path == "tooling.py"
    assert "console.bare-print" in dead[0].message


def test_clean_tree_has_no_dead_suppressions():
    report = run_analysis(skip={"race"})
    assert [f for f in report.findings
            if f.rule == "suppression.dead"] == []


# -- the json reporter --------------------------------------------------------------


def _run_analyze_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro", "analyze", *argv],
        capture_output=True, text=True, cwd=repo_root(),
        env={"PYTHONPATH": str(repo_root() / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_json_format_is_byte_deterministic_at_fixed_seed():
    """Satellite guarantee: same seed, same bytes — across the full
    rule set including the rg, lockorder, and deadsupp passes."""
    argv = ("--format", "json", "--seed", "3", "--max-steps", "20000")
    first = _run_analyze_cli(*argv)
    second = _run_analyze_cli(*argv)
    assert first.returncode == 0, first.stdout + first.stderr
    assert second.returncode == 0
    assert first.stdout == second.stdout
    import json as json_mod

    payload = json_mod.loads(first.stdout)
    assert payload["schema"] == "repro.analysis/v1"
    assert payload["clean"] is True
    names = {record["name"] for record in payload["records"]}
    assert names == {"analysis.finding", "analysis.pass",
                     "analysis.summary"}
    stages = {record["stage"] for record in payload["records"]
              if record["name"] == "analysis.pass"}
    assert {"layering", "purity", "rg", "lockorder", "deadsupp",
            "race", "race_sched"} <= stages


def test_json_format_validates_against_obs_schema():
    from repro.obs.events import validate_record

    proc = _run_analyze_cli("--format", "json", "--root", str(FIXTURE),
                            "--skip", "race")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    import json as json_mod

    payload = json_mod.loads(proc.stdout)
    assert payload["clean"] is False
    for record in payload["records"]:
        assert validate_record(record) == []
    rules = {record["rule"] for record in payload["records"]
             if record["name"] == "analysis.finding"}
    assert "suppression.dead" in rules


def test_cli_stable_exit_codes():
    assert _run_analyze_cli("--skip", "race").returncode == 0
    assert _run_analyze_cli("--root", str(FIXTURE),
                            "--skip", "race").returncode == 1
    assert _run_analyze_cli("--skip", "bogus").returncode == 2
    assert _run_analyze_cli("--mutant", "no-such-mutant").returncode == 2


def test_cli_exits_nonzero_on_fixture():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "analyze",
         "--root", str(FIXTURE), "--skip", "race"],
        capture_output=True, text=True, cwd=repo_root(),
        env={"PYTHONPATH": str(repo_root() / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "layering.spec-imports-exec" in proc.stdout + proc.stderr


def test_cli_list_rules_covers_passes():
    assert set(PASSES) == {"layering", "purity", "rg", "lockorder",
                           "deadsupp", "race"}
    for rule, text in RULES.items():
        assert rule and text
    for prefix in ("rg.", "lockorder.", "suppression."):
        assert any(rule.startswith(prefix) for rule in RULES)
