"""Tests for the repro.obs observability substrate.

Covers the histogram edge cases, span timing under both clock domains,
the event bus + JSONL schema, the registry, the console sink, and the
regression pins required by the refactor: ProofReport.cdf and
LatencyRecorder.percentile_ns must produce byte-identical numbers to the
shared obs.Histogram they now delegate to.
"""

import json

import pytest

from repro import obs
from repro.obs.console import CapturedConsole, get_console, set_console
from repro.obs.events import EventBus, JsonlWriter, make_event
from repro.obs.instruments import Counter, Gauge, Histogram
from repro.obs.registry import Registry
from repro.obs.span import Span, sim_clock
from repro.sim.stats import LatencyRecorder


class TestCounterGauge:
    def test_counter_inc_add(self):
        c = Counter(name="c")
        c.inc()
        c.add(4)
        assert c.value == 5
        assert int(c) == 5

    def test_counter_rejects_negative(self):
        c = Counter(name="c")
        with pytest.raises(ValueError):
            c.add(-1)

    def test_gauge_high_water(self):
        g = Gauge(name="g")
        g.set(7)
        g.set(3)
        assert g.value == 3
        assert g.high_water == 7


class TestHistogramEdgeCases:
    def test_empty(self):
        h = Histogram(name="h")
        assert len(h) == 0
        assert h.cdf(10) == []
        assert h.mean == 0.0
        assert h.percentile(50) == 0  # empty population reports 0
        assert h.snapshot()["count"] == 0

    def test_single_sample(self):
        h = Histogram(name="h")
        h.record(42)
        assert h.percentile(0) == 42
        assert h.percentile(50) == 42
        assert h.percentile(100) == 42
        assert h.mean == 42
        assert h.cdf(4) == [(42, 1.0)]

    def test_p0_p100_extremes(self):
        h = Histogram(name="h")
        for v in [5, 1, 9, 3, 7]:
            h.record(v)
        assert h.percentile(0) == 1
        assert h.percentile(100) == 9
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_merge_of_disjoint(self):
        lo = Histogram(name="lo")
        hi = Histogram(name="hi")
        for v in range(10):
            lo.record(v)
        for v in range(100, 110):
            hi.record(v)
        lo.merge(hi)
        assert len(lo) == 20
        assert lo.min == 0 and lo.max == 109
        assert lo.percentile(0) == 0
        assert lo.percentile(100) == 109
        # merged population sorts correctly across the gap
        assert lo.sorted_samples()[9] == 9
        assert lo.sorted_samples()[10] == 100
        # the source histogram is untouched
        assert len(hi) == 10

    def test_cdf_points_validation(self):
        h = Histogram(name="h")
        h.record(1)
        with pytest.raises(ValueError):
            h.cdf(0)

    def test_cdf_is_monotone(self):
        h = Histogram(name="h")
        for v in range(100):
            h.record(v)
        curve = h.cdf(10)
        values = [v for v, _ in curve]
        fractions = [f for _, f in curve]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_fraction_within(self):
        h = Histogram(name="h")
        for v in [1, 2, 3, 4]:
            h.record(v)
        assert h.fraction_within(2) == 0.5
        assert h.fraction_within(0) == 0.0
        assert h.fraction_within(10) == 1.0


class TestDistributionRegression:
    """Satellite 1: one percentile/CDF implementation, not three.

    ProofReport and LatencyRecorder both delegate to obs.Histogram; pin
    that they produce identical numbers on the same population."""

    # a seed-VC-like population: heavy-tailed positive durations
    POPULATION = [((i * 2654435761) % 997) / 100.0 + 0.001
                  for i in range(220)]

    def test_latency_recorder_is_a_histogram(self):
        rec = LatencyRecorder()
        assert isinstance(rec, Histogram)

    def test_percentile_ns_matches_histogram(self):
        rec = LatencyRecorder()
        hist = Histogram(name="ref")
        for v in self.POPULATION:
            ns = int(v * 1000)
            rec.record(ns)
            hist.record(ns)
        for p in (0, 1, 25, 50, 75, 90, 99, 100):
            assert rec.percentile_ns(p) == hist.percentile(p)

    def test_proof_report_cdf_matches_histogram(self):
        from repro.verif.engine import ProofReport
        from repro.verif.vc import VCResult, VCStatus

        results = [
            VCResult(name=f"vc{i}", category="test",
                     status=VCStatus.PROVED, seconds=v)
            for i, v in enumerate(self.POPULATION)
        ]
        report = ProofReport(results=results)
        hist = Histogram(name="ref")
        for v in self.POPULATION:
            hist.record(v)
        for points in (1, 7, 50, 220, 500):
            assert report.cdf(points) == hist.cdf(points)
        for bound in (0.5, 2.0, 5.0):
            assert report.fraction_within(bound) == \
                hist.fraction_within(bound)


class TestEvents:
    def test_event_json_is_canonical(self):
        event = make_event("x", t=1.5, clock="wall", b=2, a=1)
        record = json.loads(event.to_json())
        assert record == {"name": "x", "t": 1.5, "clock": "wall",
                          "a": 1, "b": 2}
        # keys sorted, no spaces: deterministic byte output
        assert event.to_json() == \
            '{"a":1,"b":2,"clock":"wall","name":"x","t":1.5}'

    def test_make_event_rejects_non_scalar(self):
        with pytest.raises(TypeError):
            make_event("x", t=0.0, clock="wall", bad=[1, 2])

    def test_bus_off_by_default(self):
        bus = EventBus()
        assert not bus.active
        assert bus.emit("x", t=0.0) is None
        assert bus.events == []

    def test_bus_records_when_enabled(self):
        bus = EventBus()
        bus.enable()
        bus.emit("a", t=1.0)
        bus.emit("b", t=2.0, clock="sim")
        assert bus.counts() == {"a": 1, "b": 1}
        assert [e.name for e in bus.of_name("a")] == ["a"]
        lines = bus.to_jsonl().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert obs.validate_jsonl_line(line) == []

    def test_subscriber_activates_bus(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        assert bus.active
        bus.emit("x", t=0.0)
        assert len(seen) == 1
        # subscribe-only: nothing retained on the bus itself
        assert bus.events == []
        bus.unsubscribe(seen.append)
        assert not bus.active

    def test_jsonl_writer(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus()
        writer = JsonlWriter(str(path))
        bus.subscribe(writer)
        bus.emit("x", t=0.0, k="v")
        bus.emit("y", t=1.0)
        bus.unsubscribe(writer)
        writer.close()
        assert writer.count == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(obs.validate_jsonl_line(line) == [] for line in lines)


class TestSchemaValidation:
    def test_valid_record(self):
        assert obs.validate_record(
            {"name": "x", "t": 0.5, "clock": "wall"}) == []

    def test_invalid_records(self):
        assert obs.validate_record({"t": 0.0, "clock": "wall"})  # no name
        assert obs.validate_record(
            {"name": "", "t": 0.0, "clock": "wall"})             # empty name
        assert obs.validate_record(
            {"name": "x", "t": -1, "clock": "wall"})             # negative t
        assert obs.validate_record(
            {"name": "x", "t": 0.0, "clock": "tai"})             # bad clock
        assert obs.validate_record(
            {"name": "x", "t": True, "clock": "wall"})           # bool t
        assert obs.validate_record(
            {"name": "x", "t": 0.0, "clock": "wall",
             "f": [1]})                                          # non-scalar
        assert obs.validate_jsonl_line("not json")
        assert obs.validate_jsonl_line("[1,2]")


class TestSpans:
    def test_wall_span_records_to_histogram(self):
        hist = Histogram(name="h")
        with Span("op", histogram=hist):
            pass
        assert len(hist) == 1
        assert hist.samples[0] >= 0

    def test_sim_span_charges_virtual_ns(self):
        from repro.sim.kernel import Delay, Simulator

        sim = Simulator()
        hist = Histogram(name="h")
        clock = sim_clock(sim)

        def proc():
            span = Span("op", clock=clock, histogram=hist).start()
            yield Delay(123)
            yield Delay(7)
            span.finish()

        sim.spawn(proc())
        sim.run()
        assert hist.samples == [130]

    def test_span_emits_event_with_fields(self):
        bus = EventBus()
        bus.enable()
        t = iter([100, 250])
        span = Span("op", clock=lambda: next(t), bus=bus, core=3).start()
        elapsed = span.finish()
        assert elapsed == 150
        (event,) = bus.events
        assert event.name == "op"
        assert event.clock == "sim"
        assert event.get("dur") == 150
        assert event.get("core") == 3

    def test_traced_sim_run_is_deterministic(self):
        """Satellite 3: two identical sim-clocked runs produce identical
        JSONL traces — virtual time makes tracing reproducible."""
        from repro.nr.timed import TimedNrConfig, run_timed_workload

        def workload(core, i):
            return (("set", core * 100 + i, i), False)

        def traced_run():
            bus = EventBus()
            bus.enable()
            cfg = TimedNrConfig(num_cores=4, ops_per_core=6)
            result = run_timed_workload(dict_factory, workload, cfg, bus=bus)
            return result, bus.to_jsonl()

        def dict_factory():
            return _DictDs()

        first_result, first_trace = traced_run()
        second_result, second_trace = traced_run()
        assert first_trace == second_trace
        assert first_trace  # non-empty
        for line in first_trace.splitlines():
            record = json.loads(line)
            assert record["clock"] == "sim"
            assert isinstance(record["dur"], int)
        assert first_result.sim_ns == second_result.sim_ns
        assert first_result.latency.samples == second_result.latency.samples
        # every traced nr.op matches one recorded latency sample
        assert len(first_trace.splitlines()) == len(first_result.latency)


class _DictDs:
    def __init__(self):
        self.data = {}

    def apply(self, op):
        _, key, value = op
        self.data[key] = value
        return value

    def query(self, op):
        return self.data.get(op[1])


class TestRegistry:
    def test_labeled_lookup_is_stable(self):
        reg = Registry()
        a = reg.counter("hits", lane="inline")
        b = reg.counter("hits", lane="inline")
        c = reg.counter("hits", lane="proc")
        assert a is b
        assert a is not c
        a.inc()
        assert reg.counter("hits", lane="inline").value == 1

    def test_reset_zeroes_in_place(self):
        reg = Registry()
        counter = reg.counter("n")
        hist = reg.histogram("h")
        counter.inc()
        hist.record(5)
        reg.reset()
        # handles stay valid, values are zeroed
        assert counter.value == 0
        assert len(hist) == 0
        assert reg.counter("n") is counter

    def test_snapshot(self):
        reg = Registry()
        reg.counter("c").add(3)
        reg.gauge("g").set(2)
        reg.histogram("h").record(10)
        snap = reg.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == {"value": 2, "high_water": 2}
        assert snap["h"]["count"] == 1
        # labeled instruments render prometheus-style keys
        reg.counter("c", lane="x").add(1)
        assert reg.snapshot()["c{lane=x}"] == 1

    def test_global_registry_shorthands(self):
        obs.registry().reset()
        obs.counter("test.shorthand").inc()
        assert obs.counter("test.shorthand").value == 1
        obs.registry().reset()
        assert obs.counter("test.shorthand").value == 0


class TestConsole:
    def test_captured_console(self):
        captured = CapturedConsole()
        previous = get_console()
        set_console(captured)
        try:
            obs.console.out("hello")
            obs.console.out()
            obs.console.err("oops")
        finally:
            set_console(previous)
        assert captured.stdout_lines == ["hello", ""]
        assert captured.stderr_lines == ["oops"]

    def test_default_console_writes_to_stdout(self, capsys):
        obs.console.out("to stdout")
        obs.console.err("to stderr")
        out, err = capsys.readouterr()
        assert out == "to stdout\n"
        assert err == "to stderr\n"


class TestFaultCounters:
    def test_site_summary_backed_by_counters(self):
        from repro.faults.campaign import CampaignReport

        report = CampaignReport(name="t", seed=1)
        site = report.site("disk.io")
        site.injected += 2
        site.survived += 1
        assert site.injected == 2
        assert report.registry.counter(
            "faults.injected", site="disk.io").value == 2
        with pytest.raises(ValueError):
            site.injected -= 1

    def test_campaign_registries_are_independent(self):
        from repro.faults.campaign import CampaignReport

        first = CampaignReport(name="a", seed=1)
        second = CampaignReport(name="b", seed=1)
        first.site("x").injected += 5
        assert second.site("x").injected == 0
