"""Network stack tests: framing, checksums, UDP, RDP over lossy links."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.devices.nic import Nic
from repro.nros.net.eth import BROADCAST, EthFrame, FrameError
from repro.nros.net.ip import (
    Ipv4Packet,
    PacketError,
    checksum16,
    ip_addr,
    ip_str,
)
from repro.nros.net.link import Hub, Link
from repro.nros.net.rdp import RdpSegment, RdpError, TYPE_DATA
from repro.nros.net.stack import NetError, NetStack
from repro.nros.net.udp import DatagramError, UdpDatagram

MAC_A = bytes.fromhex("020000000001")
MAC_B = bytes.fromhex("020000000002")
IP_A = ip_addr("10.0.0.1")
IP_B = ip_addr("10.0.0.2")


def make_pair(drop_rate=0.0, seed=0):
    nic_a, nic_b = Nic(MAC_A), Nic(MAC_B)
    stack_a, stack_b = NetStack(IP_A, nic_a), NetStack(IP_B, nic_b)
    stack_a.add_neighbour(IP_B, MAC_B)
    stack_b.add_neighbour(IP_A, MAC_A)
    link = Link(nic_a, nic_b, drop_rate=drop_rate, seed=seed)
    return stack_a, stack_b, link


def pump(link, *stacks, rounds=1):
    for _ in range(rounds):
        link.pump()
        for stack in stacks:
            stack.poll()


class TestEth:
    def test_roundtrip(self):
        frame = EthFrame(MAC_A, MAC_B, 0x0800, b"payload")
        assert EthFrame.decode(frame.encode()) == frame

    def test_short_frame(self):
        with pytest.raises(FrameError):
            EthFrame.decode(b"short")

    def test_bad_mac(self):
        with pytest.raises(FrameError):
            EthFrame(b"xx", MAC_B, 0x0800, b"")


class TestIp:
    def test_roundtrip(self):
        packet = Ipv4Packet(src=IP_A, dst=IP_B, proto=17, payload=b"hi")
        decoded = Ipv4Packet.decode(packet.encode())
        assert decoded == packet

    def test_checksum_detects_corruption(self):
        data = bytearray(Ipv4Packet(IP_A, IP_B, 17, b"hi").encode())
        data[12] ^= 0xFF  # flip src address bits
        with pytest.raises(PacketError, match="checksum"):
            Ipv4Packet.decode(bytes(data))

    def test_checksum16_known_value(self):
        # RFC 1071 example bytes
        assert checksum16(bytes.fromhex("00010203")) == ~((0x0001 + 0x0203)) & 0xFFFF

    def test_ip_str_addr_roundtrip(self):
        assert ip_str(ip_addr("192.168.1.200")) == "192.168.1.200"
        with pytest.raises(ValueError):
            ip_addr("300.0.0.1")
        with pytest.raises(ValueError):
            ip_addr("1.2.3")

    @given(st.binary(max_size=100))
    @settings(max_examples=40)
    def test_roundtrip_property(self, payload):
        packet = Ipv4Packet(IP_A, IP_B, 17, payload)
        assert Ipv4Packet.decode(packet.encode()).payload == payload


class TestUdp:
    def test_roundtrip(self):
        d = UdpDatagram(1234, 80, b"data")
        assert UdpDatagram.decode(d.encode(IP_A, IP_B), IP_A, IP_B) == d

    def test_checksum_includes_pseudo_header(self):
        encoded = UdpDatagram(1, 2, b"x").encode(IP_A, IP_B)
        # decoding with different addresses must fail the checksum
        with pytest.raises(DatagramError):
            UdpDatagram.decode(encoded, IP_A, IP_A)

    def test_truncated(self):
        with pytest.raises(DatagramError):
            UdpDatagram.decode(b"\x00\x01", IP_A, IP_B)


class TestUdpSockets:
    def test_send_recv(self):
        a, b, link = make_pair()
        sock = b.udp_bind(7777)
        a.udp_send(5555, IP_B, 7777, b"ping")
        pump(link, a, b)
        assert list(sock.recv_queue) == [(IP_A, 5555, b"ping")]

    def test_unbound_port_drops(self):
        a, b, link = make_pair()
        a.udp_send(5555, IP_B, 9999, b"nobody")
        pump(link, a, b)  # no exception, no crash

    def test_double_bind(self):
        a, _, _ = make_pair()[0], None, None
        a.udp_bind(80)
        with pytest.raises(NetError):
            a.udp_bind(80)

    def test_unknown_destination_triggers_arp(self):
        a, _, _ = make_pair()
        a.udp_send(1, ip_addr("10.9.9.9"), 2, b"x")
        # datagram queued pending resolution, ARP request broadcast
        assert a.stats_arp_requests == 1
        assert ip_addr("10.9.9.9") in a._arp_pending


class TestArp:
    def _unseeded_pair(self):
        """Two stacks that only know themselves (no static neighbours)."""
        nic_a, nic_b = Nic(MAC_A), Nic(MAC_B)
        a, b = NetStack(IP_A, nic_a), NetStack(IP_B, nic_b)
        link = Link(nic_a, nic_b)
        return a, b, link

    def test_packet_roundtrip(self):
        from repro.nros.net.arp import ArpPacket, request, reply

        req = request(MAC_A, IP_A, IP_B)
        assert ArpPacket.decode(req.encode()) == req
        rep = reply(MAC_B, IP_B, MAC_A, IP_A)
        assert ArpPacket.decode(rep.encode()) == rep

    def test_decode_errors(self):
        from repro.nros.net.arp import ArpError, ArpPacket

        with pytest.raises(ArpError):
            ArpPacket.decode(b"short")
        bad_op = bytearray(
            __import__("repro.nros.net.arp", fromlist=["request"])
            .request(MAC_A, IP_A, IP_B).encode()
        )
        bad_op[7] = 9
        with pytest.raises(ArpError):
            ArpPacket.decode(bytes(bad_op))

    def test_resolution_delivers_queued_datagram(self):
        a, b, link = self._unseeded_pair()
        sock = b.udp_bind(53)
        a.udp_send(1000, IP_B, 53, b"resolved!")
        assert IP_B in a._arp_pending
        pump(link, a, b, rounds=3)
        # request reached b, reply reached a, datagram flushed and arrived
        assert list(sock.recv_queue) == [(IP_A, 1000, b"resolved!")]
        assert a.neighbours[IP_B] == MAC_B
        assert b.neighbours[IP_A] == MAC_A  # learned from the request
        assert IP_B not in a._arp_pending

    def test_multiple_queued_datagrams_flush_in_order(self):
        a, b, link = self._unseeded_pair()
        sock = b.udp_bind(53)
        for i in range(3):
            a.udp_send(1000, IP_B, 53, f"m{i}".encode())
        pump(link, a, b, rounds=3)
        assert [payload for _, _, payload in sock.recv_queue] == \
            [b"m0", b"m1", b"m2"]

    def test_pending_queue_bounded(self):
        a, _, _ = self._unseeded_pair()
        for i in range(40):
            a.udp_send(1, ip_addr("10.9.9.9"), 2, bytes([i]))
        assert len(a._arp_pending[ip_addr("10.9.9.9")]) == 16

    def test_rdp_over_arp_resolution(self):
        """A full RDP session where neither side was preconfigured."""
        a, b, link = self._unseeded_pair()
        listener = b.rdp_listen(9000)
        conn = a.rdp_connect(IP_B, 9000)
        conn.queue_send(b"payload")
        server = None
        got = None
        for _ in range(200):
            a.tick()
            b.tick()
            pump(link, a, b, rounds=2)
            if server is None and listener.pending:
                server = listener.pending.popleft()
            if server is not None and server.recv_queue:
                got = server.recv_queue.popleft()
                break
        assert got == b"payload"


class TestRdpSegments:
    def test_roundtrip(self):
        seg = RdpSegment(TYPE_DATA, 7, 3, 0, b"hello")
        assert RdpSegment.decode(seg.encode()) == seg

    def test_bad_type(self):
        with pytest.raises(RdpError):
            RdpSegment.decode(bytes([99]) + bytes(12))


def rdp_session(drop_rate=0.0, seed=1, messages=("alpha", "beta", "gamma")):
    a, b, link = make_pair(drop_rate=drop_rate, seed=seed)
    listener = b.rdp_listen(9000)
    conn = a.rdp_connect(IP_B, 9000)
    server_conn = None
    received = []
    for payload in messages:
        conn.queue_send(payload.encode())
    for _ in range(600):
        a.tick()
        b.tick()
        pump(link, a, b, rounds=2)
        if server_conn is None and listener.pending:
            server_conn = listener.pending.popleft()
        if server_conn is not None:
            while server_conn.recv_queue:
                received.append(server_conn.recv_queue.popleft().decode())
        if len(received) == len(messages):
            break
    return a, b, conn, server_conn, received


class TestRdp:
    def test_reliable_delivery_clean_link(self):
        _, _, conn, server_conn, received = rdp_session()
        assert received == ["alpha", "beta", "gamma"]
        assert conn.state == "established"
        assert server_conn is not None

    def test_reliable_delivery_lossy_link(self):
        # 30% drop: handshake and data must still arrive, in order,
        # exactly once
        _, _, conn, _, received = rdp_session(drop_rate=0.3, seed=7)
        assert received == ["alpha", "beta", "gamma"]
        assert conn.retransmissions > 0

    def test_very_lossy_link(self):
        _, _, _, _, received = rdp_session(drop_rate=0.5, seed=13)
        assert received == ["alpha", "beta", "gamma"]

    def test_no_duplicates_under_ack_loss(self):
        msgs = [f"m{i}" for i in range(8)]
        _, _, _, _, received = rdp_session(drop_rate=0.35, seed=21,
                                           messages=msgs)
        assert received == msgs  # exactly once, in order

    def test_bidirectional(self):
        a, b, link = make_pair()
        listener = b.rdp_listen(9000)
        client = a.rdp_connect(IP_B, 9000)
        client.queue_send(b"request")
        server = None
        reply = None
        for _ in range(100):
            a.tick()
            b.tick()
            pump(link, a, b, rounds=2)
            if server is None and listener.pending:
                server = listener.pending.popleft()
            if server is not None and server.recv_queue:
                server.recv_queue.popleft()
                b.rdp_send(server, b"response")
            got = a.rdp_recv(client)
            if got is not None:
                reply = got
                break
        assert reply == b"response"

    def test_close_sends_fin(self):
        a, b, link = make_pair()
        b.rdp_listen(9000)
        conn = a.rdp_connect(IP_B, 9000)
        for _ in range(20):
            a.tick(); b.tick(); pump(link, a, b, rounds=2)
            if conn.state == "established":
                break
        a.rdp_close(conn)
        assert conn.state == "closed"
        with pytest.raises(RdpError):
            conn.queue_send(b"late")


class TestHub:
    def test_three_hosts(self):
        macs = [bytes([2, 0, 0, 0, 0, i]) for i in (1, 2, 3)]
        nics = [Nic(m) for m in macs]
        ips = [ip_addr(f"10.0.0.{i}") for i in (1, 2, 3)]
        stacks = [NetStack(ip, nic) for ip, nic in zip(ips, nics)]
        for stack in stacks:
            for ip, mac in zip(ips, macs):
                stack.add_neighbour(ip, mac)
        hub = Hub(nics)
        sock = stacks[2].udp_bind(53)
        stacks[0].udp_send(1000, ips[2], 53, b"query")
        hub.pump()
        for stack in stacks:
            stack.poll()
        assert list(sock.recv_queue) == [(ips[0], 1000, b"query")]

    def test_mac_filtering(self):
        macs = [bytes([2, 0, 0, 0, 0, i]) for i in (1, 2, 3)]
        nics = [Nic(m) for m in macs]
        hub = Hub(nics)
        frame = EthFrame(macs[1], macs[0], 0x0800, b"direct").encode()
        nics[0].transmit(frame)
        hub.pump()
        assert nics[1].receive() == frame
        assert nics[2].receive() is None

    def test_broadcast(self):
        macs = [bytes([2, 0, 0, 0, 0, i]) for i in (1, 2, 3)]
        nics = [Nic(m) for m in macs]
        hub = Hub(nics)
        frame = EthFrame(BROADCAST, macs[0], 0x0800, b"all").encode()
        nics[0].transmit(frame)
        hub.pump()
        assert nics[1].receive() == frame
        assert nics[2].receive() == frame
