"""Tests for signals (kill/signal/sigwait) and filesystem hard links."""

import pytest

from repro.hw.devices.disk import Disk
from repro.nros.fs.blockdev import BlockDevice
from repro.nros.fs.fs import Exists, FileSystem, IsADirectory, NotFound
from repro.nros.kernel import Kernel
from repro.nros.syscall.abi import SIGKILL, SIGTERM, SIGUSR1, SIGUSR2, SyscallError, sys


def fresh_fs():
    return FileSystem.mkfs(BlockDevice(Disk(256)))


class TestHardLinks:
    def test_link_shares_data(self):
        fs = fresh_fs()
        inum = fs.create("/orig")
        fs.write_at(inum, 0, b"shared bytes")
        fs.link("/orig", "/alias")
        assert fs.lookup("/alias") == inum
        assert fs.read_at(fs.lookup("/alias"), 0, 100) == b"shared bytes"
        assert fs.stat("/orig").nlink == 2

    def test_write_through_one_name_visible_via_other(self):
        fs = fresh_fs()
        fs.create("/a")
        fs.link("/a", "/b")
        fs.write_at(fs.lookup("/b"), 0, b"via b")
        assert fs.read_at(fs.lookup("/a"), 0, 10) == b"via b"

    def test_unlink_one_name_keeps_data(self):
        fs = fresh_fs()
        inum = fs.create("/a")
        fs.write_at(inum, 0, b"survives")
        fs.link("/a", "/b")
        fs.unlink("/a")
        assert not fs.exists("/a")
        assert fs.read_at(fs.lookup("/b"), 0, 100) == b"survives"
        assert fs.stat("/b").nlink == 1

    def test_last_unlink_frees(self):
        fs = fresh_fs()
        free_before = fs.bitmap.count_free()
        inum = fs.create("/a")
        fs.write_at(inum, 0, b"x" * 5000)
        fs.link("/a", "/b")
        fs.unlink("/a")
        fs.unlink("/b")
        assert fs.bitmap.count_free() == free_before
        # inode slot reusable
        assert fs.create("/c") == inum

    def test_cannot_link_directory(self):
        fs = fresh_fs()
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.link("/d", "/d2")

    def test_link_to_existing_name(self):
        fs = fresh_fs()
        fs.create("/a")
        fs.create("/b")
        with pytest.raises(Exists):
            fs.link("/a", "/b")

    def test_link_missing_source(self):
        fs = fresh_fs()
        with pytest.raises(NotFound):
            fs.link("/ghost", "/x")

    def test_links_survive_remount(self):
        disk = Disk(256)
        fs = FileSystem.mkfs(BlockDevice(disk))
        fs.create("/a")
        fs.write_at(fs.lookup("/a"), 0, b"persisted")
        fs.link("/a", "/b")
        fs2 = FileSystem(BlockDevice(disk))
        assert fs2.stat("/a").nlink == 2
        assert fs2.lookup("/a") == fs2.lookup("/b")

    def test_link_syscall(self):
        results = {}

        def prog():
            from repro.nros.fs.fd import O_CREAT, O_RDWR
            fd = yield sys("open", "/file", O_CREAT | O_RDWR)
            yield sys("write", fd, b"data here")
            yield sys("close", fd)
            yield sys("link", "/file", "/hardlink")
            fd = yield sys("open", "/hardlink", O_RDWR)
            results["data"] = yield sys("read", fd, 100)
            yield sys("truncate", "/hardlink", 4)
            results["stat"] = yield sys("stat", "/file")

        kernel = Kernel()
        kernel.register_program("p", prog)
        kernel.spawn("p")
        kernel.run()
        assert results["data"] == b"data here"
        assert results["stat"][2] == 4  # truncate visible through both names


class TestSignals:
    def test_signal_then_sigwait(self):
        got = []

        def receiver():
            signum = yield sys("sigwait")
            got.append(signum)

        def sender(pid):
            yield sys("sleep", 2)
            yield sys("signal", pid, SIGUSR1)

        kernel = Kernel()
        kernel.register_program("receiver", receiver)
        kernel.register_program("sender", sender)
        rpid = kernel.spawn("receiver")
        kernel.spawn("sender", (rpid,))
        kernel.run()
        assert got == [SIGUSR1]

    def test_pending_signal_returned_immediately(self):
        got = []

        def receiver():
            yield sys("sleep", 4)  # signal arrives while we sleep
            pending = yield sys("sigpending")
            got.append(pending)
            got.append((yield sys("sigwait")))
            got.append((yield sys("sigpending")))

        def sender(pid):
            yield sys("signal", pid, SIGTERM)

        kernel = Kernel()
        kernel.register_program("receiver", receiver)
        kernel.register_program("sender", sender)
        rpid = kernel.spawn("receiver")
        kernel.spawn("sender", (rpid,))
        kernel.run()
        assert got == [(SIGTERM,), SIGTERM, ()]

    def test_signals_queue_in_order(self):
        got = []

        def receiver():
            for _ in range(3):
                got.append((yield sys("sigwait")))

        def sender(pid):
            yield sys("sleep", 2)
            yield sys("signal", pid, SIGUSR1)
            yield sys("signal", pid, SIGUSR2)
            yield sys("signal", pid, SIGTERM)

        kernel = Kernel()
        kernel.register_program("receiver", receiver)
        kernel.register_program("sender", sender)
        rpid = kernel.spawn("receiver")
        kernel.spawn("sender", (rpid,))
        kernel.run()
        assert got == [SIGUSR1, SIGUSR2, SIGTERM]

    def test_sigkill_still_kills(self):
        def victim():
            while True:
                yield sys("sched_yield")

        def killer(pid):
            yield sys("kill", pid, SIGKILL)

        kernel = Kernel()
        kernel.register_program("victim", victim)
        kernel.register_program("killer", killer)
        vpid = kernel.spawn("victim")
        kernel.spawn("killer", (vpid,))
        kernel.run()
        assert kernel.processes[vpid].exit_code == 137

    def test_signal_sigkill_rejected(self):
        errors = []

        def prog():
            me = yield sys("getpid")
            try:
                yield sys("signal", me, SIGKILL)
            except SyscallError as exc:
                errors.append(exc.errno)

        from repro.nros.syscall.abi import EINVAL
        kernel = Kernel()
        kernel.register_program("p", prog)
        kernel.spawn("p")
        kernel.run()
        assert errors == [EINVAL]

    def test_signal_dead_process(self):
        errors = []

        def prog():
            try:
                yield sys("signal", 999, SIGUSR1)
            except SyscallError as exc:
                errors.append(exc.errno)

        from repro.nros.syscall.abi import ESRCH
        kernel = Kernel()
        kernel.register_program("p", prog)
        kernel.spawn("p")
        kernel.run()
        assert errors == [ESRCH]
