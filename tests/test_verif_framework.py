"""Tests for state machines, exploration, refinement, and the proof engine."""

import pytest

from repro.smt import ast
from repro.verif.engine import ProofEngine
from repro.verif.explore import check_inductive, reachable_states
from repro.verif.refinement import RefinementProof, SimulationCase
from repro.verif.statemachine import SpecStateMachine, Transition
from repro.verif.vc import VC, VCStatus, forall_vc, smt_vc


def counter_machine(limit=5, stride=1):
    """A bounded counter: inc when below limit, reset anytime."""
    return SpecStateMachine(
        name="counter",
        init_states=[0],
        transitions=[
            Transition(
                name="inc",
                enabled=lambda s, a: s < limit,
                apply=lambda s, a: s + stride,
            ),
            Transition(
                name="reset",
                enabled=lambda s, a: True,
                apply=lambda s, a: 0,
            ),
        ],
        invariants={"bounded": lambda s: 0 <= s <= limit},
    )


class TestStateMachine:
    def test_step(self):
        m = counter_machine()
        assert m.step(0, "inc") == 1
        assert m.step(3, "reset") == 0

    def test_step_disabled_raises(self):
        m = counter_machine(limit=2)
        with pytest.raises(ValueError):
            m.step(2, "inc")

    def test_unknown_transition(self):
        with pytest.raises(KeyError):
            counter_machine().transition("nope")

    def test_enabled_steps(self):
        m = counter_machine(limit=1)
        steps = list(m.enabled_steps(1))
        assert ("reset", (), 0) in steps
        assert all(name != "inc" for name, _, _ in steps)

    def test_check_invariants(self):
        m = counter_machine(limit=3)
        assert m.check_invariants(2) is None
        assert m.check_invariants(7) == "bounded"


class TestExplore:
    def test_reachable_states(self):
        result = reachable_states(counter_machine(limit=4))
        assert result.ok
        assert sorted(result.states) == [0, 1, 2, 3, 4]
        assert not result.truncated

    def test_invariant_violation_found_with_trace(self):
        machine = counter_machine(limit=5, stride=2)
        machine.invariants["even_only_wrong"] = lambda s: s != 4
        result = reachable_states(machine)
        assert not result.ok
        name, state, trace = result.violation
        assert name == "even_only_wrong"
        assert state == 4
        # replay the trace from an initial state
        replayed = machine.init_states[0]
        for step_name, args in trace:
            replayed = machine.step(replayed, step_name, args)
        assert replayed == state

    def test_truncation(self):
        result = reachable_states(counter_machine(limit=100), max_states=10)
        assert result.truncated

    def test_max_depth(self):
        result = reachable_states(counter_machine(limit=50), max_depth=3)
        assert result.truncated
        assert max(result.states) <= 3

    def test_check_inductive_holds(self):
        m = counter_machine(limit=4)
        assert check_inductive(m, range(0, 5), "bounded") is None

    def test_check_inductive_counterexample(self):
        m = counter_machine(limit=4)
        m.invariants["lt3"] = lambda s: s < 3
        cex = check_inductive(m, range(0, 5), "lt3")
        assert cex is not None
        state, name, args, successor = cex
        assert state == 2 and name == "inc" and successor == 3


class TestRefinement:
    def _machines(self):
        # low: counter stepping by 1 twice per high step (with parity flag)
        low = SpecStateMachine(
            name="low",
            init_states=[(0, 0)],
            transitions=[
                Transition(
                    name="half",
                    enabled=lambda s, a: s[0] < 6,
                    apply=lambda s, a: (s[0] + 1, 1 - s[1]),
                ),
            ],
        )
        high = SpecStateMachine(
            name="high",
            init_states=[0],
            transitions=[
                Transition(
                    name="tick",
                    enabled=lambda s, a: s < 3,
                    apply=lambda s, a: s + 1,
                ),
            ],
        )
        return low, high

    def test_simulation_holds(self):
        low, high = self._machines()
        states = [s for s in reachable_states(low).states]

        # abstraction: completed pairs of half-steps
        proof = RefinementProof(
            low=low,
            high=high,
            abstraction=lambda s: s[0] // 2,
            cases=[
                # a half step is a stutter when it starts a pair, a tick
                # when it completes one; model both with a custom VC split
                # by parity using two cases over the same low transition.
            ],
            state_source=lambda: states,
        )
        # init obligation alone
        assert proof.init_vc().discharge().ok

    def test_commuting_diagram(self):
        identity = lambda s: s
        base = SpecStateMachine(
            name="base",
            init_states=[0],
            transitions=[
                Transition("inc", lambda s, a: s < 3, lambda s, a: s + 1)
            ],
        )
        proof = RefinementProof(
            low=base,
            high=base,
            abstraction=identity,
            cases=[SimulationCase("inc", "inc")],
            state_source=lambda: [0, 1, 2, 3],
        )
        report_results = [vc.discharge() for vc in proof.all_vcs()]
        assert all(r.ok for r in report_results)

    def test_broken_diagram_detected(self):
        low = SpecStateMachine(
            name="low2",
            init_states=[0],
            transitions=[
                Transition("inc2", lambda s, a: s < 4, lambda s, a: s + 2)
            ],
        )
        high = SpecStateMachine(
            name="high2",
            init_states=[0],
            transitions=[
                Transition("inc1", lambda s, a: True, lambda s, a: s + 1)
            ],
        )
        proof = RefinementProof(
            low=low,
            high=high,
            abstraction=lambda s: s,
            cases=[SimulationCase("inc2", "inc1")],
            state_source=lambda: [0, 2, 4],
        )
        result = proof.step_vc(proof.cases[0]).discharge()
        assert result.status is VCStatus.FAILED
        assert "commute" in result.detail

    def test_stutter_case(self):
        low = SpecStateMachine(
            name="low3",
            init_states=[(0, 0)],
            transitions=[
                Transition(
                    "internal",
                    lambda s, a: True,
                    lambda s, a: (s[0], s[1] + 1) if s[1] < 3 else s,
                )
            ],
        )
        high = SpecStateMachine(name="high3", init_states=[0], transitions=[])
        proof = RefinementProof(
            low=low,
            high=high,
            abstraction=lambda s: s[0],
            cases=[SimulationCase("internal", None)],
            state_source=lambda: [(0, 0), (0, 1)],
        )
        assert proof.step_vc(proof.cases[0]).discharge().ok


class TestVCsAndEngine:
    def test_forall_vc_pass_and_fail(self):
        good = forall_vc("all_even", "demo", range(0, 10, 2), lambda x: x % 2 == 0)
        assert good.discharge().ok
        bad = forall_vc("all_even_bad", "demo", range(5), lambda x: x % 2 == 0)
        result = bad.discharge()
        assert result.status is VCStatus.FAILED
        assert result.counterexample == 1

    def test_smt_vc(self):
        x = ast.bv_var("x", 8)
        vc = smt_vc("x_eq_x", "lemmas", lambda: ast.eq(x, x))
        assert vc.discharge().ok
        bad = smt_vc("x_eq_0", "lemmas", lambda: ast.eq(x, ast.bv_const(0, 8)))
        result = bad.discharge()
        assert result.status is VCStatus.FAILED

    def test_vc_error_reported(self):
        def boom():
            raise RuntimeError("kaput")

        vc = VC(name="bad", category="demo", check=boom)
        result = vc.discharge()
        assert result.status is VCStatus.ERROR
        assert "kaput" in result.detail

    def test_engine_report(self):
        engine = ProofEngine()
        engine.add(forall_vc("a", "g1", [1, 2], lambda x: x > 0), group="g1")
        engine.add(forall_vc("b", "g1", [1, 2], lambda x: x < 2), group="g1")
        engine.add(forall_vc("c", "g2", [()], lambda x: True), group="g2")
        assert engine.vc_count == 3
        seen = []
        report = engine.run(progress=seen.append)
        assert len(seen) == 3
        assert report.total == 3
        assert report.proved == 2
        assert not report.all_proved
        assert len(report.failed) == 1
        assert report.total_seconds >= 0
        assert 0 < report.fraction_within(10.0) <= 1.0
        assert len(report.cdf()) == 3
        assert any("verification conditions: 3" in line
                   for line in report.summary_lines())

    def test_engine_group_reuse(self):
        engine = ProofEngine()
        engine.add(forall_vc("a", "g", [()], lambda x: True), group="g")
        engine.add(forall_vc("b", "g", [()], lambda x: True), group="g")
        assert len(engine.groups) == 1
