"""Cross-validation of the bit-blaster against the concrete evaluator.

Random term DAGs are generated, evaluated concretely, and compared with AIG
evaluation of the blasted circuit — the same oracle discipline the paper uses
between its hardware spec and the real MMU.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import ast, interp
from repro.smt.aig import Aig, node_of
from repro.smt.bitblast import BitBlaster


def blast_and_eval(term, env):
    """Evaluate `term` by bit-blasting + AIG simulation under `env`."""
    blaster = BitBlaster()
    if term.sort.is_bool:
        lits = [blaster.blast_bool(term)]
    else:
        lits = blaster.blast_bv(term)
    inputs = {}
    for name, value in env.items():
        bits = blaster.var_bits(name)
        if bits is None:
            continue
        for i, lit in enumerate(bits):
            inputs[node_of(lit)] = bool((int(value) >> i) & 1)
    values = [blaster.aig.evaluate(l, inputs) for l in lits]
    if term.sort.is_bool:
        return values[0]
    out = 0
    for i, v in enumerate(values):
        if v:
            out |= 1 << i
    return out


WIDTH = 8


DEFAULT_OPS = ("add", "sub", "and", "or", "xor", "not", "neg", "shl",
               "lshr", "ashr", "mul", "ite", "extract_zext")

# Multipliers make SAT equivalence checking exponentially hard; solver-level
# miter tests use this vocabulary instead.
LINEAR_OPS = tuple(op for op in DEFAULT_OPS if op != "mul")


def random_term(rng, depth, width=WIDTH, ops=DEFAULT_OPS):
    """A random bitvector term over variables a, b, c."""
    if depth == 0 or rng.random() < 0.25:
        choice = rng.random()
        if choice < 0.5:
            return ast.bv_var(rng.choice("abc"), width)
        return ast.bv_const(rng.randrange(1 << width), width)
    op = rng.choice(ops)
    a = random_term(rng, depth - 1, width, ops)
    if op == "not":
        return ast.bvnot(a)
    if op == "neg":
        return ast.bvneg(a)
    if op == "extract_zext":
        hi = rng.randrange(width)
        lo = rng.randrange(hi + 1)
        return ast.zext(ast.extract(a, hi, lo), width)
    b = random_term(rng, depth - 1, width, ops)
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "mul":
        return a * b
    if op == "shl":
        return ast.bvshl(a, ast.bv_const(rng.randrange(width + 2), width))
    if op == "lshr":
        return ast.bvlshr(a, ast.bv_const(rng.randrange(width + 2), width))
    if op == "ashr":
        return ast.bvashr(a, ast.bv_const(rng.randrange(width + 2), width))
    if op == "ite":
        cond = ast.ult(a, b)
        return ast.ite(cond, a, b)
    raise AssertionError(op)


class TestAgainstInterp:
    def test_random_bv_terms(self):
        rng = random.Random(42)
        for _ in range(150):
            term = random_term(rng, rng.randint(1, 4))
            env = {n: rng.randrange(1 << WIDTH) for n in "abc"}
            assert blast_and_eval(term, env) == interp.evaluate(term, env)

    def test_random_bool_terms(self):
        rng = random.Random(7)
        for _ in range(100):
            a = random_term(rng, 2)
            b = random_term(rng, 2)
            rel = rng.choice([ast.ult, ast.ule, ast.eq])
            term = rel(a, b)
            if rng.random() < 0.5:
                term = ast.not_(term)
            env = {n: rng.randrange(1 << WIDTH) for n in "abc"}
            assert blast_and_eval(term, env) == interp.evaluate(term, env)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 15))
    @settings(max_examples=80)
    def test_variable_shift(self, a_val, b_val, shift):
        a = ast.bv_var("a", 8)
        s = ast.bv_var("s", 8)
        for builder in (ast.bvshl, ast.bvlshr, ast.bvashr):
            term = builder(a, s)
            env = {"a": a_val, "s": shift, "b": b_val}
            assert blast_and_eval(term, env) == interp.evaluate(term, env)

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    @settings(max_examples=60)
    def test_wide_add_sub(self, x, y):
        a = ast.bv_var("a", 16)
        b = ast.bv_var("b", 16)
        env = {"a": x, "b": y}
        assert blast_and_eval(a + b, env) == (x + y) & 0xFFFF
        assert blast_and_eval(a - b, env) == (x - y) & 0xFFFF
        assert blast_and_eval(ast.ult(a, b), env) == (x < y)
        assert blast_and_eval(ast.ule(a, b), env) == (x <= y)

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=40)
    def test_mul(self, x, y):
        a = ast.bv_var("a", 8)
        b = ast.bv_var("b", 8)
        assert blast_and_eval(a * b, {"a": x, "b": y}) == (x * y) & 0xFF

    @given(st.integers(0, 255))
    @settings(max_examples=40)
    def test_concat_sext(self, x):
        a = ast.bv_var("a", 8)
        env = {"a": x}
        assert blast_and_eval(ast.concat(a, a), env) == (x << 8) | x
        assert blast_and_eval(ast.sext(a, 16), env) == interp.evaluate(
            ast.sext(a, 16), env
        )


class TestStructuralCollapse:
    """Structurally equal circuits must collapse to the same AIG literal —
    the property that makes most page-table lemmas free."""

    def test_shift_mask_vs_extract(self):
        va = ast.bv_var("va", 64)
        lhs = ast.bvand(
            ast.bvlshr(va, ast.bv_const(12, 64)), ast.bv_const(0x1FF, 64)
        )
        rhs = ast.zext(ast.extract(va, 20, 12), 64)
        blaster = BitBlaster()
        assert blaster.blast_bv(lhs) == blaster.blast_bv(rhs)

    def test_xor_same_is_zero(self):
        x = ast.bv_var("x", 16)
        y = ast.bv_var("y", 16)
        term = ast.bvxor(ast.bvand(x, y), ast.bvand(y, x))
        blaster = BitBlaster()
        bits = blaster.blast_bv(term)
        assert all(lit == 1 for lit in bits)  # all constant FALSE

    def test_demorgan_collapses(self):
        p = ast.bool_var("p")
        q = ast.bool_var("q")
        lhs = ast.not_(ast.and_(p, q))
        rhs = ast.or_(ast.not_(p), ast.not_(q))
        blaster = BitBlaster()
        assert blaster.blast_bool(lhs) == blaster.blast_bool(rhs)


class TestAig:
    def test_and_identities(self):
        g = Aig()
        a = g.new_input("a")
        assert g.and_(a, 0) == a  # TRUE
        assert g.and_(a, 1) == 1  # FALSE
        assert g.and_(a, a) == a
        assert g.and_(a, a ^ 1) == 1

    def test_strash_shares(self):
        g = Aig()
        a = g.new_input("a")
        b = g.new_input("b")
        assert g.and_(a, b) == g.and_(b, a)
        assert g.num_ands == 1

    def test_mux_constants(self):
        g = Aig()
        a = g.new_input("a")
        b = g.new_input("b")
        assert g.mux(0, a, b) == a
        assert g.mux(1, a, b) == b
        assert g.mux(g.new_input("s"), a, a) == a

    def test_evaluate(self):
        g = Aig()
        a = g.new_input("a")
        b = g.new_input("b")
        out = g.xor_(a, b)
        from repro.smt.aig import node_of as nd
        for av in (False, True):
            for bv in (False, True):
                env = {nd(a): av, nd(b): bv}
                assert g.evaluate(out, env) == (av != bv)

    def test_cone_excludes_unrelated(self):
        g = Aig()
        a = g.new_input("a")
        b = g.new_input("b")
        c = g.new_input("c")
        out = g.and_(a, b)
        g.and_(b, c)  # unrelated gate
        cone = g.cone([out])
        from repro.smt.aig import node_of as nd
        assert nd(c) not in cone
