"""Unit and property tests for the fixed-width word helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import wordlib


class TestMaskTruncate:
    def test_mask_small(self):
        assert wordlib.mask(0) == 0
        assert wordlib.mask(1) == 1
        assert wordlib.mask(8) == 0xFF
        assert wordlib.mask(64) == 0xFFFF_FFFF_FFFF_FFFF

    def test_mask_negative_raises(self):
        with pytest.raises(ValueError):
            wordlib.mask(-1)

    def test_truncate_wraps(self):
        assert wordlib.truncate(0x1FF, 8) == 0xFF
        assert wordlib.truncate(-1, 8) == 0xFF
        assert wordlib.truncate(256, 8) == 0

    @given(st.integers(), st.integers(min_value=1, max_value=128))
    def test_truncate_idempotent(self, value, width):
        once = wordlib.truncate(value, width)
        assert wordlib.truncate(once, width) == once
        assert 0 <= once <= wordlib.mask(width)


class TestBits:
    def test_bit(self):
        assert wordlib.bit(0b1010, 1) == 1
        assert wordlib.bit(0b1010, 0) == 0

    def test_set_bit(self):
        assert wordlib.set_bit(0, 3, True) == 8
        assert wordlib.set_bit(0xFF, 0, False) == 0xFE

    @given(st.integers(min_value=0, max_value=2**64 - 1),
           st.integers(min_value=0, max_value=63),
           st.booleans())
    def test_set_then_get(self, value, index, flag):
        assert wordlib.bit(wordlib.set_bit(value, index, flag), index) == int(flag)

    def test_extract(self):
        assert wordlib.extract(0xABCD, 15, 8) == 0xAB
        assert wordlib.extract(0xABCD, 7, 0) == 0xCD

    def test_extract_bad_range(self):
        with pytest.raises(ValueError):
            wordlib.extract(1, 0, 1)

    @given(st.integers(min_value=0, max_value=2**64 - 1),
           st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=63))
    def test_extract_replace_roundtrip(self, value, a, b):
        hi, lo = max(a, b), min(a, b)
        field = wordlib.extract(value, hi, lo)
        assert wordlib.replace_bits(value, hi, lo, field) == value

    def test_replace_bits_too_wide(self):
        with pytest.raises(ValueError):
            wordlib.replace_bits(0, 3, 0, 0x1F)


class TestSigns:
    def test_sign_extend_positive(self):
        assert wordlib.sign_extend(0x7F, 8, 16) == 0x7F

    def test_sign_extend_negative(self):
        assert wordlib.sign_extend(0x80, 8, 16) == 0xFF80

    def test_sign_extend_narrowing_raises(self):
        with pytest.raises(ValueError):
            wordlib.sign_extend(0, 16, 8)

    def test_to_signed(self):
        assert wordlib.to_signed(0xFF, 8) == -1
        assert wordlib.to_signed(0x7F, 8) == 127

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_to_signed_roundtrip(self, value):
        assert wordlib.truncate(wordlib.to_signed(value, 32), 32) == value


class TestAlignment:
    def test_is_aligned(self):
        assert wordlib.is_aligned(0x1000, 0x1000)
        assert not wordlib.is_aligned(0x1001, 0x1000)

    def test_is_aligned_bad_alignment(self):
        with pytest.raises(ValueError):
            wordlib.is_aligned(4, 3)

    def test_align_down_up(self):
        assert wordlib.align_down(0x1234, 0x1000) == 0x1000
        assert wordlib.align_up(0x1234, 0x1000) == 0x2000
        assert wordlib.align_up(0x1000, 0x1000) == 0x1000

    @given(st.integers(min_value=0, max_value=2**48),
           st.integers(min_value=0, max_value=20))
    def test_align_props(self, value, shift):
        alignment = 1 << shift
        down = wordlib.align_down(value, alignment)
        up = wordlib.align_up(value, alignment)
        assert down <= value <= up
        assert wordlib.is_aligned(down, alignment)
        assert wordlib.is_aligned(up, alignment)
        assert up - down in (0, alignment)


class TestMisc:
    def test_popcount(self):
        assert wordlib.popcount(0) == 0
        assert wordlib.popcount(0b1011) == 3

    def test_popcount_negative_raises(self):
        with pytest.raises(ValueError):
            wordlib.popcount(-1)

    def test_log2_exact(self):
        assert wordlib.log2_exact(1) == 0
        assert wordlib.log2_exact(4096) == 12

    def test_log2_exact_rejects_non_powers(self):
        with pytest.raises(ValueError):
            wordlib.log2_exact(12)
