"""Syscall ring tests: codecs, batched dispatch, typed per-entry errors,
batched memory ops with single-round shootdown, and obs wiring."""

import pytest

from repro import obs
from repro.faults.plan import FaultPlan, FaultRule
from repro.nros.fs.fd import O_CREAT, O_RDWR
from repro.nros.fs.fsck import fsck
from repro.nros.kernel import Kernel
from repro.nros.syscall import abi
from repro.nros.syscall import ring as ringmod
from repro.nros.syscall.abi import SyscallError, sys
from repro.nros.syscall.ring import (
    CQE_SIZE,
    RING_FORBIDDEN,
    SQE_SIZE,
    RingError,
    SqeDecodeError,
    SyscallRing,
    decode_cqe,
    decode_sqe,
    encode_cqe,
    encode_sqe,
)
from repro.ulib import Ring


def run_program(factory, name="test", kernel=None, argv=()):
    kernel = kernel or Kernel(num_cores=2)
    kernel.register_program(name, factory)
    pid = kernel.spawn(name, argv)
    kernel.run()
    return kernel, kernel.processes[pid]


class TestSqeCodec:
    def test_roundtrip(self):
        slot = encode_sqe(7, abi.SYSCALLS["write"], (3, b"payload"))
        assert len(slot) == SQE_SIZE
        user_data, number, args = decode_sqe(slot)
        assert user_data == 7
        assert number == abi.SYSCALLS["write"]
        assert args == (3, b"payload")

    def test_empty_args(self):
        user_data, number, args = decode_sqe(
            encode_sqe(0, abi.SYSCALLS["getpid"], ()))
        assert (user_data, args) == (0, ())

    def test_oversized_args_rejected(self):
        with pytest.raises(RingError):
            encode_sqe(1, abi.SYSCALLS["write"], (3, b"x" * 200))

    def test_bad_user_data_rejected(self):
        with pytest.raises(RingError):
            encode_sqe(-1, 1, ())
        with pytest.raises(RingError):
            encode_sqe(1 << 64, 1, ())

    def test_every_single_byte_corruption_detected(self):
        """The checksum property the torn-SQE fault model rests on: no
        one-byte change to an encoded slot decodes successfully."""
        slot = encode_sqe(9, abi.SYSCALLS["write"], (4, b"hello world"))
        for index in range(SQE_SIZE):
            for flip in (0x01, 0xFF):
                torn = bytearray(slot)
                torn[index] ^= flip
                with pytest.raises(SqeDecodeError):
                    decode_sqe(bytes(torn))

    def test_truncated_store_detected(self):
        slot = encode_sqe(9, abi.SYSCALLS["write"], (4, b"hello world"))
        for cut in range(1, SQE_SIZE):
            torn = slot[:cut] + bytes(SQE_SIZE - cut)
            if torn == slot:
                continue  # tail was already zero padding
            with pytest.raises(SqeDecodeError):
                decode_sqe(torn)

    def test_wrong_size_rejected(self):
        with pytest.raises(SqeDecodeError):
            decode_sqe(b"\x00" * 64)


class TestCqeCodec:
    def test_roundtrip(self):
        slot = encode_cqe(11, 0, (1, b"ok"))
        assert len(slot) == CQE_SIZE
        assert decode_cqe(slot) == (11, 0, (1, b"ok"))

    def test_oversized_success_degrades_to_e2big(self):
        user_data, status, value = decode_cqe(encode_cqe(3, 0, b"y" * 100))
        assert (user_data, status, value) == (3, abi.E2BIG, None)

    def test_unmarshallable_success_degrades_to_e2big(self):
        _, status, value = decode_cqe(encode_cqe(3, 0, [1, 2]))
        assert (status, value) == (abi.E2BIG, None)

    def test_error_status_survives_long_message(self):
        """An errno must never be masked by E2BIG just because its
        message payload does not fit the slot."""
        _, status, value = decode_cqe(
            encode_cqe(3, abi.ENOENT, "x" * 200))
        assert status == abi.ENOENT
        assert value is None


class TestRingStructure:
    def test_audit_clean_ring(self):
        ring = SyscallRing(ring_id=1, sq_base=0, cq_base=0x1000,
                           sq_depth=8, cq_depth=8)
        assert ring.audit() == []

    def test_audit_catches_ordering_break(self):
        ring = SyscallRing(ring_id=1, sq_base=0, cq_base=0x1000,
                           sq_depth=8, cq_depth=8,
                           sq_head=3, sq_tail=5, cq_tail=2)
        assert any("completion ordering" in p for p in ring.audit())

    def test_slot_vaddrs_wrap(self):
        ring = SyscallRing(ring_id=1, sq_base=0x4000, cq_base=0x8000,
                           sq_depth=4, cq_depth=4)
        assert ring.sq_slot_vaddr(5) == 0x4000 + 1 * SQE_SIZE
        assert ring.cq_slot_vaddr(7) == 0x8000 + 3 * CQE_SIZE

    def test_segments_contiguous_window(self):
        assert ringmod._segments(0x4000, 8, SQE_SIZE, 0, 3) == [(0x4000, 3)]
        # monotonic indices: slot = index % depth
        assert ringmod._segments(0x4000, 8, SQE_SIZE, 9, 2) == [
            (0x4000 + 1 * SQE_SIZE, 2)]

    def test_segments_wrap_splits_into_two_runs(self):
        assert ringmod._segments(0x4000, 8, SQE_SIZE, 6, 4) == [
            (0x4000 + 6 * SQE_SIZE, 2), (0x4000, 2)]

    def test_segments_full_window_is_one_run(self):
        assert ringmod._segments(0x4000, 8, SQE_SIZE, 16, 8) == [(0x4000, 8)]

    def test_segments_empty_and_oversized_windows(self):
        assert ringmod._segments(0x4000, 8, SQE_SIZE, 5, 0) == []
        with pytest.raises(RingError):
            ringmod._segments(0x4000, 8, SQE_SIZE, 0, 9)

    def test_ring_segment_methods_cover_every_slot_once(self):
        ring = SyscallRing(ring_id=1, sq_base=0x4000, cq_base=0x8000,
                           sq_depth=4, cq_depth=4)
        segs = ring.sq_segments(3, 3)  # slot 3, then wraps to 0..1
        assert segs == [(0x4000 + 3 * SQE_SIZE, 1), (0x4000, 2)]
        assert sum(slots for _vaddr, slots in segs) == 3
        assert ring.cq_segments(2, 2) == [(0x8000 + 2 * CQE_SIZE, 2)]


class TestRingDispatch:
    def test_setup_geometry(self):
        seen = []

        def prog():
            seen.append((yield sys("ring_setup", 8, 16)))

        _, process = run_program(prog)
        assert process.exit_code == 0
        ring_id, sq_base, cq_base, sq_depth, cq_depth = seen[0]
        assert (sq_depth, cq_depth) == (8, 16)
        assert cq_base > sq_base
        ring = process.rings[ring_id]
        assert (ring.sq_base, ring.cq_base) == (sq_base, cq_base)

    def test_bad_depth_rejected(self):
        seen = []

        def prog():
            for depth in (0, -1, ringmod.MAX_DEPTH + 1):
                try:
                    yield sys("ring_setup", depth)
                except SyscallError as exc:
                    seen.append(exc.errno)

        run_program(prog)
        assert seen == [abi.EINVAL] * 3

    def test_enter_unknown_ring(self):
        seen = []

        def prog():
            try:
                yield sys("ring_enter", 99, b"", True)
            except SyscallError as exc:
                seen.append(exc.errno)

        run_program(prog)
        assert seen == [abi.EBADF]

    def test_batch_completes_in_order_with_single_call_values(self):
        """The whole point: N ops, one syscall, same results as the
        single-call path."""
        batched, single = [], []

        def prog_batched():
            ring = Ring(sq_depth=8)
            yield from ring.setup()
            fd = yield sys("open", "/f.txt", O_CREAT | O_RDWR)
            ring.prepare("write", (fd, b"aaaa"))
            ring.prepare("write", (fd, b"bb"))
            ring.prepare("seek", (fd, 0))
            ring.prepare("read", (fd, 6))
            ring.prepare("stat", ("/f.txt",))
            batched.extend((yield from ring.submit()))

        def prog_single():
            fd = yield sys("open", "/f.txt", O_CREAT | O_RDWR)
            single.append((yield sys("write", fd, b"aaaa")))
            single.append((yield sys("write", fd, b"bb")))
            single.append((yield sys("seek", fd, 0)))
            single.append((yield sys("read", fd, 6)))
            single.append((yield sys("stat", "/f.txt")))

        kernel_b, process = run_program(prog_batched)
        kernel_s, _ = run_program(prog_single)
        assert process.exit_code == 0
        assert [c[0] for c in batched] == [1, 2, 3, 4, 5]
        assert all(c[1] == 0 for c in batched)
        assert [c[2] for c in batched] == single
        # the batched and unbatched kernels agree on the filesystem
        assert fsck(kernel_b.fs) == fsck(kernel_s.fs) == []
        assert kernel_b.stats.ring_batches == 1
        assert kernel_b.stats.ring_sqes == 5

    def test_forbidden_ops_complete_with_einval(self):
        seen = []

        def prog():
            rid, *_ = yield sys("ring_setup", 4)
            for name in sorted(RING_FORBIDDEN):
                blob = ringmod.encode_sqe(1, abi.SYSCALLS[name], ())
                seen.extend((yield sys("ring_enter", rid, blob, True)))

        _, process = run_program(prog)
        assert process.exit_code == 0
        assert [c[1] for c in seen] == [abi.EINVAL] * len(RING_FORBIDDEN)

    def test_blocking_op_completes_with_eagain(self):
        seen = []

        def prog():
            ring = Ring(sq_depth=4)
            yield from ring.setup()
            ring.prepare("sleep", (100,))
            seen.extend((yield from ring.submit()))

        run_program(prog)
        assert [c[1] for c in seen] == [abi.EAGAIN]

    def test_unknown_syscall_completes_with_enosys(self):
        seen = []

        def prog():
            rid, *_ = yield sys("ring_setup", 4)
            blob = ringmod.encode_sqe(1, 9999, ())
            seen.extend((yield sys("ring_enter", rid, blob, True)))

        run_program(prog)
        assert [c[1] for c in seen] == [abi.ENOSYS]

    def test_per_entry_error_does_not_poison_batch(self):
        seen = []

        def prog():
            ring = Ring(sq_depth=8)
            yield from ring.setup()
            fd = yield sys("open", "/f.txt", O_CREAT | O_RDWR)
            ring.prepare("write", (fd, b"first"))
            ring.prepare("open", ("/missing", 0))   # ENOENT
            ring.prepare("write", (fd, b"second"))
            seen.extend((yield from ring.submit()))

        kernel, _ = run_program(prog)
        assert [c[1] for c in seen] == [0, abi.ENOENT, 0]
        inum = kernel.fs.lookup("/f.txt")
        assert kernel.fs.read_at(inum, 0, 11) == b"firstsecond"

    def test_oversized_result_completes_with_e2big(self):
        """A read whose payload exceeds the CQE slot is refused with
        E2BIG — the zero-copy read_into path through the same ring is
        the supported way to move bulk data."""
        seen = []

        def prog():
            ring = Ring(sq_depth=4)
            yield from ring.setup()
            fd = yield sys("open", "/big.txt", O_CREAT | O_RDWR)
            yield sys("write", fd, b"z" * 300)
            yield sys("seek", fd, 0)
            buf = yield sys("vm_map", 1)
            ring.prepare("read", (fd, 300))           # result too big
            # E2BIG drops the payload but the op still ran (the offset
            # moved) — rewind before the zero-copy retry
            ring.prepare("seek", (fd, 0))
            ring.prepare("read_into", (fd, buf, 300))  # zero-copy works
            seen.extend((yield from ring.submit()))
            assert (yield sys("peek", buf)) == int.from_bytes(b"z" * 8,
                                                              "little")

        _, process = run_program(prog)
        assert process.exit_code == 0
        assert [c[1] for c in seen] == [abi.E2BIG, 0, 0]
        assert seen[2][2] == 300  # read_into returns the bytes moved

    def test_sq_overflow_is_typed_eagain(self):
        seen = []

        def prog():
            rid, *_ = yield sys("ring_setup", 2)
            blob = b"".join(
                ringmod.encode_sqe(i + 1, abi.SYSCALLS["getpid"], ())
                for i in range(3))
            try:
                yield sys("ring_enter", rid, blob, True)
            except SyscallError as exc:
                seen.append(exc.errno)

        run_program(prog)
        assert seen == [abi.EAGAIN]

    def test_noreap_then_reap(self):
        seen = []

        def prog():
            ring = Ring(sq_depth=8)
            yield from ring.setup()
            ring.prepare("getpid")
            ring.prepare("getpid")
            submitted, completed = yield from ring.submit_noreap()
            seen.append((submitted, completed))
            seen.append((yield from ring.reap(1)))
            seen.append((yield from ring.reap()))

        _, process = run_program(prog)
        assert seen[0] == (2, 2)
        assert len(seen[1]) == 1 and seen[1][0][1] == 0
        assert len(seen[2]) == 1
        assert seen[1][0][2] == seen[2][0][2] == process.pid
        ring = next(iter(process.rings.values()))
        assert ring.audit() == []
        assert ring.cq_ready == 0

    def test_torn_sqe_via_fault_plan(self):
        seen = []

        def prog():
            ring = Ring(sq_depth=8)
            yield from ring.setup()
            for _ in range(4):
                ring.prepare("getpid")
            seen.extend((yield from ring.submit()))

        kernel = Kernel(num_cores=2)
        kernel.fault_plan = FaultPlan(3, rules=[
            FaultRule(site="ring.sqe", kind="torn", at=2),
        ])
        run_program(prog, kernel=kernel)
        assert [c[1] for c in seen] == [0, abi.EBADMSG, 0, 0]

    def test_ring_unwrap_raises_typed_error(self):
        seen = []

        def prog():
            ring = Ring(sq_depth=4)
            yield from ring.setup()
            ring.prepare("open", ("/nope", 0))
            done = yield from ring.submit()
            try:
                Ring.unwrap(done)
            except SyscallError as exc:
                seen.append(exc.errno)

        run_program(prog)
        assert seen == [abi.ENOENT]

    def test_ulib_prepare_rejects_forbidden_and_unknown(self):
        ring = Ring()
        with pytest.raises(RingError):
            ring.prepare("exit")
        with pytest.raises(RingError):
            ring.prepare("no_such_call")


class TestBatchedMemoryOps:
    def test_map_batch_unmap_batch_roundtrip(self):
        seen = []

        def prog():
            base = yield sys("vm_map_batch", 4)
            for i in range(4):
                yield sys("poke", base + i * 4096, i + 1)
            for i in range(4):
                seen.append((yield sys("peek", base + i * 4096)))
            seen.append((yield sys("vm_unmap_batch",
                                   tuple(base + i * 4096 for i in range(4)))))

        _, process = run_program(prog)
        assert process.exit_code == 0
        assert seen == [1, 2, 3, 4, 4]

    def test_unmap_batch_is_one_shootdown_round(self):
        """The acceptance criterion: N pages, exactly one TLB shootdown
        round — against npages rounds on the single-call path."""
        rounds = {}

        def prog(npages, batched):
            def run():
                base = yield sys("vm_map_batch", npages)
                vspace = kernel.processes[1].vspace
                before = vspace.shootdowns
                if batched:
                    yield sys("vm_unmap_batch",
                              tuple(base + i * 4096 for i in range(npages)))
                else:
                    for i in range(npages):
                        yield sys("vm_unmap", base + i * 4096)
                rounds[batched] = vspace.shootdowns - before
            return run

        for batched in (True, False):
            kernel = Kernel(num_cores=2)
            run_program(prog(8, batched), kernel=kernel)
        assert rounds[True] == 1
        assert rounds[False] == 8

    def test_unmap_batch_missing_page_is_all_or_nothing(self):
        seen = []

        def prog():
            base = yield sys("vm_map_batch", 2)
            try:
                yield sys("vm_unmap_batch", (base, base + 0x9999_0000))
            except SyscallError as exc:
                seen.append(exc.errno)
            # nothing was unmapped: both pages still usable
            yield sys("poke", base, 7)
            yield sys("poke", base + 4096, 8)
            seen.append((yield sys("peek", base)))

        _, process = run_program(prog)
        assert process.exit_code == 0
        assert seen == [abi.ENOENT, 7]

    def test_unmap_batch_rejects_duplicates_and_empty(self):
        seen = []

        def prog():
            base = yield sys("vm_map_batch", 1)
            for bad in ((), (base, base)):
                try:
                    yield sys("vm_unmap_batch", bad)
                except SyscallError as exc:
                    seen.append(exc.errno)

        run_program(prog)
        assert seen == [abi.EINVAL, abi.EINVAL]

    def test_unmap_batch_range_form_matches_tuple_form(self):
        """``vm_unmap_batch(base, count)`` — the munmap-style range form
        a fixed-size SQE forces for large batches — is exactly the tuple
        form over ``base + i*4096``."""
        rounds = []

        def prog():
            vspace = kernel.processes[1].vspace
            for use_range in (True, False):
                base = yield sys("vm_map_batch", 6)
                before = vspace.shootdowns
                if use_range:
                    yield sys("vm_unmap_batch", base, 6)
                else:
                    yield sys("vm_unmap_batch",
                              tuple(base + i * 4096 for i in range(6)))
                rounds.append(vspace.shootdowns - before)
                # the range really unmapped: the page faults now
                try:
                    yield sys("peek", base)
                except SyscallError as exc:
                    rounds.append(exc.errno)

        kernel = Kernel(num_cores=2)
        _, process = run_program(prog, kernel=kernel)
        assert process.exit_code == 0
        assert rounds == [1, abi.EFAULT, 1, abi.EFAULT]

    def test_unmap_batch_range_form_rejects_bad_counts(self):
        seen = []

        def prog():
            base = yield sys("vm_map_batch", 1)
            for bad_count in (0, -3):
                try:
                    yield sys("vm_unmap_batch", base, bad_count)
                except SyscallError as exc:
                    seen.append(exc.errno)
            yield sys("vm_unmap_batch", base, 1)

        _, process = run_program(prog)
        assert process.exit_code == 0
        assert seen == [abi.EINVAL, abi.EINVAL]

    def test_map_batch_frames_are_zeroed_and_freed(self):
        checkpoints = []

        def prog():
            # two identical cycles: if unmap_batch leaked its data
            # frames, the second cycle would drain the allocator further
            for _ in range(2):
                base = yield sys("vm_map_batch", 3)
                for i in range(3):
                    assert (yield sys("peek", base + i * 4096)) == 0
                yield sys("vm_unmap_batch",
                          tuple(base + i * 4096 for i in range(3)))
                checkpoints.append(kernel.frames.stats.free_frames)

        kernel = Kernel(num_cores=2)
        _, process = run_program(prog, kernel=kernel)
        assert process.exit_code == 0
        assert checkpoints[0] == checkpoints[1]


class TestRingObs:
    def test_batch_sizes_and_vspace_metrics_recorded(self):
        batch_hist = obs.histogram("ring.batch_sqes")
        vspace_hist = obs.histogram("vspace.batch_pages")
        rounds = obs.counter("vspace.shootdown_rounds")
        hist_before = batch_hist.count
        vspace_before = vspace_hist.count
        rounds_before = rounds.value

        def prog():
            ring = Ring(sq_depth=8)
            yield from ring.setup()
            for _ in range(5):
                ring.prepare("getpid")
            yield from ring.submit()
            base = yield sys("vm_map_batch", 6)
            yield sys("vm_unmap_batch",
                      tuple(base + i * 4096 for i in range(6)))

        run_program(prog)
        assert batch_hist.samples[hist_before:].count(5) >= 1
        assert 6 in vspace_hist.samples[vspace_before:]
        assert rounds.value > rounds_before
