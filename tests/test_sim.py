"""Discrete-event simulator tests: kernel, locks, cache lines, stats."""

import pytest

from repro.sim.kernel import (
    Acquire,
    Delay,
    Event,
    Fire,
    Release,
    SimulationError,
    Simulator,
    Wait,
)
from repro.sim.resources import CacheLine, SimLock
from repro.sim.stats import LatencyRecorder
from repro.sim.topology import CostModel, Topology


class TestSimulatorCore:
    def test_delay_advances_time(self):
        sim = Simulator()
        trace = []

        def proc():
            yield Delay(100)
            trace.append(sim.now)
            yield Delay(50)
            trace.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert trace == [100, 150]
        assert sim.completed == 1

    def test_deterministic_interleaving(self):
        sim = Simulator()
        trace = []

        def proc(tag, delay):
            yield Delay(delay)
            trace.append((sim.now, tag))

        sim.spawn(proc("a", 30))
        sim.spawn(proc("b", 10))
        sim.spawn(proc("c", 30))  # same time as a: spawn order breaks tie
        sim.run()
        assert trace == [(10, "b"), (30, "a"), (30, "c")]

    def test_run_until(self):
        sim = Simulator()
        trace = []

        def proc():
            for _ in range(10):
                yield Delay(100)
                trace.append(sim.now)

        sim.spawn(proc())
        sim.run(until=350)
        assert trace == [100, 200, 300]

    def test_negative_delay_rejected(self):
        sim = Simulator()

        def proc():
            yield Delay(-1)

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_unknown_command_rejected(self):
        sim = Simulator()

        def proc():
            yield "bogus"

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_events(self):
        sim = Simulator()
        trace = []
        event = Event("go")

        def waiter(tag):
            value = yield Wait(event)
            trace.append((tag, value, sim.now))

        def firer():
            yield Delay(500)
            yield Fire(event, "payload")

        sim.spawn(waiter("w1"))
        sim.spawn(waiter("w2"))
        sim.spawn(firer())
        sim.run()
        assert sorted(trace) == [("w1", "payload", 500),
                                 ("w2", "payload", 500)]


class TestSimLock:
    def test_mutual_exclusion_fifo(self):
        sim = Simulator()
        lock = SimLock("l")
        trace = []

        def proc(tag, work):
            yield Acquire(lock)
            start = sim.now
            yield Delay(work)
            trace.append((tag, start, sim.now))
            yield Release(lock)

        sim.spawn(proc("a", 100))
        sim.spawn(proc("b", 100))
        sim.spawn(proc("c", 100))
        sim.run()
        # critical sections serialize, FIFO order
        assert trace == [("a", 0, 100), ("b", 100, 200), ("c", 200, 300)]
        assert lock.acquisitions == 3
        assert lock.contended_acquisitions == 2

    def test_release_by_nonholder_rejected(self):
        sim = Simulator()
        lock = SimLock()

        def bad():
            yield Release(lock)

        sim.spawn(bad())
        with pytest.raises(SimulationError):
            sim.run()


class TestTopology:
    def test_nodes(self):
        topo = Topology(28, cores_per_node=14)
        assert topo.num_nodes == 2
        assert topo.node_of(0) == 0
        assert topo.node_of(14) == 1
        assert topo.cores_on_node(1) == list(range(14, 28))

    def test_transfer_costs_ordered(self):
        topo = Topology(28, cores_per_node=14)
        local_hit = topo.transfer_cost(3, 3)
        same_node = topo.transfer_cost(0, 3)
        cross_node = topo.transfer_cost(0, 20)
        assert local_hit < same_node < cross_node

    def test_dram_costs(self):
        topo = Topology(28)
        assert topo.dram_cost(0, 0) < topo.dram_cost(0, 1)

    def test_bad_core(self):
        topo = Topology(4)
        with pytest.raises(ValueError):
            topo.node_of(4)


class TestCacheLine:
    def test_repeat_access_is_cheap(self):
        topo = Topology(28)
        line = CacheLine(topo)
        first = line.write(0)
        second = line.write(0)
        assert second < first
        assert second == topo.costs.l1_hit

    def test_bouncing_costs_transfer(self):
        topo = Topology(28)
        line = CacheLine(topo)
        line.write(0)
        cost_same_node = line.write(1)
        line.write(0)
        cost_cross_node = line.write(20)
        assert cost_cross_node > cost_same_node
        assert line.transfers >= 3

    def test_read_sharing(self):
        topo = Topology(28)
        line = CacheLine(topo)
        line.write(0)
        assert line.read(5) > topo.costs.l1_hit   # transfer in
        assert line.read(5) == topo.costs.l1_hit  # now shared
        # writer must invalidate sharers: pays again
        assert line.write(0) > topo.costs.l1_hit

    def test_atomic_rmw_overhead(self):
        topo = Topology(4, cores_per_node=4)
        line = CacheLine(topo)
        plain = CacheLine(topo)
        assert line.atomic_rmw(0) == plain.write(0) + topo.costs.atomic_op


class TestLatencyRecorder:
    def test_stats(self):
        rec = LatencyRecorder()
        for v in (1000, 2000, 3000, 4000, 100000):
            rec.record(v)
        assert len(rec) == 5
        assert rec.mean_us == pytest.approx(22.0)
        assert rec.p50_us == 3.0
        assert rec.max_us == 100.0
        assert rec.percentile_ns(0) == 1000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-5)

    def test_percentile_range(self):
        rec = LatencyRecorder()
        rec.record(10)
        with pytest.raises(ValueError):
            rec.percentile_ns(101)

    def test_merge(self):
        a = LatencyRecorder()
        b = LatencyRecorder()
        a.record(1)
        b.record(3)
        a.merge(b)
        assert len(a) == 2


class TestTimedNr:
    def test_latency_grows_with_cores(self):
        from repro.nr.datastructures import VSpaceModel
        from repro.nr.timed import TimedNrConfig, run_timed_workload

        def workload(core, i):
            return (("map", (core << 24) | (i << 12), i), False)

        means = []
        for cores in (1, 8, 16):
            cfg = TimedNrConfig(num_cores=cores, ops_per_core=12)
            result = run_timed_workload(VSpaceModel, workload, cfg)
            assert len(result.latency) == cores * 12
            means.append(result.latency.mean_us)
        assert means[0] < means[1] < means[2]

    def test_batching_under_contention(self):
        from repro.nr.datastructures import Counter
        from repro.nr.timed import TimedNrConfig, run_timed_workload

        cfg = TimedNrConfig(num_cores=8, ops_per_core=8)
        result = run_timed_workload(
            Counter, lambda c, i: (("add", 1), False), cfg
        )
        assert result.max_batch > 1  # flat combining engaged

    def test_shootdown_cost_raises_unmap_latency(self):
        from repro.nr.datastructures import VSpaceModel
        from repro.nr.timed import (
            TimedNrConfig,
            run_timed_workload,
            tlb_shootdown_cost,
        )

        def map_workload(core, i):
            return (("map", (core << 24) | (i << 12), i), False)

        cores = 8
        plain = run_timed_workload(
            VSpaceModel, map_workload,
            TimedNrConfig(num_cores=cores, ops_per_core=10),
        )
        with_shootdown = run_timed_workload(
            VSpaceModel, map_workload,
            TimedNrConfig(num_cores=cores, ops_per_core=10,
                          post_op_cost_fn=tlb_shootdown_cost),
        )
        assert with_shootdown.latency.mean_us > plain.latency.mean_us

    def test_reads_cheaper_than_writes(self):
        from repro.nr.datastructures import Counter
        from repro.nr.timed import TimedNrConfig, run_timed_workload

        writes = run_timed_workload(
            Counter, lambda c, i: (("add", 1), False),
            TimedNrConfig(num_cores=8, ops_per_core=10),
        )
        reads = run_timed_workload(
            Counter, lambda c, i: ("get", True),
            TimedNrConfig(num_cores=8, ops_per_core=10),
        )
        assert reads.latency.mean_us < writes.latency.mean_us
