"""Crash-restart: a killed node rejoins from its WAL without breaking
the service contract — plus the degraded/recovering refusal paths and
the seeded jitter that keeps all of it deterministic."""

import pytest

from repro.cluster import messages as msg
from repro.cluster.deploy import Deployment
from repro.cluster.harness import recovery_bench, run_cluster
from repro.cluster.node import HB_EVERY, HB_TIMEOUT
from repro.cluster.workload import WorkloadProfile
from repro.faults.cluster import run_wal_crash_matrix
from repro.obs.registry import Registry


def _profile(ops=400, seed=1):
    return WorkloadProfile(ops=ops, seed=seed)


def _capture_responses(node):
    captured = []
    node._respond = lambda client, message: captured.append(message)
    return captured


# -- kill + restart end to end ---------------------------------------------


def test_kill_and_restart_preserves_every_acked_write():
    deployment, report = run_cluster(
        num_nodes=3, rf=2, profile=_profile(),
        kill_at_op=100, kill_node="node1", restart_at_op=200)
    assert report.ok, report.summary_lines()
    assert report.kills == 1 and report.restarts == 1
    assert report.lost_acked_writes == []
    assert report.ryw_violations == []
    # the restarted node came back through fsck + WAL replay and serves
    [rec] = report.recovery
    assert rec["node"] == "node1"
    assert rec["fsck_issues"] == 0
    assert rec["replayed_records"] > 0
    assert rec["serving"] and rec["recovery_ticks"] is not None
    assert deployment.nodes["node1"].state == "serving"
    assert sorted(deployment.serving_nodes) == ["node0", "node1", "node2"]


def test_crash_restart_is_deterministic_under_its_seed():
    def one_run():
        _, report = run_cluster(
            num_nodes=3, rf=2, profile=_profile(),
            kill_at_op=100, kill_node="node1", restart_at_op=200)
        return report

    first, second = one_run(), one_run()
    assert first.summary_lines() == second.summary_lines()
    assert first.recovery == second.recovery
    assert first.latency == second.latency


def test_recovery_bench_measures_replay_and_rf_restore():
    payload = recovery_bench(seed=1, ops=400)
    assert payload["lost_acked_writes"] == 0
    assert payload["ryw_violations"] == 0
    assert payload["undrained"] == 0
    assert payload["fsck_issues"] == 0
    assert payload["serving"]
    assert payload["replayed_records"] > 0
    assert payload["recovery_ticks"] >= 0
    # every acked write is back on all rf owners at some finite tick
    assert payload["rf_restore_ticks"] >= payload["recovery_ticks"] >= 0


# -- seeded jitter ----------------------------------------------------------


def test_heartbeat_jitter_is_seeded_not_wallclock():
    def schedules(seed):
        deployment = Deployment(3, rf=2, registry=Registry(), seed=seed)
        deployment.run_ticks(150)
        return [deployment.nodes[n]._hb_due for n in sorted(deployment.nodes)]

    assert schedules(1) == schedules(1)          # same seed: same timers
    assert schedules(1) != schedules(2)          # seed moves the jitter


# -- recovering / degraded refusal paths -----------------------------------


def test_recovering_node_refuses_reads_and_writes_mid_sync():
    deployment = Deployment(3, rf=2, registry=Registry(), seed=1)
    deployment.run_ticks(100)
    deployment.kill("node1")
    node = deployment.restart("node1")
    assert node.state == "recovering"
    captured = _capture_responses(node)
    node._handle({"kind": "get", "req": 1, "key": "k", "client": 7},
                 ("client", 1), deployment.now)
    node._handle({"kind": "put", "req": 2, "key": "k", "value": "v",
                  "client": 7}, ("client", 1), deployment.now)
    assert [r["err"] for r in captured] == [msg.ERR_RECOVERING] * 2
    assert all(r["ok"] is False for r in captured)
    # ring queries are dropped outright: a recovering node must not
    # hand the gateway its stale (single-member) view
    node._handle({"kind": "ring", "req": 3}, ("gateway", 0), deployment.now)
    assert len(captured) == 2


def test_write_to_underreplicated_group_is_typed_degraded():
    deployment = Deployment(3, rf=3, registry=Registry(), seed=1)
    deployment.run_ticks(100)
    deployment.kill("node1")
    deployment.kill("node2")
    deployment.run_ticks(HB_TIMEOUT + 2 * HB_EVERY)   # node0 notices
    node = deployment.nodes["node0"]
    assert node.ring.nodes == ["node0"]
    captured = _capture_responses(node)
    node._handle({"kind": "put", "req": 1, "key": "k", "value": "v",
                  "client": 7}, ("client", 1), deployment.now)
    [resp] = captured
    assert resp["ok"] is False and resp["err"] == msg.ERR_DEGRADED
    assert msg.ERR_DEGRADED in msg.RETRYABLE_ERRS


def test_exhausted_retries_surface_as_typed_giveups(monkeypatch):
    # 2 nodes at rf=2: killing one leaves every write under-replicated,
    # so retries burn through the (shrunken) attempt budget
    monkeypatch.setattr("repro.cluster.client.MAX_ATTEMPTS", 3)
    _, report = run_cluster(num_nodes=2, rf=2, profile=_profile(ops=200),
                            kill_at_op=50, kill_node="node1")
    assert report.gaveup > 0
    assert report.failed >= report.gaveup
    for record in report.gaveup_ops:
        assert record["attempts"] > 3
        assert record["reason"] in (msg.ERR_DEGRADED, msg.ERR_RECOVERING,
                                    "timeout")
        assert record["op"] in ("put", "get", "del")
    # but nothing acked was lost: give-up is a client-visible typed
    # failure, never a silent drop of an acknowledged write
    assert report.lost_acked_writes == []


# -- the WAL-boundary crash matrix (cluster level) -------------------------


def test_wal_crash_matrix_smoke_every_boundary_recovers():
    matrix = run_wal_crash_matrix(seed=1, ops=16, compact_every=4)
    assert matrix.crash_points > 0
    assert matrix.ok, matrix.violations
