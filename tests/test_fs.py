"""Filesystem tests: mkfs/mount, namespace, I/O, indirect blocks, remount."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.devices.disk import Disk
from repro.nros.fs.alloc import NoSpace
from repro.nros.fs.blockdev import BLOCK_SIZE, BlockDevice
from repro.nros.fs.dir import DirFormatError, decode_entries, encode_entries
from repro.nros.fs.fd import (
    BadFd,
    FdTable,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    PermissionDenied,
)
from repro.nros.fs.fs import (
    DirectoryNotEmpty,
    Exists,
    FileSystem,
    FileTooBig,
    FsError,
    NotFound,
    ROOT_INUM,
)
from repro.nros.fs.inode import Inode, MAX_FILE_SIZE, TYPE_DIR, TYPE_FILE


def fresh_fs(sectors=512):
    disk = Disk(sectors)
    dev = BlockDevice(disk)
    return FileSystem.mkfs(dev), disk


class TestDirFormat:
    def test_roundtrip(self):
        entries = {"hello": 3, "world.txt": 7, "üñïçödé": 250}
        assert decode_entries(encode_entries(entries)) == entries

    def test_empty(self):
        assert decode_entries(b"") == {}
        assert encode_entries({}) == b""

    def test_corrupt(self):
        with pytest.raises(DirFormatError):
            decode_entries(b"\x01\x02")

    @given(st.dictionaries(
        st.text(min_size=1, max_size=20).filter(
            lambda s: "/" not in s and "\x00" not in s and s not in (".", "..")
        ),
        st.integers(0, 255), max_size=10))
    @settings(max_examples=50)
    def test_roundtrip_property(self, entries):
        assert decode_entries(encode_entries(entries)) == entries


class TestInodeCodec:
    def test_roundtrip(self):
        inode = Inode(itype=TYPE_FILE, nlink=2, size=12345,
                      direct=[1, 2, 3, 4, 5, 6, 7, 8, 9, 10], indirect=99)
        decoded = Inode.decode(inode.encode())
        assert decoded == inode

    def test_encode_is_128_bytes(self):
        assert len(Inode().encode()) == 128


class TestMkfsMount:
    def test_mkfs_and_mount(self):
        fs, disk = fresh_fs()
        fs2 = FileSystem(BlockDevice(disk))
        assert fs2.readdir("/") == []

    def test_mount_unformatted_fails(self):
        with pytest.raises(FsError, match="magic"):
            FileSystem(BlockDevice(Disk(16)))

    def test_mkfs_too_small(self):
        with pytest.raises(FsError):
            FileSystem.mkfs(BlockDevice(Disk(4)), num_inodes=1024)


class TestNamespace:
    def test_create_lookup(self):
        fs, _ = fresh_fs()
        inum = fs.create("/a.txt")
        assert fs.lookup("/a.txt") == inum
        assert fs.readdir("/") == ["a.txt"]

    def test_nested_dirs(self):
        fs, _ = fresh_fs()
        fs.mkdir("/usr")
        fs.mkdir("/usr/bin")
        fs.create("/usr/bin/python")
        assert fs.readdir("/usr/bin") == ["python"]
        assert fs.stat("/usr/bin/python").size == 0
        assert fs.stat("/usr").is_dir

    def test_duplicate_create(self):
        fs, _ = fresh_fs()
        fs.create("/x")
        with pytest.raises(Exists):
            fs.create("/x")

    def test_lookup_missing(self):
        fs, _ = fresh_fs()
        with pytest.raises(NotFound):
            fs.lookup("/missing")
        with pytest.raises(NotFound):
            fs.lookup("/no/such/path")

    def test_relative_path_rejected(self):
        fs, _ = fresh_fs()
        with pytest.raises(FsError):
            fs.lookup("relative")

    def test_bad_names_rejected(self):
        fs, _ = fresh_fs()
        with pytest.raises(ValueError):
            fs.create("/..")

    def test_unlink(self):
        fs, _ = fresh_fs()
        fs.create("/f")
        fs.unlink("/f")
        assert not fs.exists("/f")
        with pytest.raises(NotFound):
            fs.unlink("/f")

    def test_unlink_nonempty_dir(self):
        fs, _ = fresh_fs()
        fs.mkdir("/d")
        fs.create("/d/f")
        with pytest.raises(DirectoryNotEmpty):
            fs.unlink("/d")
        fs.unlink("/d/f")
        fs.unlink("/d")
        assert not fs.exists("/d")

    def test_rename_same_dir(self):
        fs, _ = fresh_fs()
        fs.create("/old")
        fs.write_at(fs.lookup("/old"), 0, b"data")
        fs.rename("/old", "/new")
        assert not fs.exists("/old")
        assert fs.read_at(fs.lookup("/new"), 0, 4) == b"data"

    def test_rename_across_dirs(self):
        fs, _ = fresh_fs()
        fs.mkdir("/a")
        fs.mkdir("/b")
        fs.create("/a/f")
        fs.rename("/a/f", "/b/g")
        assert fs.readdir("/a") == []
        assert fs.readdir("/b") == ["g"]

    def test_rename_to_existing_fails(self):
        fs, _ = fresh_fs()
        fs.create("/a")
        fs.create("/b")
        with pytest.raises(Exists):
            fs.rename("/a", "/b")

    def test_unlink_frees_inode_and_blocks(self):
        fs, _ = fresh_fs()
        free_before = fs.bitmap.count_free()
        inum = fs.create("/big")
        fs.write_at(inum, 0, b"x" * (3 * BLOCK_SIZE))
        fs.unlink("/big")
        assert fs.bitmap.count_free() == free_before
        # inode slot reusable
        inum2 = fs.create("/other")
        assert inum2 == inum


class TestFileIo:
    def test_write_read(self):
        fs, _ = fresh_fs()
        inum = fs.create("/f")
        fs.write_at(inum, 0, b"hello world")
        assert fs.read_at(inum, 0, 100) == b"hello world"
        assert fs.read_at(inum, 6, 5) == b"world"

    def test_overwrite_middle(self):
        fs, _ = fresh_fs()
        inum = fs.create("/f")
        fs.write_at(inum, 0, b"0123456789")
        fs.write_at(inum, 3, b"XY")
        assert fs.read_at(inum, 0, 10) == b"012XY56789"

    def test_sparse_hole_reads_zero(self):
        fs, _ = fresh_fs()
        inum = fs.create("/f")
        fs.write_at(inum, 2 * BLOCK_SIZE, b"tail")
        assert fs.stat_inum(inum).size == 2 * BLOCK_SIZE + 4
        assert fs.read_at(inum, 0, 4) == b"\x00" * 4
        assert fs.read_at(inum, 2 * BLOCK_SIZE, 4) == b"tail"

    def test_block_boundary_write(self):
        fs, _ = fresh_fs()
        inum = fs.create("/f")
        data = bytes(range(256)) * 48  # 12 KiB: spans 3 blocks
        fs.write_at(inum, 100, data)
        assert fs.read_at(inum, 100, len(data)) == data

    def test_indirect_blocks(self):
        fs, disk = fresh_fs(sectors=300)
        inum = fs.create("/big")
        # write past the direct region (10 blocks)
        offset = 12 * BLOCK_SIZE
        fs.write_at(inum, offset, b"indirect!")
        assert fs.read_at(inum, offset, 9) == b"indirect!"

    def test_max_file_size_enforced(self):
        fs, _ = fresh_fs()
        inum = fs.create("/f")
        with pytest.raises(FileTooBig):
            fs.write_at(inum, MAX_FILE_SIZE, b"x")

    def test_truncate(self):
        fs, _ = fresh_fs()
        inum = fs.create("/f")
        fs.write_at(inum, 0, b"x" * (2 * BLOCK_SIZE + 10))
        free_mid = fs.bitmap.count_free()
        fs.truncate(inum, 5)
        assert fs.stat_inum(inum).size == 5
        assert fs.read_at(inum, 0, 100) == b"x" * 5
        assert fs.bitmap.count_free() > free_mid

    def test_volume_full(self):
        fs, _ = fresh_fs(sectors=24)
        inum = fs.create("/f")
        with pytest.raises(NoSpace):
            fs.write_at(inum, 0, b"x" * (200 * BLOCK_SIZE))


class TestRemount:
    def test_data_survives_remount(self):
        fs, disk = fresh_fs()
        fs.mkdir("/var")
        inum = fs.create("/var/log")
        fs.write_at(inum, 0, b"persistent data")
        # power cycle
        fs2 = FileSystem(BlockDevice(disk))
        assert fs2.readdir("/var") == ["log"]
        assert fs2.read_at(fs2.lookup("/var/log"), 0, 100) == b"persistent data"

    def test_remount_after_many_ops(self):
        fs, disk = fresh_fs()
        for i in range(20):
            fs.create(f"/f{i}")
            fs.write_at(fs.lookup(f"/f{i}"), 0, bytes([i]) * 100)
        for i in range(0, 20, 2):
            fs.unlink(f"/f{i}")
        fs2 = FileSystem(BlockDevice(disk))
        assert fs2.readdir("/") == sorted(f"f{i}" for i in range(1, 20, 2))
        for i in range(1, 20, 2):
            assert fs2.read_at(fs2.lookup(f"/f{i}"), 0, 100) == bytes([i]) * 100


class TestFdTable:
    def test_open_read_write(self):
        fs, _ = fresh_fs()
        table = FdTable(fs)
        fd = table.open("/f", O_CREAT | O_RDWR)
        assert table.write(fd, b"hello") == 5
        table.seek(fd, 0)
        assert table.read(fd, 5) == b"hello"
        assert table.tell(fd) == 5
        table.close(fd)
        with pytest.raises(BadFd):
            table.read(fd, 1)

    def test_permission_bits(self):
        fs, _ = fresh_fs()
        fs.create("/f")
        table = FdTable(fs)
        ro = table.open("/f", O_RDONLY)
        with pytest.raises(PermissionDenied):
            table.write(ro, b"x")
        wo = table.open("/f", O_WRONLY)
        with pytest.raises(PermissionDenied):
            table.read(wo, 1)

    def test_append_and_trunc(self):
        fs, _ = fresh_fs()
        table = FdTable(fs)
        fd = table.open("/f", O_CREAT | O_RDWR)
        table.write(fd, b"0123456789")
        table.close(fd)
        fd = table.open("/f", O_RDWR | O_APPEND)
        assert table.tell(fd) == 10
        table.write(fd, b"ab")
        table.close(fd)
        fd = table.open("/f", O_RDWR | O_TRUNC)
        assert table.stat(fd).size == 0
        table.close(fd)

    def test_fd_reuse_lowest(self):
        fs, _ = fresh_fs()
        table = FdTable(fs)
        a = table.open("/a", O_CREAT)
        b = table.open("/b", O_CREAT)
        table.close(a)
        c = table.open("/c", O_CREAT)
        assert c == a
        assert table.open_fds() == sorted([b, c])
