"""Marshalling tests including hypothesis roundtrips (the marshalling
obligation, checked dynamically)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nros.syscall.marshal import (
    MarshalError,
    marshal,
    marshal_call,
    unmarshal,
    unmarshal_call,
)

scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**64 - 1),
    st.binary(max_size=64),
    st.text(max_size=32),
)
value_strategy = st.recursive(
    scalar, lambda inner: st.tuples(inner, inner), max_leaves=8
)


class TestRoundtrips:
    @given(value_strategy)
    def test_roundtrip(self, value):
        assert unmarshal(marshal(value)) == value

    @given(st.integers(0, 2**64 - 1))
    def test_u64(self, value):
        assert unmarshal(marshal(value)) == value

    @given(st.integers(-(2**63), -1))
    def test_negative(self, value):
        assert unmarshal(marshal(value)) == value

    def test_bool_not_confused_with_int(self):
        assert unmarshal(marshal(True)) is True
        assert unmarshal(marshal(1)) == 1
        assert unmarshal(marshal(1)) is not True or unmarshal(marshal(1)) == 1

    @given(st.integers(1, 20), st.lists(st.integers(0, 100), max_size=4))
    def test_call_roundtrip(self, number, args):
        encoded = marshal_call(number, tuple(args))
        got_number, got_args = unmarshal_call(encoded)
        assert got_number == number
        assert got_args == tuple(args)

    def test_unicode_string(self):
        assert unmarshal(marshal("héllo wörld ☃")) == "héllo wörld ☃"

    def test_empty_containers(self):
        assert unmarshal(marshal(())) == ()
        assert unmarshal(marshal(b"")) == b""
        assert unmarshal(marshal("")) == ""


class TestScaling:
    """The tuple encoder joins element encodings once (no repeated
    ``bytes + bytes`` accumulation), so encoding cost is linear in the
    payload.  The ring leans on this: a 64-entry batch marshals 64
    argument tuples per enter."""

    def test_large_flat_tuple_roundtrip(self):
        value = tuple(range(2000)) + tuple(
            bytes([i % 256]) * (i % 7) for i in range(500)
        )
        assert unmarshal(marshal(value)) == value

    def test_encoding_scales_linearly(self):
        import time

        def cost(n):
            value = tuple(b"x" * 16 for _ in range(n))
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                marshal(value)
                best = min(best, time.perf_counter() - t0)
            return best

        small, large = cost(500), cost(5000)
        # 10x the elements: quadratic accumulation would be ~100x the
        # time; allow a generous 30x for noise on a loaded machine.
        assert large < small * 30, (
            f"marshal scaled superlinearly: 500 elems {small:.6f}s, "
            f"5000 elems {large:.6f}s"
        )


class TestErrors:
    def test_oversized_int(self):
        with pytest.raises(MarshalError):
            marshal(1 << 64)
        with pytest.raises(MarshalError):
            marshal(-(1 << 63) - 1)

    def test_unsupported_type(self):
        with pytest.raises(MarshalError):
            marshal([1, 2, 3])
        with pytest.raises(MarshalError):
            marshal(3.14)

    def test_empty_buffer(self):
        with pytest.raises(MarshalError):
            unmarshal(b"")

    def test_unknown_tag(self):
        with pytest.raises(MarshalError):
            unmarshal(b"\xff")

    def test_truncations_all_detected(self):
        encoded = marshal((1, b"abc", "def", (2, None)))
        for cut in range(len(encoded)):
            with pytest.raises(MarshalError):
                unmarshal(encoded[:cut])

    def test_trailing_bytes(self):
        with pytest.raises(MarshalError):
            unmarshal(marshal(5) + b"\x00")

    def test_bad_bool_payload(self):
        with pytest.raises(MarshalError):
            unmarshal(bytes([0x02, 7]))

    def test_bad_utf8(self):
        buf = bytes([0x04]) + (2).to_bytes(8, "little") + b"\xff\xfe"
        with pytest.raises(MarshalError):
            unmarshal(buf)

    def test_call_must_be_tuple(self):
        with pytest.raises(MarshalError):
            unmarshal_call(marshal(5))
        with pytest.raises(MarshalError):
            unmarshal_call(marshal(()))
        with pytest.raises(MarshalError):
            unmarshal_call(marshal(("not-a-number", 1)))
