"""Tests for the hardware walker and TLB, including staleness semantics."""

import pytest

from repro.core.pt.defs import Flags, PageSize
from repro.core.pt.impl import PageTable, SimpleFrameAllocator
from repro.hw.mem import PhysicalMemory
from repro.hw.mmu import AccessType, Mmu, TranslationFault
from repro.hw.tlb import Tlb

MB = 1024 * 1024


def setup():
    mem = PhysicalMemory(8 * MB)
    alloc = SimpleFrameAllocator(mem)
    pt = PageTable(mem, alloc)
    mmu = Mmu(mem)
    return mem, pt, mmu


class TestWalk:
    def test_walk_agrees_with_impl(self):
        _, pt, mmu = setup()
        pt.map_frame(0x40_0000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        t = mmu.walk(pt.root_paddr, 0x40_0123 & ~7)
        assert t.paddr == 0x10_0000 + (0x123 & ~7)
        assert t.page_size is PageSize.SIZE_4K
        assert t.flags.user and t.flags.writable

    def test_walk_huge_page(self):
        _, pt, mmu = setup()
        pt.map_frame(0x20_0000, 0x40_0000, PageSize.SIZE_2M, Flags.kernel_rw())
        t = mmu.walk(pt.root_paddr, 0x20_0000 + 0x1_2340)
        assert t.paddr == 0x40_0000 + 0x1_2340
        assert t.page_size is PageSize.SIZE_2M
        assert t.frame_paddr == 0x40_0000

    def test_walk_unmapped_faults(self):
        _, pt, mmu = setup()
        with pytest.raises(TranslationFault, match="not present"):
            mmu.walk(pt.root_paddr, 0x9999_9000)

    def test_walk_non_canonical(self):
        _, pt, mmu = setup()
        with pytest.raises(TranslationFault, match="canonical"):
            mmu.walk(pt.root_paddr, 1 << 50)

    def test_walk_counts(self):
        _, pt, mmu = setup()
        pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags())
        before = mmu.walks
        mmu.walk(pt.root_paddr, 0x1000)
        assert mmu.walks == before + 1


class TestPermissions:
    def test_write_to_readonly_faults(self):
        _, pt, mmu = setup()
        pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K,
                     Flags(writable=False, user=True))
        with pytest.raises(TranslationFault, match="read-only"):
            mmu.translate(pt.root_paddr, 0x1000, AccessType.WRITE)

    def test_user_access_to_kernel_page(self):
        _, pt, mmu = setup()
        pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.kernel_rw())
        with pytest.raises(TranslationFault, match="supervisor"):
            mmu.translate(pt.root_paddr, 0x1000, AccessType.READ,
                          user_mode=True)
        # kernel-mode access is fine
        mmu.translate(pt.root_paddr, 0x1000, AccessType.READ)

    def test_nx_faults_on_execute(self):
        _, pt, mmu = setup()
        pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K,
                     Flags(writable=True, user=True, executable=False))
        with pytest.raises(TranslationFault, match="NX"):
            mmu.translate(pt.root_paddr, 0x1000, AccessType.EXECUTE,
                          user_mode=True)

    def test_load_store_through_mmu(self):
        mem, pt, mmu = setup()
        pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        mmu.store_u64(pt.root_paddr, 0x1008, 0xFEED, user_mode=True)
        assert mmu.load_u64(pt.root_paddr, 0x1008, user_mode=True) == 0xFEED
        assert mem.load_u64(0x10_0008) == 0xFEED


class TestTlb:
    def test_hit_after_insert(self):
        _, pt, mmu = setup()
        pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        tlb = Tlb()
        assert tlb.lookup(0x1000) is None
        t = mmu.walk(pt.root_paddr, 0x1000)
        tlb.insert(t)
        hit = tlb.lookup(0x1FF8)  # same page
        assert hit is not None and hit.paddr == t.paddr
        assert tlb.hits == 1 and tlb.misses == 1

    def test_huge_page_hit(self):
        _, pt, mmu = setup()
        pt.map_frame(0x20_0000, 0x40_0000, PageSize.SIZE_2M, Flags())
        tlb = Tlb()
        tlb.insert(mmu.walk(pt.root_paddr, 0x20_0000))
        assert tlb.lookup(0x20_0000 + 0x10_0000) is not None

    def test_staleness_observable_without_invalidation(self):
        """The property that forces TLB shootdown: after unmap, a TLB that
        was not invalidated still returns the dead translation."""
        _, pt, mmu = setup()
        pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        tlb = Tlb()
        tlb.insert(mmu.walk(pt.root_paddr, 0x1000))
        pt.unmap(0x1000)
        stale = tlb.lookup(0x1000)
        assert stale is not None  # stale!
        with pytest.raises(TranslationFault):
            mmu.walk(pt.root_paddr, 0x1000)

    def test_invalidate_page(self):
        _, pt, mmu = setup()
        pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags())
        tlb = Tlb()
        tlb.insert(mmu.walk(pt.root_paddr, 0x1000))
        tlb.invalidate_page(0x1000)
        assert tlb.lookup(0x1000) is None

    def test_flush(self):
        _, pt, mmu = setup()
        tlb = Tlb()
        for i in range(4):
            pt.map_frame(0x1000 * (i + 1), 0x10_0000 + 0x1000 * i,
                         PageSize.SIZE_4K, Flags())
            tlb.insert(mmu.walk(pt.root_paddr, 0x1000 * (i + 1)))
        assert len(tlb) == 4
        tlb.flush()
        assert len(tlb) == 0

    def test_lru_eviction(self):
        _, pt, mmu = setup()
        tlb = Tlb(capacity=2)
        for i in range(3):
            pt.map_frame(0x1000 * (i + 1), 0x10_0000 + 0x1000 * i,
                         PageSize.SIZE_4K, Flags())
            tlb.insert(mmu.walk(pt.root_paddr, 0x1000 * (i + 1)))
        assert len(tlb) == 2
        assert tlb.lookup(0x1000) is None  # oldest evicted

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tlb(capacity=0)
