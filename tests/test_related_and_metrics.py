"""Tests for the related-work tables and the proof-to-code metric."""

import pathlib

import pytest

from repro.metrics.loc import LocReport, classify, count_sloc, measure, page_table_subset
from repro.related.projects import (
    PROJECTS,
    REPORTED_RATIOS,
    TABLE1_ROWS,
    TABLE2_ROWS,
    THIS_WORK,
)
from repro.related.tables import project_by_name, table1, table2


class TestTables:
    def test_paper_table1_facts(self):
        """Spot-check the transcription against the paper's Table 1."""
        sel4 = project_by_name("seL4")
        assert sel4.properties["Kernel memory safety"] == "yes"
        assert sel4.properties["Multi-processor support"] == "no"
        certikos = project_by_name("CertiKOS")
        assert certikos.properties["Multi-processor support"] == "yes"
        assert certikos.properties["Security properties"] == "partial"
        # no prior project has a process-centric spec — the paper's point
        assert all(p.properties["Process-centric spec"] == "no"
                   for p in PROJECTS)

    def test_paper_table2_facts(self):
        verve = project_by_name("Verve")
        assert verve.components["Complex drivers"] == "yes"
        assert verve.components["Process management"] == "no"
        hyper = project_by_name("Hyperkernel")
        assert hyper.components["Filesystem"] == "partial"
        # nobody verified a network stack or system libraries
        for project in PROJECTS:
            assert project.components["Network stack"] == "no"
            assert project.components["System libraries"] == "no"

    def test_render_shapes(self):
        t1 = table1()
        assert len(t1) == 2 + len(TABLE1_ROWS)
        assert "seL4" in t1[0] and "this repro" in t1[0]
        t2 = table2(include_this_work=False)
        assert len(t2) == 2 + len(TABLE2_ROWS)
        assert "this repro" not in t2[0]

    def test_unknown_project(self):
        with pytest.raises(KeyError):
            project_by_name("Plan9")

    def test_reported_ratios(self):
        assert REPORTED_RATIOS["seL4"] == 19.0
        assert REPORTED_RATIOS["page table prototype (paper)"] == 10.0

    def test_this_work_column_consistent_with_repo(self):
        # every component claimed "yes" must correspond to a real module
        import importlib

        module_for = {
            "Scheduler": "repro.nros.sched.scheduler",
            "Memory management": "repro.nros.pmem",
            "Filesystem": "repro.nros.fs.fs",
            "Complex drivers": "repro.nros.drivers.block",
            "Process management": "repro.nros.proc.process",
            "Threads and synchronization": "repro.ulib.sync",
            "Network stack": "repro.nros.net.stack",
            "System libraries": "repro.ulib.alloc",
        }
        for component, value in THIS_WORK.components.items():
            assert value == "yes"
            importlib.import_module(module_for[component])


class TestLocMetric:
    def test_count_sloc(self, tmp_path):
        source = tmp_path / "sample.py"
        source.write_text(
            '"""Module\ndocstring."""\n\n# comment\nx = 1\n\ny = 2  # ok\n'
        )
        # docstring lines count as source (they are spec text in our
        # convention), comments and blanks do not
        assert count_sloc(source) == 4

    def test_classify(self):
        assert classify("src/repro/core/refine/lemmas.py") == "proof"
        assert classify("src/repro/core/pt/impl.py") == "code"
        assert classify("tests/test_fs.py") == "proof"
        assert classify("benchmarks/bench_x.py") == "other"
        assert classify("somewhere/else.py") == "other"

    def test_measure_repo(self):
        report = measure()
        assert report.proof_lines > 1000
        assert report.code_lines > 1000
        assert report.ratio > 0
        assert any("core/pt/impl.py" in f for f in report.by_file)

    def test_page_table_subset(self):
        report = page_table_subset()
        assert report.code_lines > 100
        assert report.proof_lines > report.code_lines  # proof-heavy
        kinds = {kind for kind, _ in report.by_file.values()}
        assert kinds == {"proof", "code"}

    def test_ratio_zero_code(self):
        assert LocReport(proof_lines=10, code_lines=0).ratio == 0.0
