"""Tests for the linearizability checker and interleaved NR executions."""

import pytest

from repro.immutable import EMPTY_MAP
from repro.nr.core import NodeReplicated
from repro.nr.datastructures import (
    Counter,
    KvStore,
    counter_model_step,
    kv_model_step,
)
from repro.nr.interleave import ThreadScript, run_interleaved
from repro.nr.linearizability import (
    History,
    Invocation,
    check_linearizable,
)


class TestChecker:
    def test_empty_history(self):
        assert check_linearizable(History(), 0, counter_model_step).ok

    def test_sequential_history(self):
        h = History()
        h.add(Invocation(0, ("add", 1), 1, invoked_at=0, responded_at=1))
        h.add(Invocation(0, ("add", 2), 3, invoked_at=2, responded_at=3))
        h.add(Invocation(0, "get", 3, invoked_at=4, responded_at=5,
                         is_read=True))
        result = check_linearizable(h, 0, counter_model_step)
        assert result.ok
        assert result.witness == [0, 1, 2]

    def test_concurrent_reorder_allowed(self):
        # two overlapping adds; results consistent only with t1 before t0
        h = History()
        h.add(Invocation(0, ("add", 1), 3, invoked_at=0, responded_at=10))
        h.add(Invocation(1, ("add", 2), 2, invoked_at=1, responded_at=9))
        result = check_linearizable(h, 0, counter_model_step)
        assert result.ok
        assert result.witness == [1, 0]

    def test_realtime_order_enforced(self):
        # t0 finished before t1 started, but results imply t1 ran first:
        # NOT linearizable
        h = History()
        h.add(Invocation(0, ("add", 1), 3, invoked_at=0, responded_at=1))
        h.add(Invocation(1, ("add", 2), 2, invoked_at=5, responded_at=6))
        result = check_linearizable(h, 0, counter_model_step)
        assert not result.ok

    def test_stale_read_rejected(self):
        h = History()
        h.add(Invocation(0, ("add", 5), 5, invoked_at=0, responded_at=1))
        h.add(Invocation(1, "get", 0, invoked_at=2, responded_at=3,
                         is_read=True))
        assert not check_linearizable(h, 0, counter_model_step).ok

    def test_kv_model(self):
        h = History()
        h.add(Invocation(0, ("put", "k", 1), None, 0, 1))
        h.add(Invocation(1, ("get", "k"), 1, 2, 3, is_read=True))
        h.add(Invocation(0, ("del", "k"), 1, 4, 5))
        h.add(Invocation(1, ("get", "k"), None, 6, 7, is_read=True))
        assert check_linearizable(h, EMPTY_MAP, kv_model_step).ok

    def test_response_before_invocation_rejected(self):
        with pytest.raises(ValueError):
            Invocation(0, "get", 0, invoked_at=5, responded_at=1)


class TestInterleavedRuns:
    def _scripts(self, threads, nodes, ops=4):
        return [
            ThreadScript(
                thread=t,
                node=t % nodes,
                ops=[(("add", t + i + 1), False) for i in range(ops)],
            )
            for t in range(threads)
        ]

    def test_many_seeds_linearizable(self):
        for seed in range(12):
            nr = NodeReplicated(Counter, num_nodes=2)
            history = run_interleaved(nr, self._scripts(4, 2), seed=seed)
            assert len(history) == 16
            result = check_linearizable(history, 0, counter_model_step)
            assert result.ok, f"seed {seed}: {result.detail}"

    def test_final_value_is_sum(self):
        nr = NodeReplicated(Counter, num_nodes=2)
        scripts = self._scripts(4, 2, ops=3)
        run_interleaved(nr, scripts, seed=3)
        nr.sync_all()
        expected = sum(op[0][1] for s in scripts for op in s.ops)
        assert all(r.ds.value == expected for r in nr.replicas)

    def test_reads_interleaved(self):
        scripts = [
            ThreadScript(0, 0, [(("add", 1), False), ("get", True),
                                (("add", 2), False)]),
            ThreadScript(1, 1, [("get", True), (("add", 10), False),
                                ("get", True)]),
        ]
        for seed in range(8):
            nr = NodeReplicated(Counter, num_nodes=2)
            history = run_interleaved(nr, scripts, seed=seed)
            assert check_linearizable(history, 0, counter_model_step).ok

    def test_broken_replication_detected(self):
        """Sanity: the checker catches a deliberately broken 'NR' where a
        read skips the log-catch-up step (reads may then miss committed
        writes that finished before they began)."""

        class BrokenNr(NodeReplicated):
            def read_steps(self, op, node, thread):
                replica = self.replicas[node]
                # BUG: no observed-tail catch-up, just read the replica
                while not replica.lock.try_acquire_read():
                    yield "rlock"
                yield "rlock"
                result = replica.ds.query(op)
                yield "read"
                replica.lock.release_read()
                return result

        violations = 0
        for seed in range(30):
            nr = BrokenNr(Counter, num_nodes=2)
            scripts = [
                ThreadScript(0, 0, [(("add", 5), False)]),
                ThreadScript(1, 1, [("get", True), ("get", True)]),
            ]
            history = run_interleaved(nr, scripts, seed=seed)
            if not check_linearizable(history, 0, counter_model_step).ok:
                violations += 1
        assert violations > 0, "stale reads never detected"
