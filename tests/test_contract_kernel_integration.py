"""The client contract against the *real* kernel syscall path.

Section 3's promise is that the specification a process verifies against
is the same one the kernel implements.  These tests run user programs on
the full kernel (marshalled syscalls, on-disk filesystem) while mirroring
every file operation into the abstract :class:`SysState`; after each
kernel `read`, the paper's `read_spec` must accept the observed transition.
"""

import pytest

from repro.core.contract.state import FileState, SysState
from repro.core.contract.syscalls import read_spec, seek_spec, write_spec
from repro.immutable import FrozenMap
from repro.nros.fs.fd import O_CREAT, O_RDWR
from repro.nros.kernel import Kernel
from repro.nros.syscall.abi import sys


class SpecMirror:
    """Tracks the abstract SysState alongside kernel fd operations.

    Kernel fds are "locked" in the contract sense for their owning
    process (our kernel has per-process descriptor tables)."""

    def __init__(self):
        self.state = SysState(files=FrozenMap({}))
        self.violations = []

    def opened(self, fd, contents=b""):
        self.state = self.state.with_file(
            fd, FileState(contents=contents, offset=0, locked=True)
        )

    def check_read(self, fd, buffer_len, data):
        pre = self.state
        f = pre.file(fd)
        post = self.state.with_file(fd, f.with_offset(f.offset + len(data)))
        if not read_spec(pre, post, fd, buffer_len, data, len(data)):
            self.violations.append(("read", fd, buffer_len, data))
        self.state = post

    def check_write(self, fd, data, written):
        pre = self.state
        f = pre.file(fd)
        gap = b"\x00" * max(0, f.offset - f.size)
        contents = (f.contents[: f.offset] + gap + data
                    + f.contents[f.offset + len(data):])
        post = pre.with_file(fd, FileState(
            contents=contents, offset=f.offset + written, locked=True))
        if not write_spec(pre, post, fd, data, written):
            self.violations.append(("write", fd, data))
        self.state = post

    def check_seek(self, fd, offset):
        pre = self.state
        post = pre.with_file(fd, pre.file(fd).with_offset(offset))
        if not seek_spec(pre, post, fd, offset):
            self.violations.append(("seek", fd, offset))
        self.state = post


class TestKernelRefinesContract:
    def test_read_spec_on_real_syscalls(self):
        mirror = SpecMirror()

        def prog():
            fd = yield sys("open", "/contract.bin", O_CREAT | O_RDWR)
            mirror.opened(fd)
            written = yield sys("write", fd, b"0123456789abcdef")
            mirror.check_write(fd, b"0123456789abcdef", written)
            yield sys("seek", fd, 4)
            mirror.check_seek(fd, 4)
            for buffer_len in (3, 5, 100, 1):
                data = yield sys("read", fd, buffer_len)
                mirror.check_read(fd, buffer_len, data)
            yield sys("close", fd)

        kernel = Kernel()
        kernel.register_program("p", prog)
        kernel.spawn("p")
        kernel.run()
        assert mirror.violations == []
        # the mirror state agrees with what the file really holds
        inum = kernel.fs.lookup("/contract.bin")
        assert kernel.fs.read_at(inum, 0, 100) == \
            mirror.state.file(0).contents

    def test_sparse_writes_match_spec(self):
        mirror = SpecMirror()

        def prog():
            fd = yield sys("open", "/sparse", O_CREAT | O_RDWR)
            mirror.opened(fd)
            yield sys("seek", fd, 10)
            mirror.check_seek(fd, 10)
            written = yield sys("write", fd, b"tail")
            mirror.check_write(fd, b"tail", written)
            yield sys("seek", fd, 0)
            mirror.check_seek(fd, 0)
            data = yield sys("read", fd, 100)
            mirror.check_read(fd, 100, data)

        kernel = Kernel()
        kernel.register_program("p", prog)
        kernel.spawn("p")
        kernel.run()
        assert mirror.violations == []
        assert mirror.state.file(0).contents == b"\x00" * 10 + b"tail"

    def test_interleaved_fds_respect_frame_condition(self):
        """Operations on one fd leave the other fd's abstract state
        untouched (the contract's frame condition) on the real kernel."""
        mirror = SpecMirror()

        def prog():
            fd_a = yield sys("open", "/a", O_CREAT | O_RDWR)
            mirror.opened(fd_a)
            fd_b = yield sys("open", "/b", O_CREAT | O_RDWR)
            mirror.opened(fd_b)
            w = yield sys("write", fd_a, b"aaaa")
            mirror.check_write(fd_a, b"aaaa", w)
            w = yield sys("write", fd_b, b"bb")
            mirror.check_write(fd_b, b"bb", w)
            yield sys("seek", fd_a, 0)
            mirror.check_seek(fd_a, 0)
            data = yield sys("read", fd_a, 4)
            mirror.check_read(fd_a, 4, data)

        kernel = Kernel()
        kernel.register_program("p", prog)
        kernel.spawn("p")
        kernel.run()
        assert mirror.violations == []
        assert mirror.state.file(1).contents == b"bb"
        assert mirror.state.file(1).offset == 2

    def test_mirror_catches_a_lying_kernel(self):
        """Vacuity guard: if the kernel returned wrong bytes, read_spec
        would reject the transition."""
        mirror = SpecMirror()
        mirror.opened(0, contents=b"real contents")
        mirror.check_read(0, 4, b"fake")
        assert mirror.violations  # spec caught the lie
