"""The cluster fault campaign: clean, deterministic, and wired in."""

from repro.faults import run_campaign
from repro.faults.campaign import CAMPAIGNS, summary_text
from repro.faults.cluster import run_cluster_campaign


def test_cluster_campaign_is_registered():
    assert "cluster" in CAMPAIGNS
    reports = run_campaign("cluster", seed=1)
    assert [r.name for r in reports] == ["cluster"]


def test_cluster_campaign_survives_seed_1():
    report = run_cluster_campaign(seed=1)
    assert report.ok, report.violations
    # every scenario must actually have injected something
    assert report.sites["cluster.node"].injected >= 1
    assert report.sites["cluster.link"].injected >= 1
    assert report.sites["cluster.repl"].injected >= 1
    # and nothing may be lost to the attack
    assert all(site.failed == 0 for site in report.sites.values())


def test_cluster_campaign_is_deterministic():
    first = summary_text(run_campaign("cluster", seed=3))
    second = summary_text(run_campaign("cluster", seed=3))
    assert first == second


def test_cluster_campaign_rides_along_in_all():
    # `--campaign all` must include the cluster target
    assert "cluster" in CAMPAIGNS
