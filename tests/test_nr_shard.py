"""Sharded NR tests: routing, per-shard linearizability, write scaling."""

import pytest

from repro.immutable import EMPTY_MAP
from repro.nr.core import NodeReplicated
from repro.nr.datastructures import Counter, KvStore, kv_model_step
from repro.nr.interleave import ThreadScript, run_interleaved
from repro.nr.linearizability import check_linearizable
from repro.nr.shard import ShardedNr
from repro.nr.timed import TimedNrConfig, run_timed_sharded, run_timed_workload


class TestRouting:
    def test_same_key_same_shard(self):
        sharded = ShardedNr(KvStore, num_shards=4)
        assert sharded.shard_for("k") == sharded.shard_for("k")

    def test_custom_shard_function(self):
        sharded = ShardedNr(KvStore, num_shards=2,
                            shard_of=lambda key: key % 2)
        sharded.execute(0, ("put", 0, "even"))
        sharded.execute(1, ("put", 1, "odd"))
        assert sharded.shards[0].replicas[0].ds.data == {0: "even"}
        assert sharded.shards[1].replicas[0].ds.data == {1: "odd"}

    def test_bad_shard_function(self):
        sharded = ShardedNr(KvStore, num_shards=2, shard_of=lambda k: 9)
        with pytest.raises(ValueError):
            sharded.execute("k", ("put", "k", 1))

    def test_num_shards_validated(self):
        with pytest.raises(ValueError):
            ShardedNr(KvStore, num_shards=0)


class TestSemantics:
    def test_put_get_through_shards(self):
        sharded = ShardedNr(KvStore, num_shards=3, num_nodes=2)
        for i in range(12):
            sharded.execute(f"key{i}", ("put", f"key{i}", i))
        for i in range(12):
            assert sharded.execute_ro(f"key{i}", ("get", f"key{i}"),
                                      node=1) == i

    def test_consistent_snapshot(self):
        sharded = ShardedNr(KvStore, num_shards=2,
                            shard_of=lambda k: len(k) % 2)
        sharded.execute("a", ("put", "a", 1))
        sharded.execute("bb", ("put", "bb", 2))
        parts = sharded.consistent_snapshot(lambda ds: dict(ds.data))
        merged = {}
        for part in parts:
            merged.update(part)
        assert merged == {"a": 1, "bb": 2}

    def test_gc_logs(self):
        sharded = ShardedNr(Counter, num_shards=2, num_nodes=2,
                            shard_of=lambda k: k % 2)
        for i in range(8):
            sharded.execute(i, ("add", 1))
        assert sharded.total_log_entries() == 8
        sharded.sync_all()
        assert sharded.gc_logs() == 8

    def test_per_shard_linearizability(self):
        """Interleave threads over one shard through the step protocol:
        each shard is plain NR, so the history must be linearizable."""
        sharded = ShardedNr(KvStore, num_shards=2, num_nodes=2,
                            shard_of=lambda k: 0 if k < "m" else 1)

        # drive shard 0 via its underlying NodeReplicated directly
        shard0: NodeReplicated = sharded.shards[0]
        scripts = [
            ThreadScript(0, 0, [(("put", "a", 1), False),
                                (("get", "a"), True)]),
            ThreadScript(1, 1, [(("put", "a", 2), False),
                                (("del", "a"), False)]),
        ]
        for seed in range(6):
            fresh = ShardedNr(KvStore, num_shards=2, num_nodes=2,
                              shard_of=lambda k: 0)
            history = run_interleaved(fresh.shards[0], scripts, seed=seed)
            result = check_linearizable(history, EMPTY_MAP, kv_model_step)
            assert result.ok, result.detail
        del shard0


class TestWriteScaling:
    def test_shards_scale_writes(self):
        """The Section 4.1 claim: sharding over independent logs raises
        write throughput, because writes to different shards no longer
        serialize on one log."""

        def sharded_workload(core, i):
            key = core % 8  # eight independent key groups
            return (key, ("put", key, i), False)

        def single_workload(core, i):
            return (("put", core % 8, i), False)

        cores = 16
        cfg = TimedNrConfig(num_cores=cores, ops_per_core=12)
        single = run_timed_workload(
            KvStore, single_workload, cfg
        )
        sharded = run_timed_sharded(
            KvStore, sharded_workload, cfg, num_shards=8
        )
        assert sharded.throughput_ops_per_ms > single.throughput_ops_per_ms
        assert sharded.log_appends > 0

    def test_single_shard_equals_plain_nr(self):
        def workload_sharded(core, i):
            return (0, ("add", 1), False)

        def workload_plain(core, i):
            return (("add", 1), False)

        cfg = TimedNrConfig(num_cores=4, ops_per_core=8)
        plain = run_timed_workload(Counter, workload_plain, cfg)
        one_shard = run_timed_sharded(Counter, workload_sharded, cfg,
                                      num_shards=1)
        # identical protocol, identical costs: same simulated time
        assert one_shard.sim_ns == plain.sim_ns
