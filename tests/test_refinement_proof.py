"""Tests of the assembled refinement proof.

Beyond "everything proves", the mutation tests check the proof has teeth:
seeded bugs in the implementation, the walker, and the encoder must be
caught by the corresponding verification conditions.
"""

import pytest

from repro.core.pt import defs, entry
from repro.core.pt.impl import PageTable
from repro.core.refine import proof as proofmod
from repro.core.refine.interp import IllFormedTree, interpret
from repro.core.refine.lemmas import all_lemma_vcs
from repro.core.refine.proof import build_proof, proof_structure
from repro.core.refine.scenarios import default_vocabulary, generate_scenarios
from repro.hw.mem import PhysicalMemory
from repro.verif.vc import VCStatus


class TestScenarioGeneration:
    def test_scenarios_replayable(self):
        scenarios = generate_scenarios(max_depth=2, max_scenarios=20)
        assert len(scenarios) == 20
        for scenario in scenarios:
            memory, pt = scenario.build()
            rebuilt = interpret(memory, pt.root_paddr)
            assert rebuilt.mappings == scenario.abstract.mappings

    def test_vocabulary_covers_sizes(self):
        sizes = {op.size for op in default_vocabulary()
                 if hasattr(op, "size")}
        assert sizes == set(defs.PageSize)

    def test_scenarios_diverse(self):
        scenarios = generate_scenarios(max_depth=3, max_scenarios=60)
        mapping_counts = {len(s.abstract.mappings) for s in scenarios}
        assert {0, 1, 2} <= mapping_counts


class TestVcPopulation:
    def test_exactly_220_vcs(self):
        engine = build_proof(scenario_cap=5)
        assert engine.vc_count == 220

    def test_group_sizes(self):
        engine = build_proof(scenario_cap=5)
        sizes = {g.name: len(g) for g in engine.groups}
        assert sizes["entry-lemmas"] == 34
        assert sizes["address-lemmas"] == 33
        assert sizes["marshal-lemmas"] == 13
        assert sizes["invariants"] == 60
        assert sizes["simulation"] == 24
        assert sizes["hardware-agreement"] == 12
        assert sizes["tlb"] == 9
        assert sizes["refinement"] == 2
        assert sizes["nr-linearizability"] == 10
        assert sizes["contract"] == 23

    def test_lemmas_all_prove(self):
        for vc in all_lemma_vcs():
            result = vc.discharge()
            assert result.ok, f"{vc.name}: {result.detail}"

    def test_small_structural_slice_proves(self):
        engine = build_proof(include_lemmas=False, include_nr=False,
                             include_contract=False,
                             scenario_depth=2, scenario_cap=12)
        report = engine.run()
        assert report.all_proved, [r.name for r in report.failed]

    def test_proof_structure_mentions_layers(self):
        text = "\n".join(proof_structure())
        assert "High-level specification" in text
        assert "Hardware specification" in text
        assert "refinement proofs" in text


class TestInterpretationStrictness:
    def test_cycle_detected(self):
        memory = PhysicalMemory(1 << 20)
        root = 0x0
        # PML4[0] points to itself: a cycle
        memory.store_u64(root, entry.encode_table(root))
        with pytest.raises(IllFormedTree, match="twice"):
            interpret(memory, root)

    def test_stray_bits_detected(self):
        memory = PhysicalMemory(1 << 20)
        memory.store_u64(0x8, 0xFF0)  # non-present entry with bits set
        with pytest.raises(IllFormedTree, match="stray"):
            interpret(memory, 0x0)

    def test_pt_level_table_detected(self):
        memory = PhysicalMemory(1 << 20)
        memory.store_u64(0x0, entry.encode_table(0x1000))     # PML4 -> PDPT
        memory.store_u64(0x1000, entry.encode_table(0x2000))  # PDPT -> PD
        memory.store_u64(0x2000, entry.encode_table(0x3000))  # PD -> PT
        memory.store_u64(0x3000, entry.encode_table(0x4000))  # PT -> ?!
        # a PT-level present entry always decodes as PAGE; it must then be
        # 4K-aligned, which 0x4000 is, so this interprets as a page — but
        # the no-empty-intermediate check is separate; strict interp is ok
        state = interpret(memory, 0x0, strict=True)
        assert len(state.mappings) == 1


class TestMutations:
    """Seeded bugs must be caught by the right VC group."""

    def _structural_failures(self, scenario_cap=10):
        engine = build_proof(include_lemmas=False, include_nr=False,
                             include_contract=False, scenario_depth=2,
                             scenario_cap=scenario_cap)
        report = engine.run()
        return [r for r in report.results if r.status is not VCStatus.PROVED]

    def test_skipping_gc_caught(self, monkeypatch):
        """Bug: unmap forgets to garbage-collect empty tables."""
        monkeypatch.setattr(
            PageTable, "_collect_empty_tables", lambda self, path: None
        )
        failures = self._structural_failures()
        assert any("no_empty_intermediate" in r.name for r in failures)

    def test_wrong_level_shift_caught(self, monkeypatch):
        """Bug: the implementation walks with a wrong PD shift."""
        original = defs.vaddr_index

        def broken(vaddr, level):
            if level == 2:
                return (vaddr >> 20) & 0x1FF  # off by one bit
            return original(vaddr, level)

        # patch only the implementation's view, not the independent walker
        monkeypatch.setattr(
            "repro.core.pt.impl.defs.vaddr_index", broken
        )
        failures = self._structural_failures(scenario_cap=8)
        assert failures  # interp/walk disagreement shows up somewhere

    def test_dropped_nx_bit_caught(self, monkeypatch):
        """Bug: the encoder forgets the NX bit."""
        original = entry.encode_page

        def broken(frame_paddr, flags, level):
            raw = original(frame_paddr, flags, level)
            return raw & ~(1 << defs.BIT_NX)

        monkeypatch.setattr("repro.core.pt.impl.entry.encode_page", broken)
        failures = self._structural_failures()
        assert failures
        names = " ".join(r.name for r in failures)
        assert "sim" in names or "hw" in names

    def test_missing_shootdown_caught(self):
        """The tlb group's stale-entry VC guards against a missing
        invalidation (checked positively: the stale detector works)."""
        from repro.core.refine.proof import _tlb_vc

        vc = _tlb_vc("stale_entry_detected", lambda: [])
        assert vc.discharge().ok

    def test_broken_spec_overlap_caught(self, monkeypatch):
        """Bug in the spec direction: overlap check ignores huge pages."""
        from repro.core.spec import highlevel

        def broken_overlaps(self, vaddr, size):
            return vaddr in self.mappings  # ignores ranges

        monkeypatch.setattr(highlevel.AbstractState, "overlaps",
                            broken_overlaps)
        failures = self._structural_failures()
        assert any("sim_map" in r.name for r in failures)


class TestTimingReport:
    def test_report_quantities(self):
        engine = build_proof(include_lemmas=True, include_structural=False,
                             include_nr=False, include_contract=False)
        report = engine.run()
        assert report.total == 80
        assert report.all_proved
        assert report.total_seconds > 0
        assert report.max_seconds <= report.total_seconds
        # The default downsamples to 50 points; an explicit `points` at or
        # above the population size returns every sample.
        assert len(report.cdf()) == 50
        cdf = report.cdf(points=80)
        assert len(cdf) == 80
        # CDF is monotone and ends at 1.0
        assert cdf[-1][1] == pytest.approx(1.0)
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
