"""Driver and device tests: block, console, netdev, timer, interrupts."""

import pytest

from repro.hw.devices.disk import Disk, DiskError
from repro.hw.devices.interrupts import InterruptController
from repro.hw.devices.nic import Nic
from repro.hw.devices.serial import SerialPort
from repro.hw.devices.timer import Timer
from repro.nros.drivers.block import BlockDriver, BlockRequest
from repro.nros.drivers.console import Console
from repro.nros.drivers.netdev import NetDriver
from repro.nros.fs.blockdev import BLOCK_SIZE
from repro.nros.net.ip import ip_addr
from repro.nros.net.stack import NetStack


class TestDisk:
    def test_sector_roundtrip(self):
        disk = Disk(8)
        data = bytes(range(256)) * 16
        disk.write_sector(3, data)
        assert disk.read_sector(3) == data
        assert disk.reads == 1 and disk.writes == 1

    def test_bad_sector(self):
        disk = Disk(4)
        with pytest.raises(DiskError):
            disk.read_sector(4)
        with pytest.raises(DiskError):
            disk.write_sector(0, b"short")

    def test_snapshot_restore(self):
        disk = Disk(4)
        disk.write_sector(1, b"\xaa" * Disk.SECTOR_SIZE)
        image = disk.snapshot()
        disk.write_sector(1, b"\xbb" * Disk.SECTOR_SIZE)
        disk.restore(image)
        assert disk.read_sector(1) == b"\xaa" * Disk.SECTOR_SIZE

    def test_restore_size_mismatch(self):
        disk = Disk(4)
        with pytest.raises(DiskError):
            disk.restore(b"tiny")


class TestBlockDriver:
    def test_read_write_through_driver(self):
        disk = Disk(8)
        driver = BlockDriver(disk)
        driver.write(2, b"driver payload")
        assert driver.read(2)[:14] == b"driver payload"
        assert driver.requests_completed == 2
        assert driver.num_blocks == 8

    def test_zero(self):
        disk = Disk(4)
        driver = BlockDriver(disk)
        driver.write(1, b"\xff" * BLOCK_SIZE)
        driver.zero(1)
        assert driver.read(1) == bytes(BLOCK_SIZE)

    def test_irq_raised(self):
        controller = InterruptController()
        driver = BlockDriver(Disk(4), irq_line=controller.line(5))
        driver.read(0)
        assert 5 in controller.pending()

    def test_bad_request(self):
        driver = BlockDriver(Disk(4))
        with pytest.raises(ValueError):
            driver.submit(BlockRequest("write", 0))  # no data
        with pytest.raises(ValueError):
            driver.submit(BlockRequest("fly", 0))


class TestTimerAndIrq:
    def test_tick_callbacks(self):
        timer = Timer()
        seen = []
        timer.on_tick(seen.append)
        timer.tick(3)
        assert seen == [1, 2, 3]
        with pytest.raises(ValueError):
            timer.tick(-1)

    def test_timer_irq(self):
        controller = InterruptController()
        timer = Timer()
        timer.irq_line = controller.line(0)
        timer.tick()
        assert controller.pending() == [0]
        controller.acknowledge(0)
        assert controller.pending() == []
        assert controller.delivered == 1

    def test_masking(self):
        controller = InterruptController()
        line = controller.line(3)
        controller.mask(3)
        line.raise_irq()
        assert controller.pending() == []
        controller.unmask(3)
        assert controller.pending() == [3]

    def test_bad_irq(self):
        controller = InterruptController()
        with pytest.raises(ValueError):
            controller.line(99)
        with pytest.raises(ValueError):
            controller.acknowledge(1)  # not pending


class TestSerialAndConsole:
    def test_line_assembly(self):
        serial = SerialPort()
        serial.write("two\nlines\n")
        assert serial.lines == ["two", "lines"]

    def test_flush_partial(self):
        serial = SerialPort()
        serial.write("partial")
        assert serial.lines == []
        serial.flush()
        assert serial.lines == ["partial"]

    def test_bad_byte(self):
        with pytest.raises(ValueError):
            SerialPort().write_byte(300)

    def test_console_levels(self):
        console = Console(SerialPort(), min_level="warn")
        console.debug("quiet")
        console.error("loud")
        assert console.counts["debug"] == 1
        assert console.counts["error"] == 1
        assert console.serial.lines == ["<error> loud"]
        assert console.dmesg() == ["<debug> quiet", "<error> loud"]

    def test_console_ring_bounded(self):
        console = Console(SerialPort(), ring_size=4)
        for i in range(10):
            console.info(f"m{i}")
        assert len(console.dmesg()) == 4
        assert console.dmesg()[-1] == "<info> m9"

    def test_unknown_level(self):
        console = Console(SerialPort())
        with pytest.raises(ValueError):
            console.log("fatal", "boom")
        with pytest.raises(ValueError):
            Console(SerialPort(), min_level="nope")


class TestNicAndNetDriver:
    def test_ring_bounded_drops(self):
        nic = Nic(b"\x02" + bytes(5), ring_size=2)
        assert nic.deliver(b"a")
        assert nic.deliver(b"b")
        assert not nic.deliver(b"c")
        assert nic.stats.rx_dropped_ring_full == 1

    def test_netdriver_counts(self):
        nic = Nic(b"\x02" + bytes(5))
        stack = NetStack(ip_addr("10.0.0.1"), nic)
        driver = NetDriver(nic, stack)
        sock = stack.udp_bind(99)
        stack.udp_send(100, ip_addr("10.0.0.1"), 99, b"loop")
        driver.poll()
        assert driver.datagrams_dispatched == 1
        assert list(sock.recv_queue)[0][2] == b"loop"

    def test_bad_nic_params(self):
        with pytest.raises(ValueError):
            Nic(b"short")
        with pytest.raises(ValueError):
            Nic(b"\x02" + bytes(5), ring_size=0)
