"""Not listed in layer_map.json — must trigger ``layers.unmapped``."""

ORPHAN = True
