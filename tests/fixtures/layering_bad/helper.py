"""Universal helper — itself clean, but it leaks the proof layer into
any exec module that imports it (the erasure loophole the transitive
check closes)."""

import proof_lemmas


def certified_identity(state):
    assert proof_lemmas.lemma_step_preserves_invariant(state, None)
    return state
