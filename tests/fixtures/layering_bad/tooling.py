"""Tooling module of the fixture tree: carries a bare print()
(``console.bare-print``) plus one suppressed finding so suppression
accounting is exercised."""


def report(value):
    print("value:", value)


def report_allowed(value):
    print("value:", value)  # repro: allow(console.bare-print)
