"""Tooling module of the fixture tree: carries a bare print()
(``console.bare-print``), one suppressed finding so suppression
accounting is exercised, and one stale waiver the dead-suppression
lint (``suppression.dead``) must flag."""


def report(value):
    print("value:", value)


def report_allowed(value):
    print("value:", value)  # repro: allow(console.bare-print)


def report_fixed(value):
    # The violation this comment once waived was fixed; the waiver
    # outlived it and must be reported as dead.
    return value  # repro: allow(console.bare-print)
