"""Spec layer of the fixture tree — deliberately broken.

Violations the analyzer must report:

* ``layering.spec-imports-exec`` — the spec imports the implementation
  it specifies;
* ``purity.mutation`` — a spec function mutates observable state;
* ``purity.nondeterminism`` — a spec function reads the wall clock.
"""

import time

import impl_engine

AUDIT_LOG = []


def enabled(state, op):
    AUDIT_LOG.append(op)
    return impl_engine.step(state, op) is not None


def apply(state, op):
    return (state or 0) + time.time()
