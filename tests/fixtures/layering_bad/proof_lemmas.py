"""Proof layer of the fixture tree: lemmas about the engine."""


def lemma_step_preserves_invariant(state, op):
    return True
