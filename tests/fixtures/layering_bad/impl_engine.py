"""Exec layer of the fixture tree — deliberately broken.

Violations the analyzer must report:

* ``layering.exec-imports-proof`` — the runtime imports the proof layer
  at module level, so it cannot load with the proofs erased;
* ``ghost-import`` — a deferred proof import without the explicit
  ``# repro: allow(ghost-import)`` marker.
"""

import proof_lemmas


def step(state, op):
    return (state or 0) + 1


def check(state, op):
    import proof_lemmas as lemmas

    return lemmas.lemma_step_preserves_invariant(state, op)
