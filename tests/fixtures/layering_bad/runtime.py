"""Exec layer of the fixture tree.  No direct proof import, but it
reaches proof_lemmas through helper — ``erasure.exec-reaches-proof``."""

import helper


def run(state):
    return helper.certified_identity(state)
