"""Tests for the scheduler workload harness: payload shape, the
core-scaling and fairness stories, and bit-identical determinism of
both the switch trace and the emitted benchmark numerics."""

import json

from repro.nros.sched.workload import (
    WorkloadProfile,
    run_fairness,
    run_workload,
    scaling_bench,
)

_PROFILE = WorkloadProfile(ticks=400)


# -- payload shape ------------------------------------------------------------


def test_workload_metrics_shape():
    metrics = run_workload(2, _PROFILE, seed=1)
    for key in ("cores", "ticks", "quanta", "sim_ns", "throughput_qps",
                "context_switches", "migrations", "steals",
                "preemptions", "rt_throttles"):
        assert isinstance(metrics[key], (int, float)), key
    for kind in ("interactive", "rt"):
        for field in ("count", "p50_ns", "p99_ns"):
            assert isinstance(metrics[kind][field], (int, float))
    assert metrics["cores"] == 2
    assert metrics["quanta"] > 0


def test_scaling_bench_payload_shape(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
    payload = scaling_bench(seed=1)
    assert payload["quick"] is True
    assert set(payload["series"]) == {"1", "2", "4", "8"}
    assert "max_rel_error" in payload["fairness"]


# -- the scaling and fairness stories -----------------------------------------


def test_throughput_scales_with_cores():
    one = run_workload(1, _PROFILE, seed=1)
    two = run_workload(2, _PROFILE, seed=1)
    four = run_workload(4, _PROFILE, seed=1)
    assert two["throughput_qps"] >= one["throughput_qps"]
    assert four["throughput_qps"] >= two["throughput_qps"]


def test_interactive_latency_drops_with_cores():
    one = run_workload(1, _PROFILE, seed=1)
    four = run_workload(4, _PROFILE, seed=1)
    assert four["interactive"]["p99_ns"] <= one["interactive"]["p99_ns"]


def test_fairness_tracks_nice_weights():
    fairness = run_fairness(seed=1, ticks=1_500)
    assert fairness["max_rel_error"] < 0.05


def test_migrations_happen_across_cores():
    metrics = run_workload(2, _PROFILE, seed=1)
    assert metrics["migrations"] + metrics["steals"] > 0


# -- determinism (same seed => identical trace and numerics) ------------------


def test_switch_trace_is_deterministic():
    first = run_workload(2, _PROFILE, seed=7, record_trace=True)
    second = run_workload(2, _PROFILE, seed=7, record_trace=True)
    assert first["switch_trace"] == second["switch_trace"]
    assert len(first["switch_trace"]) > 0


def test_different_seed_changes_the_trace():
    first = run_workload(2, _PROFILE, seed=7, record_trace=True)
    other = run_workload(2, _PROFILE, seed=8, record_trace=True)
    assert first["switch_trace"] != other["switch_trace"]


def test_bench_numerics_are_deterministic(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
    first = json.dumps(scaling_bench(seed=1), sort_keys=True)
    second = json.dumps(scaling_bench(seed=1), sort_keys=True)
    assert first == second
