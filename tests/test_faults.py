"""Tests for repro.faults: plan determinism, each injection site's typed
failure surface, and the campaign runner."""

import pytest

from repro.faults import run_campaign
from repro.faults.campaign import summary_text
from repro.faults.plan import FaultPlan, FaultRule
from repro.hw.devices.disk import Disk, DiskCrash, DiskIOError
from repro.nros.drivers.block import BlockDriver, BlockRequest, QueueFull


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_replay_is_identical(self):
        rules = [
            FaultRule(site="disk.write", kind="io-error", probability=0.3),
            FaultRule(site="link.tx", kind="drop", probability=0.5),
        ]
        plan = FaultPlan(seed=7, rules=rules)
        sites = ["disk.write", "link.tx"] * 200
        decisions = [plan.draw(site) is not None for site in sites]
        replay = plan.replayed()
        assert [replay.draw(site) is not None for site in sites] == decisions
        assert replay.trace() == plan.trace()

    def test_streams_are_independent(self):
        """One site's traffic never perturbs another rule's dice: extra
        draws at an unrelated site leave a rule's decisions unchanged."""
        rules = [
            FaultRule(site="disk.write", kind="io-error", probability=0.3),
            FaultRule(site="link.tx", kind="drop", probability=0.5),
        ]
        quiet = FaultPlan(seed=7, rules=rules)
        noisy = FaultPlan(seed=7, rules=rules)
        quiet_decisions = []
        for i in range(100):
            quiet_decisions.append(quiet.draw("disk.write") is not None)
        noisy_decisions = []
        for i in range(100):
            noisy.draw("link.tx")   # interleaved unrelated traffic
            noisy_decisions.append(noisy.draw("disk.write") is not None)
        assert noisy_decisions == quiet_decisions

    def test_at_fires_exactly_once(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule(site="s", kind="k", at=5),
        ])
        fired = [plan.draw("s") is not None for _ in range(20)]
        assert fired == [i == 4 for i in range(20)]

    def test_every_with_after_and_cap(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule(site="s", kind="k", every=3, after=6, max_triggers=2),
        ])
        fired = [i for i in range(30) if plan.draw("s") is not None]
        assert fired == [8, 11]  # ops 9 and 12: every-3 past the first 6

    def test_glob_site_matching(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule(site="disk.*", kind="k", every=1),
        ])
        assert plan.draw("disk.read") is not None
        assert plan.draw("disk.write") is not None
        assert plan.draw("link.tx") is None

    def test_first_firing_rule_wins(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule(site="s", kind="first", every=1),
            FaultRule(site="s", kind="second", every=1),
        ])
        decision = plan.draw("s")
        assert decision.kind == "first"

    def test_decision_rand_below_is_deterministic(self):
        def values(plan):
            out = []
            for _ in range(10):
                decision = plan.draw("s")
                out.append(decision.rand_below(4096))
            return out

        rules = [FaultRule(site="s", kind="k", every=1)]
        assert values(FaultPlan(3, rules)) == values(FaultPlan(3, rules))

    def test_accounting(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule(site="a", kind="x", every=2),
            FaultRule(site="b", kind="y", every=5),
        ])
        for _ in range(10):
            plan.draw("a")
            plan.draw("b")
        assert plan.injections == 7
        assert plan.injected_by_site() == {"a": 5, "b": 2}
        assert plan.injected_by_kind() == {"x": 5, "y": 2}


# ---------------------------------------------------------------------------
# Disk + driver sites
# ---------------------------------------------------------------------------


class TestDiskFaults:
    def test_io_error_is_typed_and_transient(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule(site="disk.write", kind="io-error", at=1),
        ])
        disk = Disk(4, fault_plan=plan)
        payload = b"p" * Disk.SECTOR_SIZE
        with pytest.raises(DiskIOError):
            disk.write_sector(0, payload)
        disk.write_sector(0, payload)  # transient: the retry lands
        assert disk.read_sector(0) == payload

    def test_torn_write_lands_prefix_then_heals_on_retry(self):
        disk = Disk(4)
        old = b"o" * Disk.SECTOR_SIZE
        new = b"n" * Disk.SECTOR_SIZE
        disk.write_sector(0, old)
        plan = FaultPlan(seed=1, rules=[
            FaultRule(site="disk.write", kind="torn", at=1),
        ])
        disk.fault_plan = plan
        with pytest.raises(DiskIOError):
            disk.write_sector(0, new)
        torn = disk.read_sector(0)
        assert torn != old and torn != new  # new head, old tail
        keep = torn.count(b"n"[0])
        assert torn == new[:keep] + old[keep:]
        disk.write_sector(0, new)  # whole-sector rewrite heals
        assert disk.read_sector(0) == new

    def test_read_corruption_is_transient(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule(site="disk.read", kind="corrupt", at=1),
        ])
        disk = Disk(4)
        payload = b"q" * Disk.SECTOR_SIZE
        disk.write_sector(1, payload)
        disk.fault_plan = plan
        first = disk.read_sector(1)
        assert first != payload           # damaged on the bus...
        assert disk.read_sector(1) == payload   # ...medium intact

    def test_driver_retries_transient_errors(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule(site="disk.write", kind="io-error", at=1),
        ])
        disk = Disk(4, fault_plan=plan)
        driver = BlockDriver(disk)
        driver.write(0, b"d" * Disk.SECTOR_SIZE)  # absorbed by retry
        assert driver.io_retries == 1
        assert driver.io_failures == 0
        assert disk.read_sector(0) == b"d" * Disk.SECTOR_SIZE

    def test_driver_surfaces_persistent_errors(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule(site="disk.write", kind="io-error", every=1),
        ])
        disk = Disk(4, fault_plan=plan)
        driver = BlockDriver(disk)
        with pytest.raises(DiskIOError):
            driver.write(0, b"d" * Disk.SECTOR_SIZE)
        assert driver.io_failures == 1

    def test_queue_full_is_typed_backpressure(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule(site="block.submit", kind="stall", every=1),
        ])
        disk = Disk(64)
        driver = BlockDriver(disk, fault_plan=plan)
        payload = b"s" * Disk.SECTOR_SIZE
        for sector in range(driver.QUEUE_DEPTH):
            driver.submit(BlockRequest("write", sector, data=payload))
        with pytest.raises(QueueFull):
            driver.submit(BlockRequest("write", 40, data=payload))
        # the rejected request displaced nothing; service drains in order
        assert len(driver.pending) == driver.QUEUE_DEPTH
        driver.service()
        for sector in range(driver.QUEUE_DEPTH):
            assert disk.read_sector(sector) == payload

    def test_crash_propagates_and_queue_survives(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule(site="disk.write", kind="crash", at=1),
        ])
        disk = Disk(4, fault_plan=plan)
        driver = BlockDriver(disk)
        with pytest.raises(DiskCrash):
            driver.write(0, b"c" * Disk.SECTOR_SIZE)
        assert len(driver.pending) == 1  # post-mortem: request still queued


# ---------------------------------------------------------------------------
# Allocator sites
# ---------------------------------------------------------------------------


class TestAllocatorFaults:
    def test_pmem_injected_failure_is_typed(self):
        from repro.hw.mem import PhysicalMemory
        from repro.nros.pmem import BuddyAllocator, OutOfMemory

        plan = FaultPlan(seed=1, rules=[
            FaultRule(site="pmem.alloc", kind="alloc-fail", at=2),
        ])
        allocator = BuddyAllocator(PhysicalMemory(1 << 20), fault_plan=plan)
        first = allocator.alloc_block(0)
        with pytest.raises(OutOfMemory):
            allocator.alloc_block(0)
        third = allocator.alloc_block(0)  # allocator fully usable after
        assert allocator.injected_failures == 1
        allocator.free_block(first)
        allocator.free_block(third)
        assert allocator.check_integrity() is None

    def test_heap_injected_failure_is_typed(self):
        from repro.nros.syscall.abi import Syscall
        from repro.ulib.alloc import AllocFailed, Heap

        def drive(gen, base=[0x100000]):
            try:
                request = next(gen)
                while True:
                    value = None
                    if isinstance(request, Syscall) \
                            and request.name == "vm_map":
                        value = base[0]
                        base[0] += request.args[0] * 4096
                    request = gen.send(value)
            except StopIteration as stop:
                return stop.value

        plan = FaultPlan(seed=1, rules=[
            FaultRule(site="heap.alloc", kind="alloc-fail", at=2),
        ])
        heap = Heap(fault_plan=plan)
        first = drive(heap.alloc(64))
        with pytest.raises(AllocFailed):
            drive(heap.alloc(64))
        second = drive(heap.alloc(64))  # heap stays serviceable
        assert first != second
        assert heap.injected_failures == 1


# ---------------------------------------------------------------------------
# Campaigns
# ---------------------------------------------------------------------------


class TestCampaigns:
    def test_all_campaigns_pass_and_replay_identically(self):
        reports = run_campaign("all", seed=1)
        assert [r.name for r in reports] == ["disk", "net", "mem",
                                             "prover", "cluster", "ring"]
        for report in reports:
            assert report.ok, report.violations
            assert report.injections > 0, f"{report.name} injected nothing"
        assert summary_text(run_campaign("all", seed=1)) == \
            summary_text(reports)

    def test_seeds_change_the_campaign(self):
        one = summary_text(run_campaign("mem", seed=1))
        two = summary_text(run_campaign("mem", seed=2))
        assert one != two

    def test_unknown_campaign_rejected(self):
        with pytest.raises(ValueError):
            run_campaign("cosmic-rays")

    def test_cli_exit_codes(self):
        from repro.__main__ import main

        assert main(["faults", "--campaign", "mem", "--seed", "1"]) == 0
        assert main(["faults", "--campaign", "mem", "--seed", "3",
                     "--check-determinism"]) == 0
