"""Tests for simulated physical memory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw.mem import PAGE_SIZE, PhysAccessError, PhysicalMemory


class TestConstruction:
    def test_size_must_be_page_multiple(self):
        with pytest.raises(ValueError):
            PhysicalMemory(100)
        with pytest.raises(ValueError):
            PhysicalMemory(0)

    def test_num_frames(self):
        assert PhysicalMemory(16 * PAGE_SIZE).num_frames == 16


class TestWordAccess:
    def test_store_load_roundtrip(self):
        mem = PhysicalMemory(2 * PAGE_SIZE)
        mem.store_u64(0x100, 0xDEADBEEF_CAFEBABE)
        assert mem.load_u64(0x100) == 0xDEADBEEF_CAFEBABE

    def test_little_endian(self):
        mem = PhysicalMemory(PAGE_SIZE)
        mem.store_u64(0, 0x0102030405060708)
        assert mem.load_u8(0) == 0x08
        assert mem.load_u8(7) == 0x01

    def test_store_truncates_to_64_bits(self):
        mem = PhysicalMemory(PAGE_SIZE)
        mem.store_u64(0, 1 << 70 | 5)
        assert mem.load_u64(0) == 5

    def test_misaligned_word_rejected(self):
        mem = PhysicalMemory(PAGE_SIZE)
        with pytest.raises(PhysAccessError, match="misaligned"):
            mem.load_u64(4)
        with pytest.raises(PhysAccessError):
            mem.store_u64(1, 0)

    def test_out_of_range(self):
        mem = PhysicalMemory(PAGE_SIZE)
        with pytest.raises(PhysAccessError):
            mem.load_u64(PAGE_SIZE)
        with pytest.raises(PhysAccessError):
            mem.load_u8(PAGE_SIZE)
        with pytest.raises(PhysAccessError):
            mem.read(PAGE_SIZE - 4, 8)

    @given(st.integers(0, 63), st.integers(0, 2**64 - 1))
    def test_word_roundtrip_property(self, slot, value):
        mem = PhysicalMemory(PAGE_SIZE)
        mem.store_u64(slot * 8, value)
        assert mem.load_u64(slot * 8) == value


class TestBulk:
    def test_read_write(self):
        mem = PhysicalMemory(PAGE_SIZE)
        mem.write(10, b"hello world")
        assert mem.read(10, 11) == b"hello world"

    def test_zero_frame(self):
        mem = PhysicalMemory(2 * PAGE_SIZE)
        mem.write(PAGE_SIZE, b"\xff" * PAGE_SIZE)
        mem.zero_frame(PAGE_SIZE)
        assert mem.read(PAGE_SIZE, PAGE_SIZE) == bytes(PAGE_SIZE)

    def test_zero_frame_alignment(self):
        mem = PhysicalMemory(2 * PAGE_SIZE)
        with pytest.raises(PhysAccessError):
            mem.zero_frame(100)

    def test_frame_words(self):
        mem = PhysicalMemory(PAGE_SIZE)
        mem.store_u64(8, 42)
        words = mem.frame_words(0)
        assert len(words) == 512
        assert words[1] == 42
        assert words[0] == 0
