"""Tests for the client application contract (Section 3) and usercopy."""

import pytest

from repro.core.contract.proof import contract_vcs
from repro.core.contract.state import FileState, SysState
from repro.core.contract.syscalls import read_spec, write_spec
from repro.core.contract.view import Sys, SysError
from repro.core.pt.defs import Flags, PageSize
from repro.core.pt.impl import PageTable, SimpleFrameAllocator
from repro.hw.mem import PhysicalMemory
from repro.hw.mmu import Mmu
from repro.immutable import FrozenMap
from repro.nros.syscall.usercopy import (
    UserCopyFault,
    copy_from_user,
    copy_to_user,
)
from repro.verif.contracts import ContractError, contracts

MB = 1024 * 1024


class TestSysBasics:
    def test_open_read_write_close(self):
        sys = Sys()
        fd = sys.open()
        sys.write(fd, b"hello")
        sys.seek(fd, 0)
        assert sys.read(fd, 5) == b"hello"
        sys.close(fd)
        with pytest.raises(SysError):
            sys.read(fd, 1)

    def test_read_past_eof(self):
        sys = Sys()
        fd = sys.open()
        sys.set_contents(fd, b"abc")
        assert sys.read(fd, 10) == b"abc"
        assert sys.read(fd, 10) == b""

    def test_sparse_write(self):
        sys = Sys()
        fd = sys.open()
        sys.seek(fd, 4)
        sys.write(fd, b"xy")
        sys.seek(fd, 0)
        assert sys.read(fd, 10) == b"\x00\x00\x00\x00xy"

    def test_view_is_snapshot(self):
        sys = Sys()
        fd = sys.open()
        before = sys.view()
        sys.write(fd, b"data")
        assert before.file(fd).contents == b""
        assert sys.view().file(fd).contents == b"data"

    def test_contracts_can_be_disabled(self):
        sys = Sys()
        fd = sys.open()
        sys.set_contents(fd, b"abcdef")
        with contracts(False):
            assert sys.read(fd, 3) == b"abc"  # runs without spec checking


class TestSpecPredicates:
    def _state(self, contents=b"0123456789", offset=0, locked=True):
        return SysState(files=FrozenMap({
            3: FileState(contents=contents, offset=offset, locked=locked)
        }))

    def test_read_spec_example_from_paper(self):
        pre = self._state(offset=2)
        post = self._state(offset=6)
        assert read_spec(pre, post, 3, 4, b"2345", 4)

    def test_read_spec_rejects_unlocked(self):
        pre = self._state(locked=False)
        post = self._state(locked=False, offset=4)
        assert not read_spec(pre, post, 3, 4, b"0123", 4)

    def test_read_spec_rejects_wrong_offset(self):
        pre = self._state(offset=0)
        post = self._state(offset=5)  # should be 4
        assert not read_spec(pre, post, 3, 4, b"0123", 4)

    def test_read_spec_rejects_wrong_data(self):
        pre = self._state(offset=0)
        post = self._state(offset=4)
        assert not read_spec(pre, post, 3, 4, b"9999", 4)

    def test_read_spec_min_semantics(self):
        pre = self._state(contents=b"abc", offset=1)
        post = self._state(contents=b"abc", offset=3)
        assert read_spec(pre, post, 3, 100, b"bc", 2)
        assert not read_spec(pre, post, 3, 100, b"bc", 3)

    def test_write_spec_frame_condition(self):
        pre = SysState(files=FrozenMap({
            0: FileState(b"aa", 0, True),
            1: FileState(b"bb", 0, True),
        }))
        # fd 0 written correctly, but fd 1 also changed: must be rejected
        post = SysState(files=FrozenMap({
            0: FileState(b"XX", 2, True),
            1: FileState(b"ZZ", 0, True),
        }))
        assert not write_spec(pre, post, 0, b"XX", 2)

    def test_contract_violation_detected(self):
        """A buggy implementation is caught by the runtime spec check."""

        class BuggySys(Sys):
            def read(self, fd, buffer_len):
                # BUG: forgets to advance the offset; spec check must fire
                f = self._files[fd]
                read_len = min(buffer_len, f.size - f.offset)
                data = f.contents[f.offset : f.offset + read_len]
                from repro.core.contract.syscalls import read_spec as spec
                from repro.verif.contracts import contracts_enabled
                old = self.view() if contracts_enabled() else None
                if old is not None and not spec(
                    old, self.view(), fd, buffer_len, data, read_len
                ):
                    raise ContractError("read violates read_spec")
                return data

        sys = BuggySys()
        fd = sys.open()
        sys.set_contents(fd, b"abcdef")
        with pytest.raises(ContractError):
            sys.read(fd, 3)


class TestUserCopy:
    def _setup(self):
        memory = PhysicalMemory(8 * MB)
        allocator = SimpleFrameAllocator(memory, start=4 * MB)
        pt = PageTable(memory, allocator)
        mmu = Mmu(memory)
        pt.map_frame(0x10000, 0x20_0000, PageSize.SIZE_4K, Flags.user_rw())
        pt.map_frame(0x11000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        return memory, pt, mmu

    def test_roundtrip(self):
        memory, pt, mmu = self._setup()
        copy_to_user(memory, mmu, pt.root_paddr, 0x10010, b"abc123")
        assert copy_from_user(memory, mmu, pt.root_paddr, 0x10010, 6) == b"abc123"

    def test_crosses_noncontiguous_frames(self):
        memory, pt, mmu = self._setup()
        data = bytes(range(64)) * 8  # 512 bytes
        copy_to_user(memory, mmu, pt.root_paddr, 0x10F00, data)
        assert copy_from_user(memory, mmu, pt.root_paddr, 0x10F00, 512) == data
        # physically split across the two frames
        assert memory.read(0x20_0F00, 0x100) == data[:0x100]
        assert memory.read(0x10_0000, 0x100) == data[0x100:0x200]

    def test_unmapped_faults(self):
        memory, pt, mmu = self._setup()
        with pytest.raises(UserCopyFault):
            copy_from_user(memory, mmu, pt.root_paddr, 0x50000, 4)

    def test_kernel_page_faults_for_user(self):
        memory, pt, mmu = self._setup()
        pt.map_frame(0x20000, 0x30_0000, PageSize.SIZE_4K, Flags.kernel_rw())
        with pytest.raises(UserCopyFault):
            copy_from_user(memory, mmu, pt.root_paddr, 0x20000, 4)

    def test_zero_length(self):
        memory, pt, mmu = self._setup()
        assert copy_from_user(memory, mmu, pt.root_paddr, 0x10000, 0) == b""
        copy_to_user(memory, mmu, pt.root_paddr, 0x10000, b"")

    def test_negative_length_rejected(self):
        memory, pt, mmu = self._setup()
        with pytest.raises(ValueError):
            copy_from_user(memory, mmu, pt.root_paddr, 0x10000, -1)


class TestContractVcs:
    def test_all_contract_vcs_prove(self):
        for vc in contract_vcs():
            result = vc.discharge()
            assert result.ok, f"{vc.name}: {result.detail}"

    def test_count(self):
        assert len(contract_vcs()) == 23
