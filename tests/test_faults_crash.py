"""Crash-recovery matrix: kill the disk at every write boundary of each
canonical filesystem scenario, remount, and require fsck to come back
clean or with recoverable-only issues (leaked blocks, orphan inodes,
nlink mismatches) — never dangling structure.

This is the harness behind `python -m repro faults --campaign disk`; the
parametrized form here pins every scenario individually so a regression
names the operation and the exact write it broke at."""

import pytest

from repro.faults.crash import (
    CRASH_SCENARIOS,
    is_recoverable,
    run_crash_matrix,
)
from repro.faults.plan import FaultPlan, FaultRule
from repro.hw.devices.disk import Disk, DiskCrash
from repro.nros.drivers.block import BlockDriver
from repro.nros.fs.fs import FileSystem
from repro.nros.fs.fsck import fsck


@pytest.mark.parametrize("name", sorted(CRASH_SCENARIOS))
def test_crash_matrix_recovers(name):
    scenario, setup = CRASH_SCENARIOS[name]
    report = run_crash_matrix(scenario, name=name, setup=setup)
    assert report.total_writes > 0, f"{name} performed no writes"
    assert report.crash_points == report.total_writes
    assert report.violations == [], (
        f"{name}: structural damage at "
        f"{[p.write_number for p in report.points if not p.ok]}: "
        f"{report.violations}"
    )


@pytest.mark.parametrize("name", sorted(CRASH_SCENARIOS))
def test_crash_matrix_is_deterministic(name):
    scenario, setup = CRASH_SCENARIOS[name]
    first = run_crash_matrix(scenario, name=name, setup=setup)
    second = run_crash_matrix(scenario, name=name, setup=setup)
    assert first.total_writes == second.total_writes
    assert [p.issues for p in first.points] == \
        [p.issues for p in second.points]


def test_crash_leaves_device_dead_until_restore():
    plan = FaultPlan(seed=3, rules=[
        FaultRule(site="disk.write", kind="crash", at=1),
    ])
    disk = Disk(8, fault_plan=plan)
    with pytest.raises(DiskCrash):
        disk.write_sector(0, b"x" * Disk.SECTOR_SIZE)
    with pytest.raises(DiskCrash):
        disk.read_sector(0)  # everything fails after power loss
    image = disk.snapshot()  # ...but the platter image is recoverable
    survivor = Disk(8)
    survivor.restore(image)
    assert survivor.read_sector(0) == bytes(Disk.SECTOR_SIZE)


def test_crashed_write_never_lands_partially():
    """The crash model is crash-between-writes: the interrupted write
    contributes nothing to the surviving image."""
    disk = Disk(8)
    disk.write_sector(0, b"a" * Disk.SECTOR_SIZE)
    plan = FaultPlan(seed=3, rules=[
        FaultRule(site="disk.write", kind="crash", at=1),
    ])
    disk.fault_plan = plan
    with pytest.raises(DiskCrash):
        disk.write_sector(0, b"b" * Disk.SECTOR_SIZE)
    survivor = Disk(8)
    survivor.restore(disk.snapshot())
    assert survivor.read_sector(0) == b"a" * Disk.SECTOR_SIZE


def test_fsck_issue_classification():
    assert is_recoverable("leaked block 17 (allocated, unreferenced)")
    assert is_recoverable("orphan inode 3 (type file)")
    assert is_recoverable("inode 4: nlink 2 but 1 directory entries")
    assert not is_recoverable("block 9 referenced by both inode 1 and 2")
    assert not is_recoverable("directory inode 5: data corrupt")


def test_unlink_crash_never_dangles():
    """The ordering the slot format guarantees: a crash during unlink can
    orphan the inode but can never leave an entry naming freed storage."""
    scenario, setup = CRASH_SCENARIOS["unlink"]
    report = run_crash_matrix(scenario, name="unlink", setup=setup)
    for point in report.points:
        for issue in point.issues:
            assert "free inode" not in issue, (
                f"write {point.write_number}: entry points at freed "
                f"inode — unlink wrote in the wrong order"
            )


def test_remount_after_clean_run_is_identical():
    """Baseline sanity for the harness: with no crash the image remounts
    with zero fsck issues."""
    for name, (scenario, setup) in sorted(CRASH_SCENARIOS.items()):
        disk = Disk(64)
        fs = FileSystem.mkfs(BlockDriver(disk), num_inodes=64)
        if setup is not None:
            setup(fs)
        scenario(fs)
        survivor = Disk(64)
        survivor.restore(disk.snapshot())
        remounted = FileSystem(BlockDriver(survivor))
        assert fsck(remounted) == [], f"clean {name} run not clean"
