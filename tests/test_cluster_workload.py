"""The open-loop workload harness: sampling, sessions, bench payload."""

import random

from repro.cluster.deploy import Deployment
from repro.cluster.harness import SCALE_NODE_COUNTS, scaling_bench
from repro.cluster.workload import (
    WorkloadProfile,
    ZipfSampler,
    run_workload,
)
from repro.obs.registry import Registry


def test_zipf_sampler_is_seeded_and_skewed():
    draws_a = [ZipfSampler(100, 0.99, random.Random("s")).sample()
               for _ in range(500)]
    draws_b = [ZipfSampler(100, 0.99, random.Random("s")).sample()
               for _ in range(500)]
    assert draws_a == draws_b
    # rank 0 must dominate rank 50 by roughly its weight ratio
    sampler = ZipfSampler(100, 0.99, random.Random(1))
    counts = [0] * 100
    for _ in range(20_000):
        counts[sampler.sample()] += 1
    assert counts[0] > 10 * counts[50]
    assert all(0 <= rank < 100 for rank in draws_a)


def test_zipf_theta_zero_is_uniform():
    sampler = ZipfSampler(4, 0.0, random.Random(2))
    counts = [0] * 4
    for _ in range(8_000):
        counts[sampler.sample()] += 1
    assert max(counts) < 1.2 * min(counts)


def test_workload_report_is_deterministic():
    def run():
        deployment = Deployment(3, rf=2, registry=Registry())
        report = run_workload(deployment,
                              WorkloadProfile(ops=250, seed=9))
        return report.summary_lines()

    assert run() == run()


def test_open_loop_overload_shows_queueing():
    # one node, offered load far above its per-tick service capacity:
    # the p99 must sit well above the p50 (requests queue), which is the
    # effect the 1-vs-3-node benchmark reports
    deployment = Deployment(1, rf=1, capacity=2, registry=Registry())
    report = run_workload(
        deployment,
        WorkloadProfile(ops=400, rate=8_000_000.0, seed=4))
    assert report.ok
    snap = report.latency["get"]
    assert snap["count"] > 0
    # unloaded, a get completes in a handful of ticks (a few thousand
    # ns); under overload the queue pushes even the median 10x above
    # that and the tail further out
    assert snap["p50"] > 20_000
    assert snap["p99"] > 1.5 * snap["p50"]


def test_million_client_population_and_sessions():
    deployment = Deployment(3, rf=2, registry=Registry())
    profile = WorkloadProfile(ops=300, seed=13)
    assert profile.num_clients == 1_000_000
    report = run_workload(deployment, profile)
    assert report.ok
    gateway = deployment.gateway
    # sessions are tracked per (client, key); with a million clients the
    # population of distinct writers is essentially the write count
    writers = {client for client, _ in gateway.sessions}
    assert len(writers) > 100
    assert all(version >= 1 for version in gateway.sessions.values())


def test_scaling_bench_payload_shape():
    payload = scaling_bench(node_counts=(1, 3), seed=1, ops=200)
    assert set(payload["series"]) == {"1", "3"}
    for count in ("1", "3"):
        entry = payload["series"][count]
        assert entry["lost_acked_writes"] == 0
        assert entry["ryw_violations"] == 0
        assert entry["acked"] == entry["issued"] == 200
        for op in ("put", "get", "del"):
            assert {"count", "p50_ns", "p99_ns", "max_ns"} <= set(entry[op])
    assert payload["profile"]["ops"] == 200
    assert tuple(SCALE_NODE_COUNTS) == (1, 3)
