"""Entry encode/decode tests, including hypothesis roundtrips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pt import defs, entry
from repro.core.pt.defs import Flags, PageSize
from repro.core.pt.entry import EntryKind


flags_strategy = st.builds(
    Flags,
    writable=st.booleans(),
    user=st.booleans(),
    executable=st.booleans(),
    write_through=st.booleans(),
    cache_disable=st.booleans(),
    global_=st.booleans(),
)


class TestConstants:
    def test_level_shifts(self):
        assert defs.LEVEL_SHIFTS == (39, 30, 21, 12)

    def test_vaddr_bits(self):
        assert defs.VADDR_BITS == 48
        assert defs.MAX_VADDR == 1 << 48

    def test_page_sizes(self):
        assert int(PageSize.SIZE_4K) == 4096
        assert int(PageSize.SIZE_2M) == 2 * 1024 * 1024
        assert int(PageSize.SIZE_1G) == 1024 * 1024 * 1024

    def test_size_levels(self):
        assert PageSize.SIZE_4K.level == 3
        assert PageSize.SIZE_2M.level == 2
        assert PageSize.SIZE_1G.level == 1
        assert PageSize.for_level(3) is PageSize.SIZE_4K
        with pytest.raises(ValueError):
            PageSize.for_level(0)

    def test_vaddr_index(self):
        va = (5 << 39) | (17 << 30) | (300 << 21) | (511 << 12) | 0x123
        assert defs.vaddr_index(va, 0) == 5
        assert defs.vaddr_index(va, 1) == 17
        assert defs.vaddr_index(va, 2) == 300
        assert defs.vaddr_index(va, 3) == 511

    def test_vaddr_base_offset(self):
        va = 0x1234_5678
        for size in PageSize:
            base = defs.vaddr_base(va, size)
            off = defs.vaddr_offset(va, size)
            assert base + off == va
            assert base % int(size) == 0
            assert 0 <= off < int(size)

    def test_is_canonical(self):
        assert defs.is_canonical(0)
        assert defs.is_canonical(defs.MAX_VADDR - 1)
        assert not defs.is_canonical(defs.MAX_VADDR)
        assert not defs.is_canonical(-1)


class TestTableEntries:
    def test_roundtrip(self):
        raw = entry.encode_table(0x5000)
        view = entry.decode(raw, 0)
        assert view.kind is EntryKind.TABLE
        assert view.paddr == 0x5000

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            entry.encode_table(0x5008)

    def test_out_of_range_paddr(self):
        with pytest.raises(ValueError):
            entry.encode_table(1 << 60)

    def test_intermediate_is_permissive(self):
        raw = entry.encode_table(0x5000)
        assert raw & (1 << defs.BIT_WRITABLE)
        assert raw & (1 << defs.BIT_USER)


class TestPageEntries:
    @given(
        frame=st.integers(0, (1 << 40) - 1).map(lambda f: f << 12),
        flags=flags_strategy,
    )
    def test_4k_roundtrip(self, frame, flags):
        raw = entry.encode_page(frame, flags, level=3)
        view = entry.decode(raw, 3)
        assert view.kind is EntryKind.PAGE
        assert view.paddr == frame
        assert view.flags == flags

    @given(flags=flags_strategy, index=st.integers(0, (1 << 31) - 1))
    def test_2m_roundtrip(self, flags, index):
        frame = index << 21
        if frame & ~defs.ADDR_MASK:
            return
        raw = entry.decode(entry.encode_page(frame, flags, level=2), 2)
        assert raw.kind is EntryKind.PAGE
        assert raw.paddr == frame
        assert raw.flags == flags

    @given(flags=flags_strategy, index=st.integers(0, (1 << 22) - 1))
    def test_1g_roundtrip(self, flags, index):
        frame = index << 30
        raw = entry.decode(entry.encode_page(frame, flags, level=1), 1)
        assert raw.kind is EntryKind.PAGE
        assert raw.paddr == frame
        assert raw.flags == flags

    def test_huge_bit_set_only_on_large(self):
        assert entry.encode_page(0, Flags(), 2) & (1 << defs.BIT_HUGE)
        assert entry.encode_page(0, Flags(), 1) & (1 << defs.BIT_HUGE)
        assert not entry.encode_page(0, Flags(), 3) & (1 << defs.BIT_HUGE)

    def test_misaligned_frame_rejected(self):
        with pytest.raises(ValueError):
            entry.encode_page(0x1000, Flags(), level=2)  # needs 2M alignment

    def test_nx_encoding(self):
        raw = entry.encode_page(0x1000, Flags(executable=False), 3)
        assert raw >> 63 == 1
        raw = entry.encode_page(0x1000, Flags(executable=True), 3)
        assert raw >> 63 == 0

    def test_decode_empty(self):
        assert entry.decode(0, 2).kind is EntryKind.EMPTY
        # present bit clear -> empty regardless of other bits
        assert entry.decode(0xFFFE, 2).kind is EntryKind.EMPTY

    def test_decode_bad_level(self):
        with pytest.raises(ValueError):
            entry.decode(1, 4)


class TestWellFormed:
    def test_zero_is_well_formed(self):
        for level in range(4):
            assert entry.is_well_formed(0, level)

    def test_stray_bits_on_empty(self):
        assert not entry.is_well_formed(0xFF0, 3)  # not present, bits set

    def test_encoded_entries_well_formed(self):
        assert entry.is_well_formed(entry.encode_table(0x3000), 0)
        assert entry.is_well_formed(
            entry.encode_page(0x20_0000, Flags(), 2), 2
        )

    def test_pml4_page_not_well_formed(self):
        # a present+huge entry at PML4 decodes as TABLE (no PS at PML4),
        # but a hand-crafted PAGE at level 0 cannot occur; decode enforces it
        view = entry.decode(entry.encode_page(0, Flags(), 1), 0)
        assert view.kind is EntryKind.TABLE
