"""Userspace-library unit tests: heap free-list, green-thread scheduler."""

import pytest

from repro.nros.kernel import Kernel
from repro.nros.syscall.abi import Syscall, SyscallError, sys
from repro.ulib.alloc import Heap
from repro.ulib.uthread import UScheduler, uyield


def drive(gen, responses=None):
    """Drive a ulib generator outside a kernel: every syscall gets the
    next canned response (vm_map returns growing bases)."""
    responses = list(responses or [])
    next_base = [0x100000]
    result = None
    try:
        request = next(gen)
        while True:
            if isinstance(request, Syscall) and request.name == "vm_map":
                value = next_base[0]
                next_base[0] += request.args[0] * 4096
            elif responses:
                value = responses.pop(0)
            else:
                value = None
            request = gen.send(value)
    except StopIteration as stop:
        result = stop.value
    return result


class TestHeap:
    def test_alloc_distinct(self):
        heap = Heap()
        a = drive(heap.alloc(100))
        b = drive(heap.alloc(100))
        assert a != b
        assert a % 8 == 0 and b % 8 == 0

    def test_free_reuses(self):
        heap = Heap()
        a = drive(heap.alloc(64))
        drive(heap.free(a, 64))
        assert drive(heap.alloc(32)) == a

    def test_coalescing(self):
        heap = Heap()
        a = drive(heap.alloc(64))
        b = drive(heap.alloc(64))
        c = drive(heap.alloc(64))
        assert b == a + 64 and c == b + 64
        drive(heap.free(a, 64))
        drive(heap.free(c, 64))
        drive(heap.free(b, 64))  # middle free merges all three
        big = drive(heap.alloc(192))
        assert big == a  # one contiguous block again

    def test_large_allocation_spans_pages(self):
        heap = Heap()
        a = drive(heap.alloc(3 * 4096 + 100))
        assert heap.pages_mapped == 4
        assert a % 8 == 0

    def test_zero_size_rejected(self):
        heap = Heap()
        with pytest.raises(ValueError):
            drive(heap.alloc(0))

    def test_free_bytes_accounting(self):
        heap = Heap()
        drive(heap.alloc(4096))
        assert heap.free_bytes() == 0
        a = drive(heap.alloc(4096))
        drive(heap.free(a, 4096))
        assert heap.free_bytes() == 4096


class TestUScheduler:
    def test_round_robin_interleave(self):
        trace = []

        def green(tag):
            for i in range(2):
                trace.append((tag, i))
                yield uyield
            return tag

        usched = UScheduler()
        usched.spawn(green("a"))
        usched.spawn(green("b"))
        results = drive(usched.run())
        assert trace == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]
        assert results == {0: "a", 1: "b"}
        assert usched.switches >= 2

    def test_bad_yield_type(self):
        def bad():
            yield 42

        usched = UScheduler()
        usched.spawn(bad())
        with pytest.raises(TypeError):
            drive(usched.run())

    def test_green_thread_catches_syscall_error(self):
        caught = []

        def green():
            try:
                yield sys("open", "/missing")
            except SyscallError as exc:
                caught.append(exc.errno)
            return "survived"

        def main():
            usched = UScheduler()
            usched.spawn(green())
            results = yield from usched.run()
            return results

        kernel = Kernel()
        outcome = {}

        def prog():
            outcome["results"] = yield from main()

        kernel.register_program("p", prog)
        kernel.spawn("p")
        kernel.run()
        from repro.nros.syscall.abi import ENOENT
        assert caught == [ENOENT]
        assert outcome["results"] == {0: "survived"}

    def test_nested_spawn_during_run(self):
        trace = []

        def child():
            trace.append("child")
            return None
            yield

        def parent(usched):
            trace.append("parent")
            usched.spawn(child())
            yield uyield
            return "done"

        usched = UScheduler()
        usched.spawn(parent(usched))
        drive(usched.run())
        assert trace == ["parent", "child"]
