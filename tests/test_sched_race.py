"""Tests for the SMP runqueue race replay: clean on the real protocol,
deterministic detection on both seeded mutants, and the analyze CLI
dispatching sched mutants to the sched replay."""

import pytest

from repro.analysis.cli import run_analysis
from repro.analysis.sched_race import (
    SCHED_MUTANTS,
    DoubleEnqueueProtocol,
    StealLockElisionProtocol,
    detect_sched_races,
    replay_sched,
)

#: The quick-mode CI seed set — determinism is asserted seed by seed.
SEEDS = (0, 1, 2, 3)


# -- the real protocol --------------------------------------------------------


def test_real_protocol_is_clean():
    report = detect_sched_races(SEEDS)
    assert report.clean, [race.render() for race in report.races]
    assert report.schedules == len(SEEDS)
    assert report.accesses > 0


def test_replay_is_deterministic():
    first = replay_sched(3)
    second = replay_sched(3)
    assert first.seq == second.seq
    assert first.accesses == second.accesses
    assert len(first.races) == len(second.races)


# -- the mutants --------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_steal_lock_elision_flagged_at_every_seed(seed):
    report = detect_sched_races([seed],
                                protocol_cls=StealLockElisionProtocol)
    assert not report.clean
    # the elided source lock shows up in the report: an rq0 access
    # without rq0.lock conflicting with the victim core's own access
    assert any("rq0" in race.location or "ent" in race.location
               for race in report.races)


@pytest.mark.parametrize("seed", SEEDS)
def test_double_enqueue_flagged_at_every_seed(seed):
    report = detect_sched_races([seed],
                                protocol_cls=DoubleEnqueueProtocol)
    assert not report.clean
    # the double-queued thread's entity is written by both cores
    assert any(race.location.startswith("ent")
               for race in report.races)


def test_mutant_detection_is_deterministic():
    for cls in SCHED_MUTANTS.values():
        first = detect_sched_races(SEEDS, protocol_cls=cls)
        second = detect_sched_races(SEEDS, protocol_cls=cls)
        assert len(first.races) == len(second.races)
        assert [r.location for r in first.races] == \
            [r.location for r in second.races]


# -- CLI dispatch -------------------------------------------------------------


def test_analyze_race_pass_covers_sched_protocol():
    report = run_analysis(skip={"layering", "purity"}, seeds=[0])
    assert report.clean
    assert report.stats["race"]["target"] == "nr-protocol"
    assert report.stats["race_sched"]["target"] == "sched-protocol"
    assert report.stats["race_sched"]["races"] == 0


def test_analyze_sched_mutant_dispatch():
    report = run_analysis(skip={"layering", "purity"}, seeds=[0],
                          mutant="sched-double-enqueue")
    assert not report.clean
    assert report.stats["race_sched"]["races"] > 0
    # the sched mutant replay replaces the NR pass entirely
    assert "race" not in report.stats
    paths = {finding.path for finding in report.findings}
    assert paths == {"src/repro/analysis/sched_race.py"}


def test_analyze_nr_mutant_still_dispatches():
    report = run_analysis(skip={"layering", "purity"}, seeds=[0],
                          mutant="reader-lock-elision")
    assert not report.clean
    assert report.stats["race"]["races"] > 0
    assert "race_sched" not in report.stats


def test_analyze_unknown_mutant_rejected():
    with pytest.raises(SystemExit):
        run_analysis(skip={"layering", "purity"}, seeds=[0],
                     mutant="no-such-mutant")
