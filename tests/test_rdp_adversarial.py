"""RDP under an adversarial channel: drop, duplicate, and reorder.

The paper's concluding remarks name a verified high-performance network
stack as an open challenge.  This module checks the property such a
verification would establish — exactly-once, in-order delivery — by
driving the real :class:`RdpConnection` endpoints through a channel that
drops, duplicates, and reorders segments arbitrarily (seeded), far beyond
what the link-level loss tests exercise."""

import random

import pytest

from repro.nros.net.rdp import (
    MAX_RETRIES,
    RETRANSMIT_TICKS,
    RdpConnection,
    RdpGiveUp,
    RdpSegment,
    STATE_CLOSED,
    STATE_ESTABLISHED,
    STATE_SYN_SENT,
    TYPE_ACK,
    TYPE_SYN,
    TYPE_SYNACK,
)


class AdversarialChannel:
    """A bidirectional channel that mangles traffic."""

    def __init__(self, rng, drop=0.25, duplicate=0.2, reorder=0.3):
        self.rng = rng
        self.drop = drop
        self.duplicate = duplicate
        self.reorder = reorder
        self.in_flight: list[tuple[str, bytes]] = []  # (direction, segment)
        self.dropped = 0
        self.duplicated = 0

    def send(self, direction: str, segment: RdpSegment) -> None:
        encoded = segment.encode()
        if self.rng.random() < self.drop:
            self.dropped += 1
            return
        self.in_flight.append((direction, encoded))
        if self.rng.random() < self.duplicate:
            self.in_flight.append((direction, encoded))
            self.duplicated += 1

    def deliver_some(self) -> list[tuple[str, RdpSegment]]:
        """Deliver a random subset, possibly out of order."""
        if not self.in_flight:
            return []
        if self.rng.random() < self.reorder:
            self.rng.shuffle(self.in_flight)
        count = self.rng.randint(1, len(self.in_flight))
        batch, self.in_flight = (self.in_flight[:count],
                                 self.in_flight[count:])
        return [(direction, RdpSegment.decode(raw))
                for direction, raw in batch]


def run_session(seed, messages, drop=0.25, duplicate=0.2, reorder=0.3,
                max_rounds=4000):
    """One client->server RDP session over the adversarial channel.

    Returns (delivered payloads, client, server, channel)."""
    rng = random.Random(seed)
    channel = AdversarialChannel(rng, drop, duplicate, reorder)
    client = RdpConnection(conn_id=1, local_port=50000, remote_ip=2,
                           remote_port=9000)
    server = RdpConnection(conn_id=1, local_port=9000, remote_ip=1,
                           remote_port=50000, state=STATE_ESTABLISHED)
    for message in messages:
        client.queue_send(message)

    delivered: list[bytes] = []
    now = 0
    for _ in range(max_rounds):
        now += 1
        try:
            outgoing = client.next_outgoing(now)
        except RdpGiveUp:
            break  # sticky on client.error; the session is over
        if outgoing is not None:
            channel.send("c2s", outgoing)
        for direction, segment in channel.deliver_some():
            if direction == "c2s":
                if segment.kind == TYPE_SYN:
                    # server side of the handshake (stack behaviour)
                    channel.send("s2c", RdpSegment(TYPE_SYNACK, 1, 0, 0))
                replies = server.on_segment(segment)
                for reply in replies:
                    channel.send("s2c", reply)
            else:
                client.on_segment(segment)
        while server.recv_queue:
            delivered.append(server.recv_queue.popleft())
        if (len(delivered) == len(messages)
                and client.unacked is None
                and not client.send_queue):
            break
    return delivered, client, server, channel


MESSAGES = [f"message-{i}".encode() for i in range(10)]


class TestExactlyOnceInOrder:
    @pytest.mark.parametrize("seed", range(12))
    def test_delivery_under_mangling(self, seed):
        delivered, client, server, channel = run_session(seed, MESSAGES)
        assert delivered == MESSAGES, (
            f"seed {seed}: dropped={channel.dropped} "
            f"dup={channel.duplicated}"
        )
        assert client.state == STATE_ESTABLISHED

    def test_heavy_loss(self):
        delivered, _, _, channel = run_session(
            99, MESSAGES, drop=0.5, duplicate=0.3, reorder=0.5
        )
        assert delivered == MESSAGES
        assert channel.dropped > 0
        assert channel.duplicated > 0

    def test_duplicates_never_delivered_twice(self):
        for seed in range(8):
            delivered, _, _, _ = run_session(
                seed + 100, MESSAGES, drop=0.0, duplicate=0.6, reorder=0.4
            )
            assert delivered == MESSAGES  # exact equality: no dups

    def test_total_blackout_gives_up(self):
        """With 100% loss the sender retries MAX_RETRIES times, then
        surfaces a typed RdpGiveUp instead of spinning forever."""
        delivered, client, _, _ = run_session(
            7, MESSAGES[:1], drop=0.999999, duplicate=0.0, reorder=0.0,
            max_rounds=2000,
        )
        assert delivered == []
        assert client.state == STATE_CLOSED
        assert isinstance(client.error, RdpGiveUp)
        assert client.error.retries > MAX_RETRIES
        # the error sticks: later sends surface it instead of stalling
        with pytest.raises(RdpGiveUp):
            client.queue_send(b"more")

    def test_retry_counter_resets_on_ack_progress(self):
        """Slow-but-alive peers never trip the give-up: each ACK resets
        the retry counter, so only cumulative silence kills a session."""
        client = RdpConnection(conn_id=1, local_port=5, remote_ip=2,
                               remote_port=9, state=STATE_ESTABLISHED)
        for i in range(3):
            client.queue_send(f"m{i}".encode())
        now = 0
        per_message = MAX_RETRIES - 5  # near the limit, never over it
        for _ in range(3):
            segment = None
            for _ in range(per_message):
                now += RETRANSMIT_TICKS
                got = client.next_outgoing(now)
                if got is not None:
                    segment = got
            assert segment is not None
            client.on_segment(
                RdpSegment(TYPE_ACK, client.conn_id, 0, segment.seq))
            assert client.retries == 0  # progress resets the counter
        # 3 * (MAX_RETRIES - 5) retransmissions in total, far beyond
        # MAX_RETRIES, yet the connection is alive and error-free
        assert client.error is None
        assert client.state == STATE_ESTABLISHED
        assert client.unacked is None
        assert not client.send_queue

    def test_handshake_syn_retransmitted(self):
        """The first SYNs are droppable; the handshake must still complete
        through retransmission."""
        rng = random.Random(0)
        channel = AdversarialChannel(rng, drop=0.0)
        client = RdpConnection(conn_id=1, local_port=5, remote_ip=2,
                               remote_port=9)
        # drop the first two SYNs manually
        syns = 0
        now = 0
        while client.state == STATE_SYN_SENT and now < 100:
            now += 1
            segment = client.next_outgoing(now)
            if segment is None:
                continue
            syns += 1
            if syns <= 2:
                continue  # dropped
            client.on_segment(RdpSegment(TYPE_SYNACK, 1, 0, 0))
        assert client.state == STATE_ESTABLISHED
        assert syns >= 3
