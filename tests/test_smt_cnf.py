"""Direct tests of the Tseitin CNF encoding layer.

Random AIG cones are encoded to CNF; for every total assignment of the
inputs, the SAT solver (with the inputs forced by unit clauses) must agree
with direct AIG evaluation — i.e. the Tseitin encoding is a faithful
characteristic function of the circuit."""

import itertools
import random

from repro.smt.aig import Aig, FALSE, TRUE, neg, node_of
from repro.smt.cnf import encode
from repro.smt.sat import SatSolver


def random_aig(rng, num_inputs=4, num_gates=12):
    g = Aig()
    inputs = [g.new_input(f"x{i}") for i in range(num_inputs)]
    pool = list(inputs)
    for _ in range(num_gates):
        a = rng.choice(pool)
        b = rng.choice(pool)
        if rng.random() < 0.5:
            a = neg(a)
        if rng.random() < 0.5:
            b = neg(b)
        pool.append(g.and_(a, b))
    out = pool[-1]
    if rng.random() < 0.5:
        out = neg(out)
    return g, inputs, out


class TestTseitin:
    def test_constant_outputs(self):
        g = Aig()
        solver = SatSolver()
        encode(g, [TRUE], solver)
        assert solver.solve().sat
        solver2 = SatSolver()
        encode(g, [FALSE], solver2)
        assert not solver2.solve().sat

    def test_single_and_gate(self):
        g = Aig()
        a = g.new_input("a")
        b = g.new_input("b")
        out = g.and_(a, b)
        solver = SatSolver()
        mapping = encode(g, [out], solver)
        result = solver.solve()
        assert result.sat
        # both inputs must be true in any model
        for lit in (a, b):
            var = mapping.node_to_var[node_of(lit)]
            assert result.model[var] is True

    def test_unsat_contradiction(self):
        g = Aig()
        a = g.new_input("a")
        out = g.and_(a, neg(a))
        assert out == FALSE  # folded structurally
        solver = SatSolver()
        encode(g, [out], solver)
        assert not solver.solve().sat

    def test_random_cones_agree_with_evaluation(self):
        rng = random.Random(99)
        for _ in range(30):
            g, inputs, out = random_aig(rng)
            if node_of(out) == 0:
                continue  # constant circuit: covered above
            for bits in itertools.product([False, True], repeat=len(inputs)):
                env = {node_of(l): v for l, v in zip(inputs, bits)}
                expected = g.evaluate(out, env)
                solver = SatSolver()
                mapping = encode(g, [out], solver)
                for lit, value in zip(inputs, bits):
                    var = mapping.node_to_var.get(node_of(lit))
                    if var is None:
                        continue  # input not in the cone
                    solver.add_clause([var if value else -var])
                assert solver.solve().sat == expected

    def test_multiple_outputs_conjoined(self):
        g = Aig()
        a = g.new_input("a")
        b = g.new_input("b")
        solver = SatSolver()
        mapping = encode(g, [a, neg(b)], solver)
        result = solver.solve()
        assert result.sat
        assert result.model[mapping.node_to_var[node_of(a)]] is True
        assert result.model[mapping.node_to_var[node_of(b)]] is False

    def test_cone_size_tracks_sharing(self):
        g = Aig()
        a = g.new_input("a")
        b = g.new_input("b")
        shared = g.and_(a, b)
        out = g.and_(shared, neg(g.and_(shared, a)))
        solver = SatSolver()
        mapping = encode(g, [out], solver)
        # vars: a, b, shared, inner, out = 5 nodes
        assert len(mapping.node_to_var) == 5
