"""Direct tests of the Tseitin CNF encoding layer.

Random AIG cones are encoded to CNF; for every total assignment of the
inputs, the SAT solver (with the inputs forced by unit clauses) must agree
with direct AIG evaluation — i.e. the Tseitin encoding is a faithful
characteristic function of the circuit."""

import itertools
import random

from repro.smt.aig import Aig, FALSE, TRUE, neg, node_of
from repro.smt.cnf import encode
from repro.smt.sat import SatSolver


def random_aig(rng, num_inputs=4, num_gates=12):
    g = Aig()
    inputs = [g.new_input(f"x{i}") for i in range(num_inputs)]
    pool = list(inputs)
    for _ in range(num_gates):
        a = rng.choice(pool)
        b = rng.choice(pool)
        if rng.random() < 0.5:
            a = neg(a)
        if rng.random() < 0.5:
            b = neg(b)
        pool.append(g.and_(a, b))
    out = pool[-1]
    if rng.random() < 0.5:
        out = neg(out)
    return g, inputs, out


class TestTseitin:
    def test_constant_outputs(self):
        g = Aig()
        solver = SatSolver()
        encode(g, [TRUE], solver)
        assert solver.solve().sat
        solver2 = SatSolver()
        encode(g, [FALSE], solver2)
        assert not solver2.solve().sat

    def test_single_and_gate(self):
        g = Aig()
        a = g.new_input("a")
        b = g.new_input("b")
        out = g.and_(a, b)
        solver = SatSolver()
        mapping = encode(g, [out], solver)
        result = solver.solve()
        assert result.sat
        # both inputs must be true in any model
        for lit in (a, b):
            var = mapping.node_to_var[node_of(lit)]
            assert result.model[var] is True

    def test_unsat_contradiction(self):
        g = Aig()
        a = g.new_input("a")
        out = g.and_(a, neg(a))
        assert out == FALSE  # folded structurally
        solver = SatSolver()
        encode(g, [out], solver)
        assert not solver.solve().sat

    def test_random_cones_agree_with_evaluation(self):
        rng = random.Random(99)
        for _ in range(30):
            g, inputs, out = random_aig(rng)
            if node_of(out) == 0:
                continue  # constant circuit: covered above
            for bits in itertools.product([False, True], repeat=len(inputs)):
                env = {node_of(l): v for l, v in zip(inputs, bits)}
                expected = g.evaluate(out, env)
                solver = SatSolver()
                mapping = encode(g, [out], solver)
                for lit, value in zip(inputs, bits):
                    var = mapping.node_to_var.get(node_of(lit))
                    if var is None:
                        continue  # input not in the cone
                    solver.add_clause([var if value else -var])
                assert solver.solve().sat == expected

    def test_multiple_outputs_conjoined(self):
        g = Aig()
        a = g.new_input("a")
        b = g.new_input("b")
        solver = SatSolver()
        mapping = encode(g, [a, neg(b)], solver)
        result = solver.solve()
        assert result.sat
        assert result.model[mapping.node_to_var[node_of(a)]] is True
        assert result.model[mapping.node_to_var[node_of(b)]] is False

    def test_cone_size_tracks_sharing(self):
        g = Aig()
        a = g.new_input("a")
        b = g.new_input("b")
        shared = g.and_(a, b)
        out = g.and_(shared, neg(g.and_(shared, a)))
        solver = SatSolver()
        mapping = encode(g, [out], solver)
        # vars: a, b, shared, inner, out = 5 nodes
        assert len(mapping.node_to_var) == 5


class TestIncrementalEncoding:
    def test_asserted_empty_clause_is_counted(self):
        """Regression: a constant-FALSE output asserts the empty clause,
        which must count toward num_clauses like any asserted clause."""
        g = Aig()
        solver = SatSolver()
        mapping = encode(g, [FALSE], solver)
        assert mapping.num_clauses == 1
        assert not solver.solve().sat

    def test_unasserted_cone_stays_satisfiable(self):
        """With assert_outputs=False the Tseitin clauses are pure
        definitions — satisfiable regardless of what the cone computes —
        and the output is queried via its assumption literal."""
        from repro.smt.cnf import output_literal

        g = Aig()
        a = g.new_input("a")
        b = g.new_input("b")
        # (a & b) & (a & ~b): unsatisfiable, but deep enough that the
        # one-level AIG simplifier doesn't fold it to constant FALSE
        contradiction = g.and_(g.and_(a, b), g.and_(a, neg(b)))
        solver = SatSolver()
        mapping = encode(g, [contradiction], solver, assert_outputs=False)
        assert solver.solve().sat  # nothing asserted yet
        lit = output_literal(mapping, contradiction)
        assert not solver.solve(assumptions=[lit]).sat
        assert solver.solve(assumptions=[-lit]).sat

    def test_extension_reuses_shared_nodes(self):
        """Encoding a second cone against the same mapping emits variables
        and clauses only for the nodes the first cone didn't cover."""
        g = Aig()
        a = g.new_input("a")
        b = g.new_input("b")
        c = g.new_input("c")
        shared = g.and_(a, b)
        first = g.and_(shared, c)
        second = g.and_(shared, neg(c))
        solver = SatSolver()
        mapping = encode(g, [first], solver, assert_outputs=False)
        vars_after_first = len(mapping.node_to_var)
        clauses_after_first = mapping.num_clauses
        mapping = encode(g, [second], solver, mapping=mapping,
                         assert_outputs=False)
        # only the `second` AND node is fresh: +1 var, +3 clauses
        assert len(mapping.node_to_var) == vars_after_first + 1
        assert mapping.num_clauses == clauses_after_first + 3

    def test_extension_agrees_with_evaluation(self):
        """Differential: two random cones encoded incrementally into one
        solver must each agree with direct AIG evaluation under every input
        assignment (queried via assumptions, inputs forced as units)."""
        from repro.smt.cnf import output_literal

        rng = random.Random(41)
        for _ in range(20):
            g, inputs, out1 = random_aig(rng)
            pool = [lit for lit in inputs]
            extra = g.and_(pool[0], neg(pool[-1]))
            out2 = g.and_(extra, out1 if rng.random() < 0.5 else neg(out1))
            outs = [out for out in (out1, out2) if node_of(out) != 0]
            if not outs:
                continue
            solver = SatSolver()
            mapping = None
            for out in outs:
                mapping = encode(g, [out], solver, mapping=mapping,
                                 assert_outputs=False)
            for bits in itertools.product([False, True],
                                          repeat=len(inputs)):
                forced = [
                    mapping.node_to_var[node_of(lit)] * (1 if value else -1)
                    for lit, value in zip(inputs, bits)
                    if node_of(lit) in mapping.node_to_var
                ]
                env = {node_of(lit): value
                       for lit, value in zip(inputs, bits)}
                for out in outs:
                    expected = g.evaluate(out, env)
                    got = solver.solve(
                        assumptions=forced + [output_literal(mapping, out)]
                    ).sat
                    assert got == expected, (bits, out)

    def test_output_literal_rejects_constants(self):
        from repro.smt.cnf import CnfMapping, output_literal
        try:
            output_literal(CnfMapping(), TRUE)
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")
