"""Kernel integration tests: processes, syscalls, memory, futexes, threads."""

import pytest

from repro.nros.fs.fd import O_CREAT, O_RDWR
from repro.nros.kernel import Kernel, KernelPanic
from repro.nros.proc.process import ProcessState
from repro.nros.syscall.abi import SyscallError, sys
from repro.ulib.alloc import Heap
from repro.ulib.sync import Condvar, Mutex, Semaphore
from repro.ulib.uthread import UScheduler, uyield
from repro.ulib import io as uio


def run_program(factory, name="test", kernel=None, argv=()):
    kernel = kernel or Kernel(num_cores=2)
    kernel.register_program(name, factory)
    pid = kernel.spawn(name, argv)
    kernel.run()
    return kernel, kernel.processes[pid]


class TestLifecycle:
    def test_empty_program_exits_zero(self):
        def prog():
            return
            yield

        _, process = run_program(prog)
        assert process.state is ProcessState.ZOMBIE
        assert process.exit_code == 0

    def test_explicit_exit_code(self):
        def prog():
            yield sys("exit", 42)

        _, process = run_program(prog)
        assert process.exit_code == 42

    def test_getpid(self):
        seen = []

        def prog():
            pid = yield sys("getpid")
            seen.append(pid)

        _, process = run_program(prog)
        assert seen == [process.pid]

    def test_log_reaches_serial(self):
        def prog():
            yield sys("log", "hello from userspace")

        kernel, _ = run_program(prog)
        assert any("hello from userspace" in line
                   for line in kernel.serial.lines)

    def test_crash_kills_process(self):
        def prog():
            yield sys("getpid")
            raise RuntimeError("user bug")

        kernel, process = run_program(prog)
        assert process.exit_code == 70
        assert any("crashed" in line for line in kernel.serial.lines)

    def test_unhandled_syscall_error_kills(self):
        def prog():
            yield sys("open", "/does/not/exist")

        _, process = run_program(prog)
        assert process.exit_code == 70

    def test_syscall_error_catchable(self):
        outcomes = []

        def prog():
            try:
                yield sys("open", "/missing")
            except SyscallError as exc:
                outcomes.append(exc.errno)

        from repro.nros.syscall.abi import ENOENT
        run_program(prog)
        assert outcomes == [ENOENT]

    def test_spawn_and_wait(self):
        order = []

        def child(tag):
            yield sys("log", f"child {tag}")
            order.append(f"child-{tag}")
            yield sys("exit", 7)

        def parent():
            pid = yield sys("spawn", "child", ("a",))
            got_pid, code = yield sys("wait", pid)
            order.append(("reaped", got_pid == pid, code))

        kernel = Kernel(num_cores=2)
        kernel.register_program("child", child)
        kernel.register_program("parent", parent)
        kernel.spawn("parent")
        kernel.run()
        assert ("reaped", True, 7) in order

    def test_wait_any(self):
        reaped = []

        def child(code):
            yield sys("exit", code)

        def parent():
            yield sys("spawn", "child", (11,))
            yield sys("spawn", "child", (22,))
            for _ in range(2):
                pid, code = yield sys("wait", -1)
                reaped.append(code)

        kernel = Kernel()
        kernel.register_program("child", child)
        kernel.register_program("parent", parent)
        kernel.spawn("parent")
        kernel.run()
        assert sorted(reaped) == [11, 22]

    def test_wait_no_children_fails(self):
        errors = []

        def prog():
            try:
                yield sys("wait", -1)
            except SyscallError as exc:
                errors.append(exc.errno)

        from repro.nros.syscall.abi import ECHILD
        run_program(prog)
        assert errors == [ECHILD]

    def test_kill(self):
        def victim():
            while True:
                yield sys("sched_yield")

        def killer(pid):
            yield sys("kill", pid)

        kernel = Kernel()
        kernel.register_program("victim", victim)
        kernel.register_program("killer", killer)
        victim_pid = kernel.spawn("victim")
        kernel.spawn("killer", (victim_pid,))
        kernel.run()
        assert kernel.processes[victim_pid].exit_code == 137

    def test_sleep_wakes(self):
        ticks = []

        def prog():
            yield sys("sleep", 5)
            ticks.append(True)

        run_program(prog)
        assert ticks == [True]


class TestFileSyscalls:
    def test_file_roundtrip(self):
        results = {}

        def prog():
            fd = yield sys("open", "/data.bin", O_CREAT | O_RDWR)
            yield sys("write", fd, b"kernel file io")
            yield sys("seek", fd, 7)
            results["tail"] = yield sys("read", fd, 100)
            yield sys("close", fd)
            results["listing"] = yield sys("readdir", "/")

        run_program(prog)
        assert results["tail"] == b"file io"
        assert results["listing"] == ("data.bin",)

    def test_mkdir_stat_unlink_rename(self):
        results = {}

        def prog():
            yield sys("mkdir", "/etc")
            fd = yield sys("open", "/etc/conf", O_CREAT | O_RDWR)
            yield sys("write", fd, b"x=1")
            yield sys("close", fd)
            results["stat"] = yield sys("stat", "/etc/conf")
            yield sys("rename", "/etc/conf", "/etc/conf.bak")
            results["after_rename"] = yield sys("readdir", "/etc")
            yield sys("unlink", "/etc/conf.bak")
            results["after_unlink"] = yield sys("readdir", "/etc")

        run_program(prog)
        inum, itype, size, nlink = results["stat"]
        assert size == 3 and itype == 1
        assert results["after_rename"] == ("conf.bak",)
        assert results["after_unlink"] == ()

    def test_ulib_io_helpers(self):
        results = {}

        def prog():
            yield from uio.write_file("/greeting", b"hello ulib")
            results["data"] = yield from uio.read_file("/greeting")

        run_program(prog)
        assert results["data"] == b"hello ulib"


class TestMemorySyscalls:
    def test_map_poke_peek(self):
        results = {}

        def prog():
            base = yield sys("vm_map", 2)
            yield sys("poke", base + 0x100, 0xDEAD_BEEF)
            results["value"] = yield sys("peek", base + 0x100)
            results["paddr"] = yield sys("vm_resolve", base)
            yield sys("vm_unmap", base)
            try:
                yield sys("peek", base)
            except SyscallError as exc:
                results["after_unmap"] = exc.errno

        from repro.nros.syscall.abi import EFAULT
        run_program(prog)
        assert results["value"] == 0xDEAD_BEEF
        assert results["paddr"] > 0
        assert results["after_unmap"] == EFAULT

    def test_cas(self):
        results = []

        def prog():
            base = yield sys("vm_map", 1)
            results.append((yield sys("cas", base, 0, 5)))
            results.append((yield sys("cas", base, 0, 9)))
            results.append((yield sys("peek", base)))

        run_program(prog)
        assert results == [(True, 0), (False, 5), 5]

    def test_read_into_user_buffer(self):
        results = {}

        def prog():
            fd = yield sys("open", "/blob", O_CREAT | O_RDWR)
            yield sys("write", fd, b"ABCDEFGH")
            yield sys("seek", fd, 0)
            buf = yield sys("vm_map", 1)
            n = yield sys("read_into", fd, buf, 8)
            results["n"] = n
            results["word"] = yield sys("peek", buf)

        run_program(prog)
        assert results["n"] == 8
        assert results["word"] == int.from_bytes(b"ABCDEFGH", "little")

    def test_write_from_user_buffer(self):
        results = {}

        def prog():
            buf = yield sys("vm_map", 1)
            yield sys("poke", buf, int.from_bytes(b"qwertyui", "little"))
            fd = yield sys("open", "/out", O_CREAT | O_RDWR)
            yield sys("write_from", fd, buf, 8)
            yield sys("seek", fd, 0)
            results["data"] = yield sys("read", fd, 8)

        run_program(prog)
        assert results["data"] == b"qwertyui"

    def test_heap_allocator(self):
        results = {}

        def prog():
            heap = Heap()
            a = yield from heap.alloc(64)
            b = yield from heap.alloc(64)
            results["distinct"] = a != b
            yield sys("poke", a, 1)
            yield sys("poke", b, 2)
            results["a"] = yield sys("peek", a)
            results["b"] = yield sys("peek", b)
            yield from heap.free(a, 64)
            c = yield from heap.alloc(32)
            results["reused"] = c == a

        run_program(prog)
        assert results == {"distinct": True, "a": 1, "b": 2, "reused": True}


class TestThreadsAndSync:
    def test_thread_spawn_join(self):
        results = {}

        def worker(value):
            yield sys("sched_yield")
            return value * 2

        def main():
            tid = yield sys("thread_spawn", "worker", (21,))
            results["joined"] = yield sys("thread_join", tid)

        kernel = Kernel(num_cores=2)
        kernel.register_program("worker", worker)
        kernel.register_program("main", main)
        kernel.spawn("main")
        kernel.run()
        assert results["joined"] == 42

    def test_futex_mutex_mutual_exclusion(self):
        trace = []

        def worker(mutex_addr, counter_addr, tag):
            mutex = Mutex(mutex_addr)
            for _ in range(5):
                yield from mutex.acquire()
                value = yield sys("peek", counter_addr)
                yield sys("sched_yield")  # invite interleaving
                yield sys("poke", counter_addr, value + 1)
                trace.append(tag)
                yield from mutex.release()

        def main():
            base = yield sys("vm_map", 1)
            mutex_addr, counter_addr = base, base + 8
            t1 = yield sys("thread_spawn", "worker",
                           (mutex_addr, counter_addr, "a"))
            t2 = yield sys("thread_spawn", "worker",
                           (mutex_addr, counter_addr, "b"))
            yield sys("thread_join", t1)
            yield sys("thread_join", t2)
            final = yield sys("peek", counter_addr)
            trace.append(("final", final))

        kernel = Kernel(num_cores=2)
        kernel.register_program("worker", worker)
        kernel.register_program("main", main)
        kernel.spawn("main")
        kernel.run()
        assert ("final", 10) in trace

    def test_lost_update_without_mutex(self):
        """Control experiment: the same increment loop WITHOUT the mutex
        loses updates, proving the mutex test is not vacuous."""
        trace = []

        def worker(counter_addr):
            for _ in range(5):
                value = yield sys("peek", counter_addr)
                yield sys("sched_yield")
                yield sys("poke", counter_addr, value + 1)

        def main():
            base = yield sys("vm_map", 1)
            t1 = yield sys("thread_spawn", "worker", (base,))
            t2 = yield sys("thread_spawn", "worker", (base,))
            yield sys("thread_join", t1)
            yield sys("thread_join", t2)
            trace.append((yield sys("peek", base)))

        kernel = Kernel(num_cores=2)
        kernel.register_program("worker", worker)
        kernel.register_program("main", main)
        kernel.spawn("main")
        kernel.run()
        assert trace[0] < 10  # updates lost

    def test_condvar_producer_consumer(self):
        consumed = []

        def consumer(mutex_addr, cond_addr, slot_addr):
            mutex = Mutex(mutex_addr)
            cond = Condvar(cond_addr)
            yield from mutex.acquire()
            while True:
                value = yield sys("peek", slot_addr)
                if value != 0:
                    break
                yield from cond.wait(mutex)
            consumed.append(value)
            yield from mutex.release()

        def producer(mutex_addr, cond_addr, slot_addr):
            mutex = Mutex(mutex_addr)
            cond = Condvar(cond_addr)
            yield sys("sleep", 2)
            yield from mutex.acquire()
            yield sys("poke", slot_addr, 99)
            yield from cond.signal()
            yield from mutex.release()

        def main():
            base = yield sys("vm_map", 1)
            args = (base, base + 8, base + 16)
            t1 = yield sys("thread_spawn", "consumer", args)
            t2 = yield sys("thread_spawn", "producer", args)
            yield sys("thread_join", t1)
            yield sys("thread_join", t2)

        kernel = Kernel(num_cores=2)
        kernel.register_program("consumer", consumer)
        kernel.register_program("producer", producer)
        kernel.register_program("main", main)
        kernel.spawn("main")
        kernel.run()
        assert consumed == [99]

    def test_semaphore_bounds_concurrency(self):
        peak = {"current": 0, "max": 0}

        def worker(sem_addr):
            sem = Semaphore(sem_addr)
            yield from sem.wait()
            peak["current"] += 1
            peak["max"] = max(peak["max"], peak["current"])
            yield sys("sched_yield")
            peak["current"] -= 1
            yield from sem.post()

        def main():
            base = yield sys("vm_map", 1)
            sem = Semaphore(base)
            yield from sem.init(2)
            tids = []
            for _ in range(5):
                tids.append((yield sys("thread_spawn", "worker", (base,))))
            for tid in tids:
                yield sys("thread_join", tid)

        kernel = Kernel(num_cores=2)
        kernel.register_program("worker", worker)
        kernel.register_program("main", main)
        kernel.spawn("main")
        kernel.run()
        assert 0 < peak["max"] <= 2

    def test_uthreads(self):
        log = []

        def green(tag, n):
            for i in range(n):
                log.append((tag, i))
                yield uyield
            return tag

        def main():
            usched = UScheduler()
            usched.spawn(green("x", 3))
            usched.spawn(green("y", 3))
            results = yield from usched.run()
            log.append(results)

        run_program(main)
        # interleaved round robin
        assert log[:4] == [("x", 0), ("y", 0), ("x", 1), ("y", 1)]
        assert log[-1] == {0: "x", 1: "y"}

    def test_uthread_syscalls_forwarded(self):
        results = {}

        def green(path, data):
            yield from uio.write_file(path, data)
            got = yield from uio.read_file(path)
            return got

        def main():
            usched = UScheduler()
            usched.spawn(green("/g1", b"one"))
            usched.spawn(green("/g2", b"two"))
            results.update((yield from usched.run()))

        run_program(main)
        assert results == {0: b"one", 1: b"two"}


class TestDeadlockDetection:
    def test_deadlock_panics(self):
        def prog():
            base = yield sys("vm_map", 1)
            yield sys("futex_wait", base, 0)  # nobody will ever wake us

        kernel = Kernel()
        kernel.register_program("p", prog)
        kernel.spawn("p")
        with pytest.raises(KernelPanic, match="deadlock"):
            kernel.run(max_ticks=50)
