"""Tests for runtime contracts and linear ownership tokens."""

import pytest

from repro.verif.contracts import (
    ContractError,
    contracts,
    contracts_enabled,
    ensures,
    requires,
    set_contracts_enabled,
    snapshot,
)
from repro.verif.linear import OwnershipError, OwnershipTable, Region


class TestContracts:
    def test_requires_passes(self):
        @requires(lambda x: x > 0)
        def f(x):
            return x * 2

        assert f(3) == 6

    def test_requires_fails(self):
        @requires(lambda x: x > 0, "x must be positive")
        def f(x):
            return x

        with pytest.raises(ContractError, match="positive"):
            f(-1)

    def test_ensures_checks_result(self):
        @ensures(lambda result, x: result >= x)
        def f(x):
            return x - 1 if x == 42 else x + 1

        assert f(1) == 2
        with pytest.raises(ContractError):
            f(42)

    def test_snapshot_provides_old_state(self):
        class Counter:
            def __init__(self):
                self.n = 0

            @snapshot("old", lambda self: self.n)
            @ensures(lambda result, self, old: self.n == old + 1)
            def bump(self, old=None):
                self.n += 1
                return self.n

        c = Counter()
        assert c.bump() == 1
        assert c.bump() == 2

    def test_disable_contracts(self):
        @requires(lambda x: x > 0)
        def f(x):
            return x

        with contracts(False):
            assert not contracts_enabled()
            assert f(-5) == -5  # unchecked
        assert contracts_enabled()
        with pytest.raises(ContractError):
            f(-5)

    def test_set_contracts_enabled(self):
        set_contracts_enabled(False)
        try:
            assert not contracts_enabled()
        finally:
            set_contracts_enabled(True)


class TestRegion:
    def test_overlap(self):
        a = Region(0, 10)
        assert a.overlaps(Region(5, 15))
        assert not a.overlaps(Region(10, 20))
        assert Region(5, 15).overlaps(a)

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            Region(5, 5)


class TestOwnership:
    def test_unique_excludes_all(self):
        table = OwnershipTable()
        table.claim_unique(0x1000, 0x100, "syscall-read")
        with pytest.raises(OwnershipError):
            table.claim_unique(0x1080, 0x10, "other-thread")
        with pytest.raises(OwnershipError):
            table.claim_shared(0x1080, 0x10, "other-thread")

    def test_shared_coexists(self):
        table = OwnershipTable()
        table.claim_shared(0, 100, "t1")
        table.claim_shared(50, 100, "t2")
        with pytest.raises(OwnershipError):
            table.claim_unique(0, 10, "t3")

    def test_disjoint_unique_ok(self):
        table = OwnershipTable()
        table.claim_unique(0, 100, "t1")
        table.claim_unique(100, 100, "t2")

    def test_release_allows_reclaim(self):
        table = OwnershipTable()
        token = table.claim_unique(0, 10, "t1")
        table.release(token)
        table.claim_unique(0, 10, "t2")

    def test_double_release(self):
        table = OwnershipTable()
        token = table.claim_unique(0, 10, "t1")
        table.release(token)
        with pytest.raises(OwnershipError):
            table.release(token)

    def test_quiescent_check(self):
        table = OwnershipTable()
        table.assert_quiescent()
        token = table.claim_shared(0, 4, "t1")
        with pytest.raises(OwnershipError, match="leaked"):
            table.assert_quiescent()
        table.release(token)
        table.assert_quiescent()

    def test_outstanding_listing(self):
        table = OwnershipTable()
        table.claim_shared(0, 4, "a")
        table.claim_shared(4, 4, "b")
        owners = sorted(t.owner for t in table.outstanding())
        assert owners == ["a", "b"]
