"""VSpace tests: NR-replicated address spaces and TLB shootdown."""

import pytest

from repro.core.pt.defs import Flags, PageSize
from repro.hw.mem import PhysicalMemory
from repro.hw.mmu import TranslationFault
from repro.nros.pmem import BuddyAllocator
from repro.nros.pt_unverified import UnverifiedPageTable
from repro.nros.vspace import VSpace, VSpaceError

MB = 1024 * 1024


def make_vspace(num_nodes=2, cores=4):
    mem = PhysicalMemory(16 * MB)
    alloc = BuddyAllocator(mem, start=8 * MB)
    vspace = VSpace(mem, alloc, num_nodes=num_nodes)
    for core in range(cores):
        vspace.attach_core(core, core % num_nodes)
    return vspace, mem, alloc


class TestMapping:
    def test_map_resolve_any_core(self):
        vspace, _, _ = make_vspace()
        vspace.map(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw(),
                   core=0)
        # resolve through a core on the *other* replica
        mapping = vspace.resolve(0x1000, core=1)
        assert mapping is not None and mapping.paddr == 0x10_0000

    def test_replicas_have_distinct_roots(self):
        vspace, _, _ = make_vspace(num_nodes=2)
        assert vspace.root_for(0) != vspace.root_for(1)

    def test_replica_trees_converge(self):
        vspace, mem, _ = make_vspace(num_nodes=2)
        vspace.map(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw(),
                   core=0)
        vspace.map(0x2000, 0x20_0000, PageSize.SIZE_4K, Flags.user_rw(),
                   core=1)
        vspace.sync()
        from repro.core.refine.interp import interpret

        views = [
            interpret(mem, vspace.root_for(core)).mappings
            for core in (0, 1)
        ]
        assert views[0] == views[1]
        assert len(views[0]) == 2

    def test_double_map_fails(self):
        vspace, _, _ = make_vspace()
        vspace.map(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        with pytest.raises(VSpaceError):
            vspace.map(0x1000, 0x20_0000, PageSize.SIZE_4K, Flags.user_rw())

    def test_unmap_returns_mapping(self):
        vspace, _, _ = make_vspace()
        vspace.map(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        removed = vspace.unmap(0x1000, core=2)
        assert removed.paddr == 0x10_0000
        assert vspace.resolve(0x1000) is None

    def test_unmap_unmapped_fails(self):
        vspace, _, _ = make_vspace()
        with pytest.raises(VSpaceError):
            vspace.unmap(0x5000)


class TestTranslationAndShootdown:
    def test_translate_fills_tlb(self):
        vspace, mem, _ = make_vspace()
        vspace.map(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        paddr = vspace.translate(0, 0x1008)
        assert paddr == 0x10_0008
        tlb = vspace._tlbs[0]
        assert len(tlb) == 1
        # second translation hits the TLB
        hits_before = tlb.hits
        vspace.translate(0, 0x1010)
        assert tlb.hits == hits_before + 1

    def test_write_permission_enforced(self):
        vspace, _, _ = make_vspace()
        vspace.map(0x1000, 0x10_0000, PageSize.SIZE_4K,
                   Flags(writable=False, user=True))
        vspace.translate(0, 0x1000)  # read fine
        with pytest.raises(TranslationFault):
            vspace.translate(0, 0x1000, write=True)
        # the cached entry must also enforce the permission
        with pytest.raises(TranslationFault):
            vspace.translate(0, 0x1000, write=True)

    def test_shootdown_on_unmap(self):
        vspace, _, _ = make_vspace(cores=4)
        vspace.map(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        for core in range(4):
            vspace.translate(core, 0x1000)  # fill all TLBs
        assert all(len(vspace._tlbs[c]) == 1 for c in range(4))
        vspace.unmap(0x1000, core=0)
        assert vspace.shootdowns == 1
        # every core's TLB was invalidated: no stale translations
        for core in range(4):
            with pytest.raises(TranslationFault):
                vspace.translate(core, 0x1000)

    def test_translate_unattached_core(self):
        vspace, _, _ = make_vspace(cores=2)
        with pytest.raises(ValueError):
            vspace.translate(9, 0x1000)

    def test_detach_flushes(self):
        vspace, _, _ = make_vspace()
        vspace.map(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        tlb = vspace._tlbs[0]
        vspace.translate(0, 0x1000)
        assert len(tlb) == 1
        vspace.detach_core(0)
        assert len(tlb) == 0

    def test_attach_invalid_node(self):
        vspace, _, _ = make_vspace(num_nodes=2)
        with pytest.raises(ValueError):
            vspace.attach_core(9, 7)


class TestBatchedOps:
    def test_unmap_batch_is_one_shootdown_round(self):
        vspace, _, _ = make_vspace(cores=4)
        vaddrs = [0x1000 + i * 0x1000 for i in range(8)]
        vspace.map_batch([
            (v, 0x10_0000 + i * 0x1000, PageSize.SIZE_4K, Flags.user_rw())
            for i, v in enumerate(vaddrs)
        ])
        for core in range(4):
            for v in vaddrs:
                vspace.translate(core, v)  # fill every TLB
        before = vspace.shootdowns
        removed = vspace.unmap_batch(vaddrs, core=0)
        assert vspace.shootdowns == before + 1  # one round for 8 pages
        assert [m.vaddr for m in removed] == vaddrs
        # the single round still invalidated every core's entries
        for core in range(4):
            with pytest.raises(TranslationFault):
                vspace.translate(core, vaddrs[-1])

    def test_single_unmaps_pay_one_round_each(self):
        vspace, _, _ = make_vspace()
        vaddrs = [0x1000 + i * 0x1000 for i in range(8)]
        for i, v in enumerate(vaddrs):
            vspace.map(v, 0x10_0000 + i * 0x1000, PageSize.SIZE_4K,
                       Flags.user_rw())
        before = vspace.shootdowns
        for v in vaddrs:
            vspace.unmap(v)
        assert vspace.shootdowns == before + 8

    def test_map_batch_all_or_nothing(self):
        vspace, _, _ = make_vspace()
        vspace.map(0x3000, 0x30_0000, PageSize.SIZE_4K, Flags.user_rw())
        with pytest.raises(VSpaceError):
            vspace.map_batch([
                (0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw()),
                (0x2000, 0x20_0000, PageSize.SIZE_4K, Flags.user_rw()),
                (0x3000, 0x40_0000, PageSize.SIZE_4K, Flags.user_rw()),
            ])
        # the two entries that had been applied were rolled back
        assert vspace.resolve(0x1000) is None
        assert vspace.resolve(0x2000) is None
        assert vspace.resolve(0x3000).paddr == 0x30_0000
        assert vspace.mapped_pages == 1

    def test_unmap_batch_failure_is_atomic(self):
        vspace, _, _ = make_vspace(cores=2)
        vspace.map(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        vspace.translate(0, 0x1000)
        vspace.translate(1, 0x1000)
        before = vspace.shootdowns
        with pytest.raises(VSpaceError) as excinfo:
            vspace.unmap_batch([0x1000, 0x9000])  # 0x9000 never mapped
        assert excinfo.value.kind == "not_mapped"
        # the replica validates the whole batch before touching any
        # mapping, so nothing was removed: no shootdown round was owed,
        # and every translation still works on every core
        assert vspace.shootdowns == before
        for core in range(2):
            assert vspace.translate(core, 0x1000) is not None
        assert vspace.mapped_pages == 1

    def test_batch_mapped_pages_accounting(self):
        vspace, _, _ = make_vspace()
        assert vspace.mapped_pages == 0
        vspace.map_batch([
            (0x1000 + i * 0x1000, 0x10_0000 + i * 0x1000,
             PageSize.SIZE_4K, Flags.user_rw())
            for i in range(5)
        ])
        assert vspace.mapped_pages == 5
        vspace.unmap_batch([0x1000, 0x2000])
        assert vspace.mapped_pages == 3
        vspace.unmap(0x3000)
        assert vspace.mapped_pages == 2


class TestUnverifiedBackend:
    def test_vspace_over_unverified_pt(self):
        mem = PhysicalMemory(16 * MB)
        alloc = BuddyAllocator(mem, start=8 * MB)
        vspace = VSpace(mem, alloc, num_nodes=2,
                        pt_factory=UnverifiedPageTable)
        for core in range(2):
            vspace.attach_core(core, core)
        vspace.map(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
        assert vspace.resolve(0x1000, core=1).paddr == 0x10_0000
        removed = vspace.unmap(0x1000)
        assert removed.paddr == 0x10_0000
