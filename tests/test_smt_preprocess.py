"""SatELite-style CNF preprocessor tests.

The load-bearing property is differential: for random small CNFs the
preprocessed problem must agree with brute force on satisfiability, and
every model found on the preprocessed clauses must — after
:meth:`PreprocessResult.model` reconstruction — satisfy the *original*
clauses, including clauses dropped by pure-literal elimination and
bounded variable elimination.
"""

import itertools
import random

from repro.smt.preprocess import (
    CnfBuffer,
    ModelReconstructor,
    PreprocessConfig,
    preprocess,
)
from repro.smt.sat import SatSolver


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any(bits[abs(l) - 1] == (l > 0) for l in clause)
               for clause in clauses):
            return True
    return False


def check_model(model, clauses):
    for clause in clauses:
        assert any(model.get(abs(l), False) == (l > 0) for l in clause), \
            (clause, model)


def random_cnf(rng, num_vars, num_clauses, width=3):
    clauses = []
    for _ in range(num_clauses):
        size = rng.randint(1, width)
        lits = []
        for _ in range(size):
            var = rng.randint(1, num_vars)
            lits.append(var if rng.random() < 0.5 else -var)
        clauses.append(lits)
    return clauses


def solve_preprocessed(num_vars, clauses, frozen=(), config=None,
                       assumptions=None):
    """Preprocess, then run CDCL on the residue; returns (sat, model-or-None)
    with the model reconstructed onto the original variables."""
    pre = preprocess(num_vars, clauses, frozen=frozen, config=config)
    if pre.unsat:
        return False, None
    solver = SatSolver()
    pre.load_into(solver)
    result = solver.solve(assumptions=assumptions)
    if not result.sat:
        return False, None
    return True, pre.model(result.model)


class TestDifferentialFuzz:
    def test_random_cnfs_agree_with_brute_force(self):
        rng = random.Random(11)
        for trial in range(300):
            num_vars = rng.randint(1, 8)
            clauses = random_cnf(rng, num_vars, rng.randint(1, 24))
            expected = brute_force_sat(num_vars, clauses)
            got, model = solve_preprocessed(num_vars, clauses)
            assert got == expected, (trial, clauses)
            if got:
                check_model(model, clauses)

    def test_equivalence_preserving_subset_is_equivalent(self):
        """With pure literals and BVE disabled the reduced clause set plus
        the fixed units must be logically *equivalent* to the input — every
        total assignment satisfies one iff it satisfies the other."""
        rng = random.Random(7)
        config = PreprocessConfig.equivalence_preserving()
        for _ in range(120):
            num_vars = rng.randint(1, 6)
            clauses = random_cnf(rng, num_vars, rng.randint(1, 16))
            pre = preprocess(num_vars, clauses, config=config)
            for bits in itertools.product([False, True], repeat=num_vars):
                def lit_true(l):
                    return bits[abs(l) - 1] == (l > 0)

                original_ok = all(any(lit_true(l) for l in c)
                                  for c in clauses)
                if pre.unsat:
                    reduced_ok = False
                else:
                    reduced_ok = (
                        all(bits[var - 1] == value
                            for var, value in pre.fixed.items())
                        and all(any(lit_true(l) for l in c)
                                for c in pre.clauses)
                    )
                assert original_ok == reduced_ok, (clauses, bits)

    def test_deterministic_counters(self):
        rng = random.Random(3)
        for _ in range(40):
            num_vars = rng.randint(2, 8)
            clauses = random_cnf(rng, num_vars, rng.randint(2, 20))
            first = preprocess(num_vars, clauses)
            second = preprocess(num_vars, [list(c) for c in clauses])
            assert first.stats.deterministic() == \
                second.stats.deterministic()
            assert first.clauses == second.clauses
            assert first.fixed == second.fixed


class TestFrozenVariables:
    def test_frozen_vars_survive_for_assumptions(self):
        """A frozen variable must stay queryable: solving the preprocessed
        clauses under the assumption `v` / `-v` must agree with brute force
        of the original plus that unit, for either polarity."""
        rng = random.Random(23)
        for _ in range(80):
            num_vars = rng.randint(2, 7)
            clauses = random_cnf(rng, num_vars, rng.randint(2, 18))
            target = rng.randint(1, num_vars)
            pre = preprocess(num_vars, clauses, frozen=[target])
            for polarity in (target, -target):
                expected = brute_force_sat(num_vars,
                                           clauses + [[polarity]])
                if pre.unsat or pre.fixed.get(target) == (polarity < 0):
                    got, model = False, None
                else:
                    solver = SatSolver()
                    pre.load_into(solver)
                    result = solver.solve(assumptions=[polarity])
                    got = result.sat
                    model = pre.model(result.model) if got else None
                assert got == expected, (clauses, polarity)
                if got:
                    check_model(model, clauses + [[polarity]])


class TestTechniques:
    def test_unit_propagation_fixes_chain(self):
        pre = preprocess(3, [[1], [-1, 2], [-2, 3]])
        assert not pre.unsat
        assert pre.fixed == {1: True, 2: True, 3: True}
        assert pre.clauses == []
        assert pre.stats.units_fixed == 3

    def test_root_conflict_is_unsat(self):
        pre = preprocess(2, [[1], [-1]])
        assert pre.unsat

    def test_pure_literal_satisfies_its_clauses(self):
        pre = preprocess(3, [[1, 2], [1, 3]])
        assert not pre.unsat
        assert pre.stats.pure_literals >= 1
        model = pre.model({})
        check_model(model, [[1, 2], [1, 3]])

    def test_frozen_pure_literal_not_dropped(self):
        pre = preprocess(3, [[1, 2], [1, 3]], frozen=[1, 2, 3])
        combined = pre.clauses + [[v if pre.fixed[v] else -v]
                                  for v in pre.fixed]
        assert combined, "frozen vars must keep their constraints"

    def test_subsumption_removes_superset(self):
        config = PreprocessConfig(unit_propagation=False,
                                  pure_literals=False,
                                  self_subsumption=False,
                                  variable_elimination=False)
        pre = preprocess(3, [[1, 2], [1, 2, 3]], config=config)
        assert pre.stats.subsumed == 1
        assert pre.clauses == [[1, 2]]

    def test_self_subsumption_strengthens(self):
        config = PreprocessConfig(unit_propagation=False,
                                  pure_literals=False,
                                  variable_elimination=False)
        pre = preprocess(3, [[1, 2], [-1, 2, 3]], config=config)
        assert pre.stats.strengthened >= 1
        assert [2, 3] in [sorted(c) for c in pre.clauses]

    def test_variable_elimination_resolves(self):
        config = PreprocessConfig(unit_propagation=False,
                                  pure_literals=False,
                                  subsumption=False,
                                  self_subsumption=False)
        pre = preprocess(3, [[1, 2], [-1, 3]], frozen=[2, 3], config=config)
        assert pre.stats.eliminated_vars == 1
        assert [sorted(c) for c in pre.clauses] == [[2, 3]]

    def test_elimination_model_reconstruction(self):
        """The solver's residual model says nothing about an eliminated
        variable; reconstruction must pick the polarity that satisfies the
        dropped clauses."""
        clauses = [[1, 2], [-1, 3], [2, 3]]
        pre = preprocess(3, clauses, frozen=[2, 3])
        solver = SatSolver()
        pre.load_into(solver)
        result = solver.solve(assumptions=[-2])
        assert result.sat
        model = pre.model(result.model)
        check_model(model, clauses + [[-2]])


class TestBuildingBlocks:
    def test_cnf_buffer_ducktypes_solver_api(self):
        buffer = CnfBuffer()
        assert buffer.new_var() == 1
        buffer.ensure_vars(5)
        assert buffer.num_vars == 5
        buffer.add_clause([1, -2])
        assert buffer.clauses == [[1, -2]]

    def test_reconstructor_replays_in_reverse(self):
        rec = ModelReconstructor()
        rec.note_elimination(1, [[1, 2], [-1, 3]])
        rec.note_pure(-2)
        model = rec.extend({3: False})
        # pure -2 makes var 2 False, then var 1 must be True for [1, 2]
        assert model[2] is False
        assert model[1] is True

    def test_config_fingerprint_tracks_every_knob(self):
        base = PreprocessConfig().fingerprint()
        assert PreprocessConfig(elim_growth=1).fingerprint() != base
        assert PreprocessConfig(subsumption=False).fingerprint() != base
        assert PreprocessConfig().fingerprint() == base
