#!/usr/bin/env python3
"""Node replication beyond the kernel: a linearizable key-value store.

Section 4.1 suggests NrOS's node-replication approach "may be applicable
to many of the user-space components".  This example replicates a KV store
across three NUMA nodes, runs an adversarially interleaved concurrent
workload, verifies linearizability with the Wing–Gong checker (the theorem
IronSync proved for NR), and reports the simulated-time scalability of
reads vs writes.

Run:  python examples/nr_kvstore.py
"""

from repro.apps.kvstore import ReplicatedKv, run_concurrent_workload
from repro.nr.datastructures import KvStore
from repro.nr.timed import TimedNrConfig, run_timed_workload


def main() -> None:
    print("== a KV store replicated over 3 NUMA nodes")
    kv = ReplicatedKv(num_nodes=3)
    kv.put("lang", "python", node=0)
    kv.put("kernel", "nros", node=1)
    print(f"   get('lang') via node 2: {kv.get('lang', node=2)!r}")
    print(f"   snapshot: {kv.snapshot()}")
    print(f"   log tail: {kv.nr.log.tail} entries; "
          f"gc'd {kv.nr.gc_log()} after quiescence")

    print("\n== adversarial interleaving + linearizability check")
    for seed in range(4):
        kv, history, result = run_concurrent_workload(
            num_threads=4, num_nodes=2, ops_per_thread=6, seed=seed
        )
        status = "linearizable" if result.ok else f"VIOLATION: {result.detail}"
        print(f"   seed {seed}: {len(history)} concurrent ops -> {status} "
              f"(explored {result.explored} orderings)")
        assert result.ok

    print("\n== simulated scalability on the NUMA cost model")
    print("   cores   writes [ops/ms]   reads [ops/ms]")
    for cores in (1, 8, 16, 28):
        writes = run_timed_workload(
            KvStore, lambda c, i: (("put", f"k{i % 8}", c), False),
            TimedNrConfig(num_cores=cores, ops_per_core=16),
        )
        reads = run_timed_workload(
            KvStore, lambda c, i: (("get", f"k{i % 8}"), True),
            TimedNrConfig(num_cores=cores, ops_per_core=16),
        )
        print(f"   {cores:5d}   {writes.throughput_ops_per_ms:15.1f}   "
              f"{reads.throughput_ops_per_ms:14.1f}")

    print("\nwrites serialize through the log (flat combining keeps them "
          "cheap);\nreads scale with cores because each replica serves "
          "them locally.")

    print("\n== sharding over independent logs lifts the write ceiling "
          "(Section 4.1)")
    from repro.nr.timed import run_timed_sharded

    def sharded_puts(core, i):
        key = core % 8
        return (key, ("put", key, i), False)

    print("   shards   write throughput [ops/ms]")
    for shards in (1, 2, 4, 8):
        result = run_timed_sharded(
            KvStore, sharded_puts,
            TimedNrConfig(num_cores=16, ops_per_core=16),
            num_shards=shards,
        )
        print(f"   {shards:6d}   {result.throughput_ops_per_ms:25.1f}")


if __name__ == "__main__":
    main()
