#!/usr/bin/env python3
"""Quickstart: the verified page table in five minutes.

Builds a page table over simulated physical memory, maps/resolves/unmaps
pages of all three sizes, shows the independent hardware walker agreeing
with the implementation, demonstrates TLB staleness and shootdown, and
finishes with a mini refinement check (interpretation == high-level spec).

Run:  python examples/quickstart.py
"""

from repro.core.pt.defs import Flags, PageSize
from repro.core.pt.impl import AlreadyMapped, PageTable, SimpleFrameAllocator
from repro.core.refine.interp import interpret
from repro.core.spec.highlevel import AbstractState
from repro.hw.mem import PhysicalMemory
from repro.hw.mmu import Mmu, TranslationFault
from repro.hw.tlb import Tlb

MB = 1024 * 1024


def main() -> None:
    print("== build a page table over 32 MiB of simulated physical memory")
    memory = PhysicalMemory(32 * MB)
    allocator = SimpleFrameAllocator(memory, start=16 * MB)
    pt = PageTable(memory, allocator)
    print(f"   root table frame: {pt.root_paddr:#x}")

    print("\n== map pages of all three sizes")
    pt.map_frame(0x1000, 0x10_0000, PageSize.SIZE_4K, Flags.user_rw())
    pt.map_frame(0x40_0000, 0x40_0000, PageSize.SIZE_2M, Flags.kernel_rw())
    pt.map_frame(1 << 30, 0x4000_0000 if False else 0x0, PageSize.SIZE_1G,
                 Flags.user_rx())
    for mapping in pt.mappings():
        print(f"   {mapping.vaddr:#14x} -> {mapping.paddr:#12x}  "
              f"{mapping.size.name:8s} {mapping.flags}")

    print("\n== the implementation's resolve and the independent MMU "
          "walker agree")
    mmu = Mmu(memory)
    for vaddr in (0x1008, 0x40_0000 + 0x1_2340, (1 << 30) + 0x555_000):
        resolved = pt.resolve(vaddr)
        walked = mmu.walk(pt.root_paddr, vaddr)
        agreement = "ok" if walked.frame_paddr == resolved.paddr else "BUG"
        print(f"   {vaddr:#14x}: resolve={resolved.paddr:#12x} "
              f"walk={walked.paddr:#12x}  [{agreement}]")

    print("\n== overlapping maps are rejected (and leave the tree intact)")
    try:
        pt.map_frame(0x40_0000 + 0x1000, 0x20_0000, PageSize.SIZE_4K,
                     Flags.user_rw())
    except AlreadyMapped as exc:
        print(f"   AlreadyMapped: {exc}")

    print("\n== TLBs go stale; the shootdown protocol fixes that")
    tlb = Tlb()
    tlb.insert(mmu.walk(pt.root_paddr, 0x1000))
    pt.unmap(0x1000)
    stale = tlb.lookup(0x1000)
    print(f"   after unmap, un-invalidated TLB still returns: "
          f"{stale.paddr:#x}  (stale!)")
    tlb.invalidate_page(0x1000)
    print(f"   after invlpg, TLB returns: {tlb.lookup(0x1000)}")
    try:
        mmu.walk(pt.root_paddr, 0x1000)
    except TranslationFault as fault:
        print(f"   fresh walk correctly faults: {fault}")

    print("\n== mini refinement check: interpret the bits, compare with "
          "the spec")
    abstract = interpret(memory, pt.root_paddr)
    spec = AbstractState()
    spec = spec.map_page(0x40_0000, 0x40_0000, PageSize.SIZE_2M,
                         Flags.kernel_rw())
    spec = spec.map_page(1 << 30, 0x0, PageSize.SIZE_1G, Flags.user_rx())
    assert abstract.mappings == spec.mappings
    print(f"   interpretation == high-level spec "
          f"({len(abstract.mappings)} mappings) -- refinement holds")
    print("\nquickstart done.  next: examples/storage_node.py, "
          "examples/verified_pagetable_proof.py")


if __name__ == "__main__":
    main()
