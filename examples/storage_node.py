#!/usr/bin/env python3
"""The paper's motivating application: a distributed block-store node.

Two simulated machines — a storage node and a client — connected by a
lossy link.  The node persists CRC-checked blocks in its filesystem and
serves them over the reliable RDP protocol; the client runs a workload and
the whole run is validated against a functional model (the "lightweight
formal methods" of the S3 work the paper cites).

Run:  python examples/storage_node.py
"""

import random

from repro.apps.blockstore import BlockClient, BlockStoreModel, storage_node
from repro.nros.cluster import Cluster
from repro.nros.kernel import Kernel
from repro.nros.net.ip import ip_addr, ip_str

SERVER_IP = ip_addr("10.2.0.1")
CLIENT_IP = ip_addr("10.2.0.2")
PORT = 9500
DROP_RATE = 0.2


def main() -> None:
    print(f"== cluster: storage node {ip_str(SERVER_IP)}, "
          f"client {ip_str(CLIENT_IP)}, link drop rate {DROP_RATE:.0%}")
    cluster = Cluster()
    server = cluster.add(Kernel(ip=SERVER_IP, hostname="store",
                                disk_sectors=2048))
    client_kernel = cluster.add(Kernel(ip=CLIENT_IP, hostname="client"))
    link = cluster.connect(server, client_kernel, drop_rate=DROP_RATE,
                           seed=2024)

    rng = random.Random(7)
    model = BlockStoreModel()
    workload = []
    for i in range(24):
        verb = rng.choice(["put", "put", "get", "delete", "list"])
        key = f"obj{rng.randrange(6)}"
        data = bytes(rng.randrange(256) for _ in range(rng.randrange(512)))
        workload.append((verb, key, data))

    observations = []

    def client_program():
        store = BlockClient(SERVER_IP, PORT)
        yield from store.connect()
        for verb, key, data in workload:
            if verb == "put":
                yield from store.put(key, data)
                observations.append((verb, key, None))
            elif verb == "get":
                got = yield from store.get(key)
                observations.append((verb, key, got))
            elif verb == "delete":
                existed = yield from store.delete(key)
                observations.append((verb, key, existed))
            else:
                listing = yield from store.list_keys()
                observations.append((verb, key, tuple(sorted(listing))))
        yield from store.close()

    server.register_program("storage_node", storage_node)
    client_kernel.register_program("client", client_program)
    server.spawn("storage_node", (PORT, 1))
    client_kernel.spawn("client")

    print(f"== running {len(workload)} operations over the lossy link ...")
    cluster.run()

    print(f"   link: {link.delivered} frames delivered, "
          f"{link.dropped} dropped (RDP retransmission hid the loss)")
    print(f"   node filesystem now holds: {server.fs.readdir('/blocks')}")

    print("== validating the run against the functional model")
    mismatches = 0
    for (verb, key, data), (_, _, observed) in zip(workload, observations):
        if verb == "put":
            model.put(key, data)
        elif verb == "get":
            expected = model.get(key)
            if observed != expected:
                mismatches += 1
        elif verb == "delete":
            if observed != model.delete(key):
                mismatches += 1
        else:
            if observed != model.list_keys():
                mismatches += 1
    print(f"   {len(workload)} operations replayed, "
          f"{mismatches} disagreements with the model")
    assert mismatches == 0
    print("\nstorage node matches its model — the property the paper's "
          "introduction asks a verified stack to carry down to the metal.")


if __name__ == "__main__":
    main()
