#!/usr/bin/env python3
"""A POSIX-flavoured multi-process application on the simulated kernel.

Exercises the whole Section 1 component list from user space: processes
(spawn/wait), kernel threads with futex-based mutexes and condition
variables from the userspace library, the filesystem through descriptor
syscalls, user memory via vm_map with the kernel copying file data through
page-table translation, and user-level (green) threads.

Run:  python examples/posix_app.py
"""

from repro.nros.fs.fd import O_CREAT, O_RDWR
from repro.nros.kernel import Kernel
from repro.nros.syscall.abi import sys
from repro.ulib import io as uio
from repro.ulib.sync import Condvar, Mutex
from repro.ulib.uthread import UScheduler, uyield


def worker(mutex_addr, slot_addr, items_base, tag):
    """Kernel thread: grab the mutex, append a work item."""
    mutex = Mutex(mutex_addr)
    for i in range(3):
        yield from mutex.acquire()
        count = yield sys("peek", slot_addr)
        yield sys("poke", items_base + count * 8, (tag << 8) | i)
        yield sys("poke", slot_addr, count + 1)
        yield from mutex.release()
        yield sys("sched_yield")
    return tag


def green_logger(name, lines):
    """Green thread inside the main kernel thread."""
    for i in range(lines):
        yield sys("log", f"green {name} line {i}")
        yield uyield
    return name


def child_process(path):
    """A whole separate process: writes a report file and exits."""
    yield from uio.write_file(path, b"child was here\n")
    yield sys("exit", 17)


def main_program():
    # -- shared memory + synchronization ------------------------------------
    base = yield sys("vm_map", 2)
    mutex_addr, slot_addr, items_base = base, base + 8, base + 64
    t1 = yield sys("thread_spawn", "worker",
                   (mutex_addr, slot_addr, items_base, 1))
    t2 = yield sys("thread_spawn", "worker",
                   (mutex_addr, slot_addr, items_base, 2))
    yield sys("thread_join", t1)
    yield sys("thread_join", t2)
    produced = yield sys("peek", slot_addr)
    yield sys("log", f"workers produced {produced} items under the mutex")

    # -- filesystem through the descriptor ABI --------------------------------
    fd = yield sys("open", "/report.txt", O_CREAT | O_RDWR)
    yield sys("write", fd, f"items={produced}\n".encode())
    yield sys("close", fd)

    # the kernel copies file bytes straight into mapped user memory
    buf = yield sys("vm_map", 1)
    fd = yield sys("open", "/report.txt", O_RDWR)
    n = yield sys("read_into", fd, buf, 32)
    first_word = yield sys("peek", buf)
    yield sys("log", f"read_into copied {n} bytes; first word "
                     f"{first_word:#x}")
    yield sys("close", fd)

    # -- green threads --------------------------------------------------------
    usched = UScheduler()
    usched.spawn(green_logger("alpha", 2))
    usched.spawn(green_logger("beta", 2))
    results = yield from usched.run()
    yield sys("log", f"green threads finished: {results}")

    # -- a child process ------------------------------------------------------
    pid = yield sys("spawn", "child", ("/child.txt",))
    reaped_pid, code = yield sys("wait", pid)
    yield sys("log", f"child {reaped_pid} exited with code {code}")
    child_data = yield from uio.read_file("/child.txt")
    yield sys("log", f"child wrote: {child_data.decode().strip()!r}")
    listing = yield sys("readdir", "/")
    yield sys("log", f"root directory: {listing}")


def main() -> None:
    kernel = Kernel(num_cores=4, hostname="posixbox")
    kernel.register_program("main", main_program)
    kernel.register_program("worker", worker)
    kernel.register_program("child", child_process)
    kernel.spawn("main")
    kernel.run()

    print("== serial console")
    for line in kernel.serial.lines:
        print("   " + line)
    print("\n== kernel statistics")
    print(f"   syscalls handled:   {kernel.stats.syscalls}")
    print(f"   marshalled bytes:   {kernel.stats.marshalled_bytes}")
    print(f"   thread switches:    {kernel.stats.thread_switches}")
    print(f"   context switches:   {kernel.scheduler.context_switches}")
    print(f"   disk requests:      {kernel.block_driver.requests_completed}")


if __name__ == "__main__":
    main()
