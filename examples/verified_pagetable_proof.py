#!/usr/bin/env python3
"""Run the full page-table refinement proof and print the report.

This is the Section 5 experience end to end: all 220 verification
conditions — bit-level SMT lemmas, tree invariants, simulation diagrams,
hardware agreement, TLB protocol, NR linearizability, and the client
contract — discharged with per-VC timing, the Figure 1a CDF, and the
Figure 2 proof structure.

Run:  python examples/verified_pagetable_proof.py [--quick] [--jobs N]

`--jobs N` discharges through the repro.prover scheduler (N worker
processes + the persistent proof cache) instead of the serial engine loop;
a second run is then nearly instant — only changed goals re-verify.
"""

import sys

from repro.core.refine.proof import build_proof, proof_structure


def main() -> None:
    quick = "--quick" in sys.argv
    jobs = int(sys.argv[sys.argv.index("--jobs") + 1]) \
        if "--jobs" in sys.argv else 0
    print("== proof structure (Figure 2)")
    for line in proof_structure():
        print("   " + line)

    print("\n== assembling the proof")
    engine = build_proof(scenario_cap=12 if quick else 60,
                         scenario_depth=2 if quick else 3)
    print(f"   {engine.vc_count} verification conditions in "
          f"{len(engine.groups)} groups")

    print("\n== discharging (this is the ~40 s step the paper reports)")
    done = {"count": 0}

    def progress(result):
        done["count"] += 1
        if not result.ok:
            print(f"   FAILED {result.name}: {result.detail}")
        elif done["count"] % 40 == 0:
            print(f"   ... {done['count']}/{engine.vc_count} "
                  f"({result.category})")

    if jobs:
        from repro.prover import prove_all

        report = prove_all(engine, jobs=jobs, progress=progress)
    else:
        report = engine.run(progress=progress)

    print("\n== report")
    for line in report.summary_lines():
        print("   " + line)

    print("\n== verification-time CDF (Figure 1a)")
    for threshold in (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 11.0):
        fraction = report.fraction_within(threshold)
        bar = "#" * int(fraction * 40)
        print(f"   {threshold:6.2f} s  {bar:40s} {fraction:6.1%}")

    if report.all_proved:
        print("\nall verification conditions proved — the implementation, "
              "run in the intended\nhardware environment, refines the "
              "high-level specification.")
    else:
        print(f"\n{len(report.failed)} verification conditions FAILED")
        sys.exit(1)


if __name__ == "__main__":
    main()
